//! Scripted application behaviors: programs as *data*.
//!
//! A [`BehaviorScript`] is a serializable list of [`BehaviorStep`]s, each
//! compiling to one (or a few) syscalls against the sandbox [`Os`]. The
//! corpus generator synthesizes scripts alongside their [`super::Scenario`]
//! worlds; [`BehaviorScript::run`] interprets one deterministically, which
//! is what the `epa-apps` scripted adapter drives from inside an
//! [`epa_sandbox::app::Application`] impl.
//!
//! Steps are written the way the paper's model applications are: every
//! syscall error is tolerated (counted, never panicking), so a script stays
//! runnable under any injected environment fault.

use serde::{Deserialize, Serialize};

use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// One scripted interaction with the environment.
///
/// Site ids are derived from the step's position (`gen{index}:{kind}`), so
/// a step that re-issues a syscall — [`BehaviorStep::ReadFile`] with
/// `times > 1` — hits the *same* interaction point repeatedly and produces
/// the occurrence-heavy (TOCTTOU-shaped) traces the corpus is biased
/// toward.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BehaviorStep {
    /// Read one argv entry as a user-supplied file name.
    ReadArg {
        /// Argument index.
        index: usize,
    },
    /// Read one environment variable.
    ReadEnv {
        /// Variable name.
        name: String,
    },
    /// Read a file `times` times through one site (re-reads model the
    /// re-accessed-object shape of the lpr TOCTTOU class).
    ReadFile {
        /// Absolute path.
        path: String,
        /// How often the site re-reads it (≥ 1).
        times: usize,
    },
    /// `stat` a path, then write it — the classic check-then-use pair.
    StatThenWrite {
        /// Absolute path.
        path: String,
        /// Content written on success.
        content: String,
        /// Mode of a newly created file.
        mode: u16,
    },
    /// Plain (non-exclusive) file write.
    WriteFile {
        /// Absolute path.
        path: String,
        /// Content.
        content: String,
        /// Mode of a newly created file.
        mode: u16,
    },
    /// `O_CREAT|O_EXCL`-style exclusive creation.
    CreateExclusive {
        /// Absolute path.
        path: String,
        /// Mode of the created file.
        mode: u16,
    },
    /// Append to a file.
    Append {
        /// Absolute path.
        path: String,
        /// Appended content.
        content: String,
    },
    /// Unlink a path.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// `stat` a path.
    Stat {
        /// Absolute path.
        path: String,
    },
    /// Read a symlink's target.
    ReadLink {
        /// Absolute path of the link.
        path: String,
    },
    /// List a directory.
    ListDir {
        /// Absolute path.
        path: String,
    },
    /// Execute a program (privileged-spawn interaction).
    Exec {
        /// Absolute program path.
        path: String,
    },
    /// Read a registry value.
    RegRead {
        /// `/`-separated key path.
        key: String,
        /// Value name.
        value: String,
    },
    /// Write a registry value.
    RegWrite {
        /// `/`-separated key path.
        key: String,
        /// Value name.
        value: String,
        /// Written data.
        data: String,
    },
    /// Resolve a host name.
    DnsLookup {
        /// Host name.
        host: String,
    },
    /// Connect to a service and send one payload.
    NetExchange {
        /// Remote host.
        host: String,
        /// Remote port.
        port: u16,
        /// Sent payload.
        payload: String,
    },
    /// Receive one inbound network message.
    NetReceive {
        /// Local port.
        port: u16,
    },
    /// Receive one IPC message.
    IpcReceive {
        /// Channel name.
        channel: String,
    },
    /// Print to stdout (pure output; no applicable faults).
    Print {
        /// Printed text.
        text: String,
    },
}

impl BehaviorStep {
    /// The short site tag of this step kind (second half of the site id).
    fn tag(&self) -> &'static str {
        match self {
            BehaviorStep::ReadArg { .. } => "arg",
            BehaviorStep::ReadEnv { .. } => "env",
            BehaviorStep::ReadFile { .. } => "read",
            BehaviorStep::StatThenWrite { .. } => "checkuse",
            BehaviorStep::WriteFile { .. } => "write",
            BehaviorStep::CreateExclusive { .. } => "excl",
            BehaviorStep::Append { .. } => "append",
            BehaviorStep::Unlink { .. } => "unlink",
            BehaviorStep::Stat { .. } => "stat",
            BehaviorStep::ReadLink { .. } => "readlink",
            BehaviorStep::ListDir { .. } => "list",
            BehaviorStep::Exec { .. } => "exec",
            BehaviorStep::RegRead { .. } => "regread",
            BehaviorStep::RegWrite { .. } => "regwrite",
            BehaviorStep::DnsLookup { .. } => "dns",
            BehaviorStep::NetExchange { .. } => "net",
            BehaviorStep::NetReceive { .. } => "recv",
            BehaviorStep::IpcReceive { .. } => "ipc",
            BehaviorStep::Print { .. } => "print",
        }
    }

    /// Runs the step; `false` means the underlying syscall(s) failed (the
    /// script tolerates it and moves on).
    fn run(&self, index: usize, os: &mut Os, pid: Pid) -> bool {
        let site = format!("gen{index}:{}", self.tag());
        let site = site.as_str();
        match self {
            BehaviorStep::ReadArg { index } => os.sys_arg(pid, site, *index, InputSemantic::UserFileName).is_ok(),
            BehaviorStep::ReadEnv { name } => os.sys_getenv(pid, site, name, InputSemantic::EnvValue).is_ok(),
            BehaviorStep::ReadFile { path, times } => {
                let mut ok = true;
                for _ in 0..(*times).max(1) {
                    ok &= os.sys_read_file(pid, site, path.as_str()).is_ok();
                }
                ok
            }
            BehaviorStep::StatThenWrite { path, content, mode } => {
                // Check-then-use: the stat verdict gates nothing — exactly
                // the naive pattern environment perturbation exists to
                // expose.
                let _ = os.sys_stat(pid, site, path.as_str());
                os.sys_write_file(pid, site, path.as_str(), content.as_str(), *mode)
                    .is_ok()
            }
            BehaviorStep::WriteFile { path, content, mode } => os
                .sys_write_file(pid, site, path.as_str(), content.as_str(), *mode)
                .is_ok(),
            BehaviorStep::CreateExclusive { path, mode } => os.sys_create_excl(pid, site, path.as_str(), *mode).is_ok(),
            BehaviorStep::Append { path, content } => {
                os.sys_append(pid, site, path.as_str(), content.as_str(), 0o644).is_ok()
            }
            BehaviorStep::Unlink { path } => os.sys_unlink(pid, site, path.as_str()).is_ok(),
            BehaviorStep::Stat { path } => os.sys_stat(pid, site, path.as_str()).is_ok(),
            BehaviorStep::ReadLink { path } => os.sys_readlink(pid, site, path.as_str()).is_ok(),
            BehaviorStep::ListDir { path } => os.sys_list_dir(pid, site, path.as_str()).is_ok(),
            BehaviorStep::Exec { path } => os.sys_exec(pid, site, path.as_str(), Vec::new(), None).is_ok(),
            BehaviorStep::RegRead { key, value } => {
                os.sys_reg_read(pid, site, key, value, InputSemantic::EnvValue).is_ok()
            }
            BehaviorStep::RegWrite { key, value, data } => os.sys_reg_write(pid, site, key, value, data).is_ok(),
            BehaviorStep::DnsLookup { host } => os.sys_dns(pid, site, host, InputSemantic::NetDnsReply).is_ok(),
            BehaviorStep::NetExchange { host, port, payload } => {
                let connected = os.sys_net_connect(pid, site, host, *port).is_ok();
                connected && os.sys_net_send(pid, site, host, *port, payload.as_str()).is_ok()
            }
            BehaviorStep::NetReceive { port } => os.sys_net_recv(pid, site, *port, InputSemantic::NetPacket).is_ok(),
            BehaviorStep::IpcReceive { channel } => {
                os.sys_proc_recv(pid, site, channel, InputSemantic::ProcMessage).is_ok()
            }
            BehaviorStep::Print { text } => os.sys_print(pid, site, text.as_str()).is_ok(),
        }
    }
}

/// A deterministic scripted application behavior: steps executed in order,
/// syscall failures tolerated and counted.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BehaviorScript {
    /// The steps, executed in order.
    pub steps: Vec<BehaviorStep>,
}

impl BehaviorScript {
    /// A script over `steps`.
    pub fn new(steps: Vec<BehaviorStep>) -> BehaviorScript {
        BehaviorScript { steps }
    }

    /// Interprets the script against a sandbox world, returning the exit
    /// status an equivalent hand-written program would: `0` when every step
    /// succeeded, else the number of failed steps (capped at `100`).
    ///
    /// This is the single interpreter behind the `epa-apps` scripted
    /// adapter; it issues only `sys_*` calls and never consults oracle
    /// metadata, exactly like a hand-written [`epa_sandbox::app::Application`].
    pub fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let mut failures = 0i32;
        for (i, step) in self.steps.iter().enumerate() {
            if !step.run(i, os, pid) {
                failures += 1;
            }
        }
        failures.min(100)
    }

    /// A stable content fingerprint of the script (FNV-1a over its
    /// serialized form).
    pub fn fingerprint(&self) -> u64 {
        let json = serde_json::to_string(self).expect("behavior scripts serialize");
        crate::engine::planner::fnv1a(json.as_bytes())
    }
}
