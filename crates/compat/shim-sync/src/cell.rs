//! [`RaceCell`]: a shared cell whose accesses are *deliberately
//! unsynchronized at the model level*. Under `model-check` every `get`
//! and `set` is checked against the vector-clock happens-before
//! relation, so two accesses from different threads with no
//! synchronization between them are reported as a data race — this is
//! the facade's analogue of loom's `UnsafeCell`, minus the `unsafe`
//! (storage is a real `RwLock`, which keeps the memory model sound
//! while the *model* treats accesses as bare reads and writes).
//!
//! Use it in fixtures to assert that a protocol's happens-before edges
//! actually cover its data: put the payload in a `RaceCell` and let the
//! checker prove every access is ordered.

#[cfg(feature = "model-check")]
use crate::model::ctx;
use std::sync::{PoisonError, RwLock};

/// A race-detected shared cell (see module docs).
#[derive(Debug, Default)]
pub struct RaceCell<T> {
    #[cfg(feature = "model-check")]
    handle: crate::model::Handle,
    value: RwLock<T>,
}

impl<T> RaceCell<T> {
    /// Creates a cell.
    pub const fn new(value: T) -> RaceCell<T> {
        RaceCell {
            #[cfg(feature = "model-check")]
            handle: crate::model::Handle::new(),
            value: RwLock::new(value),
        }
    }

    fn track(&self, write: bool) {
        #[cfg(feature = "model-check")]
        if let Some(c) = ctx() {
            c.exec.cell_access(c.tid, &self.handle, "RaceCell", write);
        }
        #[cfg(not(feature = "model-check"))]
        let _ = write;
    }

    /// Reads the value (a model-level unsynchronized read).
    pub fn get(&self) -> T
    where
        T: Clone,
    {
        self.track(false);
        self.value.read().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Writes the value (a model-level unsynchronized write).
    pub fn set(&self, value: T) {
        self.track(true);
        *self.value.write().unwrap_or_else(PoisonError::into_inner) = value;
    }

    /// Read-modify-write (a model-level unsynchronized write).
    pub fn update(&self, f: impl FnOnce(&mut T)) {
        self.track(true);
        f(&mut self.value.write().unwrap_or_else(PoisonError::into_inner));
    }
}
