//! Indirect-fault patterns: the executable rendition of paper Table 5.
//!
//! Each input semantic maps to the perturbation patterns the paper's
//! vulnerability analysis found *likely to cause security violations* for
//! that semantic — the key insight distinguishing the method from random
//! (Fuzz-style) input perturbation.

use epa_sandbox::os::ScenarioMeta;
use epa_sandbox::trace::InputSemantic;

use super::CatalogRow;
use crate::model::{indirect_kind_of, EaiCategory};
use crate::perturb::{ConcreteFault, FaultPayload, IndirectFault};

/// Filler length used by "change length" faults: far beyond any of the
/// fixed buffers the model applications declare.
pub const LENGTHEN_BY: usize = 4096;

fn fault(semantic: InputSemantic, slug: &str, description: impl Into<String>, payload: IndirectFault) -> ConcreteFault {
    ConcreteFault {
        id: format!("indirect:{}:{slug}", semantic_slug(semantic)),
        category: EaiCategory::Indirect(indirect_kind_of(semantic)),
        semantic: Some(semantic),
        description: description.into(),
        payload: FaultPayload::Indirect(payload),
    }
}

fn semantic_slug(semantic: InputSemantic) -> &'static str {
    match semantic {
        InputSemantic::UserFileName => "user-file-name",
        InputSemantic::UserCommand => "user-command",
        InputSemantic::EnvPathList => "env-path-list",
        InputSemantic::EnvPermMask => "env-perm-mask",
        InputSemantic::EnvValue => "env-value",
        InputSemantic::FsFileName => "fs-file-name",
        InputSemantic::FsFileExtension => "fs-file-extension",
        InputSemantic::NetIpAddr => "net-ip-addr",
        InputSemantic::NetPacket => "net-packet",
        InputSemantic::NetHostName => "net-host-name",
        InputSemantic::NetDnsReply => "net-dns-reply",
        InputSemantic::ProcMessage => "proc-message",
        InputSemantic::Opaque => "opaque",
    }
}

/// The indirect faults applicable to an input with the given semantics
/// (paper Table 5, rightmost column, made concrete).
pub fn indirect_faults_for(semantic: InputSemantic, scenario: &ScenarioMeta) -> Vec<ConcreteFault> {
    match semantic {
        InputSemantic::UserFileName => vec![
            fault(
                semantic,
                "lengthen",
                "change length of user-supplied file name",
                IndirectFault::Lengthen { by: LENGTHEN_BY },
            ),
            fault(
                semantic,
                "relative",
                "use relative path in file name",
                IndirectFault::MakeRelative,
            ),
            fault(
                semantic,
                "absolute",
                "use absolute path in file name",
                IndirectFault::MakeAbsolute,
            ),
            fault(
                semantic,
                "dotdot",
                "insert `..` in front of the file name",
                IndirectFault::InsertDotDot { depth: 1 },
            ),
            fault(
                semantic,
                "slash",
                "insert `/` in file name",
                IndirectFault::InsertSpecial { ch: '/' },
            ),
        ],
        InputSemantic::UserCommand => vec![
            fault(
                semantic,
                "lengthen",
                "change length of user-supplied command",
                IndirectFault::Lengthen { by: LENGTHEN_BY },
            ),
            fault(
                semantic,
                "relative",
                "use relative path in command",
                IndirectFault::MakeRelative,
            ),
            fault(
                semantic,
                "absolute",
                "use absolute path in command",
                IndirectFault::MakeAbsolute,
            ),
            fault(
                semantic,
                "semicolon",
                "insert `;` in command",
                IndirectFault::InsertSpecial { ch: ';' },
            ),
            fault(
                semantic,
                "newline",
                "insert newline in command",
                IndirectFault::InsertSpecial { ch: '\n' },
            ),
        ],
        InputSemantic::EnvValue => vec![
            fault(
                semantic,
                "lengthen",
                "change length of environment value",
                IndirectFault::Lengthen { by: LENGTHEN_BY },
            ),
            fault(
                semantic,
                "relative",
                "use relative path in environment value",
                IndirectFault::MakeRelative,
            ),
            fault(
                semantic,
                "absolute",
                "use absolute path in environment value",
                IndirectFault::MakeAbsolute,
            ),
            fault(
                semantic,
                "semicolon",
                "insert `;` in environment value",
                IndirectFault::InsertSpecial { ch: ';' },
            ),
        ],
        InputSemantic::EnvPathList => vec![
            fault(
                semantic,
                "lengthen",
                "change length of the path list",
                IndirectFault::Lengthen { by: LENGTHEN_BY },
            ),
            fault(
                semantic,
                "reorder",
                "rearrange order of paths",
                IndirectFault::PathListReorder,
            ),
            fault(
                semantic,
                "insert-untrusted",
                format!("insert untrusted path {} at the front", scenario.untrusted_dir),
                IndirectFault::PathListInsertUntrusted {
                    dir: scenario.untrusted_dir.clone(),
                },
            ),
            fault(
                semantic,
                "wrong",
                "use incorrect path list",
                IndirectFault::PathListWrong {
                    dir: "/nonexistent/bin".into(),
                },
            ),
            fault(
                semantic,
                "recursive",
                "use recursive (current-directory) path",
                IndirectFault::PathListRecursive,
            ),
        ],
        InputSemantic::EnvPermMask => vec![fault(
            semantic,
            "zero",
            "change mask to 0 so it masks no permission bit",
            IndirectFault::PermMaskZero,
        )],
        InputSemantic::FsFileName => vec![
            fault(
                semantic,
                "lengthen",
                "change length of file name from file-system input",
                IndirectFault::Lengthen { by: LENGTHEN_BY },
            ),
            fault(semantic, "relative", "use relative path", IndirectFault::MakeRelative),
            fault(semantic, "absolute", "use absolute path", IndirectFault::MakeAbsolute),
            fault(
                semantic,
                "semicolon",
                "insert special character `;`",
                IndirectFault::InsertSpecial { ch: ';' },
            ),
        ],
        InputSemantic::FsFileExtension => vec![
            fault(
                semantic,
                "exe",
                "change extension to `.exe`",
                IndirectFault::ChangeExtension { ext: "exe".into() },
            ),
            fault(
                semantic,
                "lengthen",
                "change length of file extension",
                IndirectFault::LengthenExtension,
            ),
        ],
        InputSemantic::NetIpAddr => vec![
            fault(
                semantic,
                "lengthen",
                "change length of the address",
                IndirectFault::Lengthen { by: 256 },
            ),
            fault(semantic, "malform", "use bad-formatted address", IndirectFault::Malform),
        ],
        InputSemantic::NetPacket => vec![
            fault(
                semantic,
                "oversize",
                "change size of the packet",
                IndirectFault::Lengthen { by: 8192 },
            ),
            fault(semantic, "malform", "use bad-formatted packet", IndirectFault::Malform),
        ],
        InputSemantic::NetHostName => vec![
            fault(
                semantic,
                "lengthen",
                "change length of host name",
                IndirectFault::Lengthen { by: 1024 },
            ),
            fault(
                semantic,
                "malform",
                "use bad-formatted host name",
                IndirectFault::Malform,
            ),
        ],
        InputSemantic::NetDnsReply => vec![
            fault(
                semantic,
                "lengthen",
                "change length of the DNS reply",
                IndirectFault::Lengthen { by: 1024 },
            ),
            fault(semantic, "malform", "use bad-formatted reply", IndirectFault::Malform),
        ],
        InputSemantic::ProcMessage => vec![
            fault(
                semantic,
                "lengthen",
                "change length of the message",
                IndirectFault::Lengthen { by: 8192 },
            ),
            fault(semantic, "malform", "use bad-formatted message", IndirectFault::Malform),
        ],
        InputSemantic::Opaque => Vec::new(),
    }
}

/// The rows of paper Table 5, for the reproduction harness.
pub fn table5_rows() -> Vec<CatalogRow> {
    fn row(entity: &str, item: &str, injections: &[&str]) -> CatalogRow {
        CatalogRow {
            entity: entity.to_string(),
            item: item.to_string(),
            injections: injections.iter().map(std::string::ToString::to_string).collect(),
        }
    }
    vec![
        row(
            "User Input",
            "file name + directory name",
            &[
                "change length",
                "use relative path",
                "use absolute path",
                "insert special characters such as `..`, `/` in the name",
            ],
        ),
        row(
            "User Input",
            "command",
            &[
                "change length",
                "use relative path",
                "use absolute path",
                "insert special characters such as `;`, `|`, `&` or newline in the command",
            ],
        ),
        row(
            "Environment Variable",
            "file name + directory name",
            &[
                "change length",
                "use relative path",
                "use absolute path",
                "use special characters, such as `;`, `|` or `&` in the name",
            ],
        ),
        row(
            "Environment Variable",
            "execution path + library path",
            &[
                "change length",
                "rearrange order of path",
                "insert a untrusted path",
                "use incorrect path",
                "use recursive path",
            ],
        ),
        row(
            "Environment Variable",
            "permission mask",
            &["change mask to 0 so it will not mask any permission bit"],
        ),
        row(
            "File System Input",
            "file name + directory name",
            &[
                "change length",
                "use relative path",
                "use absolute path",
                "use special characters in the name such as `;`, `&` or `/` in name",
            ],
        ),
        row(
            "File System Input",
            "file extension",
            &[
                "change to other file extensions like `.exe` in Windows system",
                "change length of file extension",
            ],
        ),
        row(
            "Network Input",
            "IP address",
            &["change length of the address", "use bad-formatted address"],
        ),
        row(
            "Network Input",
            "packet",
            &["change size of the packet", "use bad-formatted packet"],
        ),
        row(
            "Network Input",
            "host name",
            &["change length of host name", "use bad-formatted host name"],
        ),
        row(
            "Network Input",
            "DNS reply",
            &["change length of the DNS reply", "use bad-formatted reply"],
        ),
        row(
            "Process Input",
            "message",
            &["change length of the message", "use bad-formatted message"],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_counts_match_calibration() {
        let s = ScenarioMeta::default();
        assert_eq!(indirect_faults_for(InputSemantic::UserFileName, &s).len(), 5);
        assert_eq!(indirect_faults_for(InputSemantic::UserCommand, &s).len(), 5);
        assert_eq!(indirect_faults_for(InputSemantic::EnvValue, &s).len(), 4);
        assert_eq!(indirect_faults_for(InputSemantic::EnvPathList, &s).len(), 5);
        assert_eq!(indirect_faults_for(InputSemantic::EnvPermMask, &s).len(), 1);
        assert_eq!(indirect_faults_for(InputSemantic::FsFileName, &s).len(), 4);
        assert_eq!(indirect_faults_for(InputSemantic::FsFileExtension, &s).len(), 2);
        for sem in [
            InputSemantic::NetIpAddr,
            InputSemantic::NetPacket,
            InputSemantic::NetHostName,
            InputSemantic::NetDnsReply,
            InputSemantic::ProcMessage,
        ] {
            assert_eq!(indirect_faults_for(sem, &s).len(), 2, "{sem:?}");
        }
        assert!(indirect_faults_for(InputSemantic::Opaque, &s).is_empty());
    }

    #[test]
    fn every_fault_is_indirect_and_uniquely_named() {
        let s = ScenarioMeta::default();
        let all: Vec<_> = [
            InputSemantic::UserFileName,
            InputSemantic::UserCommand,
            InputSemantic::EnvValue,
            InputSemantic::EnvPathList,
            InputSemantic::EnvPermMask,
            InputSemantic::FsFileName,
            InputSemantic::FsFileExtension,
            InputSemantic::NetIpAddr,
            InputSemantic::NetPacket,
            InputSemantic::NetHostName,
            InputSemantic::NetDnsReply,
            InputSemantic::ProcMessage,
        ]
        .into_iter()
        .flat_map(|sem| indirect_faults_for(sem, &s))
        .collect();
        let ids: std::collections::BTreeSet<_> = all.iter().map(|f| &f.id).collect();
        assert_eq!(ids.len(), all.len());
        assert!(all.iter().all(|f| !f.is_direct()));
        assert!(all.iter().all(|f| f.category.is_indirect()));
    }

    #[test]
    fn path_list_insert_uses_scenario_dir() {
        let s = ScenarioMeta::default();
        let faults = indirect_faults_for(InputSemantic::EnvPathList, &s);
        assert!(faults.iter().any(|f| f.description.contains(&s.untrusted_dir)));
    }

    #[test]
    fn table5_row_count() {
        assert_eq!(table5_rows().len(), 12);
    }
}
