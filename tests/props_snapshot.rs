//! Property tests: copy-on-write snapshot equivalence — a campaign run
//! from cheap CoW snapshots of the pristine world must be byte-identical
//! to one run from eager deep clones, across randomized worlds.

use epa::core::engine::{Session, WorldSpec};
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::os::{Os, ScenarioMeta};
use epa::sandbox::process::Pid;
use epa::sandbox::trace::InputSemantic;
use proptest::prelude::*;

/// A deterministic program parameterized by the randomized world: reads its
/// argument, then every declared data file, then spools a summary.
struct Walker {
    files: Vec<String>,
}

impl Application for Walker {
    fn name(&self) -> &'static str {
        "walker"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(arg) = os.sys_arg(pid, "walker:arg", 0, InputSemantic::UserFileName) else {
            return 2;
        };
        let mut seen = 0usize;
        for path in &self.files {
            if let Ok(d) = os.sys_read_file(pid, "walker:read", path.as_str()) {
                seen += d.len();
            }
        }
        let summary = format!("{}:{seen}", arg.text());
        if os
            .sys_write_file(pid, "walker:spool", "/var/spool/walker/out", summary.as_str(), 0o660)
            .is_err()
        {
            return 1;
        }
        let _ = os.sys_print(pid, "walker:done", "done\n");
        0
    }
}

#[derive(Debug, Clone)]
struct RandFile {
    name: String,
    content: String,
    mode: u16,
    owner: u8,
}

fn file_strategy() -> impl Strategy<Value = RandFile> {
    (
        "[a-z]{1,8}",
        ".{0,40}",
        prop_oneof![
            Just(0o600u16),
            Just(0o644u16),
            Just(0o666u16),
            Just(0o700u16),
            Just(0o755u16)
        ],
        0u8..3,
    )
        .prop_map(|(name, content, mode, owner)| RandFile {
            name,
            content,
            mode,
            owner,
        })
}

fn build_spec(files: &[RandFile], arg: &str) -> (WorldSpec, Vec<String>) {
    let scenario = ScenarioMeta::default();
    let mut b = WorldSpec::builder()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
        .user("evil", scenario.attacker, scenario.attacker_gid, "/home/evil")
        .dir("/var/spool/walker", Uid::ROOT, Gid::ROOT, 0o755)
        .root_file("/etc/passwd", "root:0:0:", 0o644)
        .root_file("/etc/shadow", "root:HASH", 0o600)
        .suid_root_program("/usr/bin/walker")
        .args([arg]);
    let mut paths = Vec::new();
    for (i, f) in files.iter().enumerate() {
        // The index keeps paths unique even when names repeat.
        let path = format!("/data/f{i}-{}", f.name);
        let (owner, group) = match f.owner {
            0 => (Uid::ROOT, Gid::ROOT),
            1 => (scenario.invoker, scenario.invoker_gid),
            _ => (scenario.attacker, scenario.attacker_gid),
        };
        b = b.file(path.clone(), f.content.clone(), owner, group, f.mode);
        paths.push(path);
    }
    (b.build(), paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The engine's acceptance property: snapshot-based campaigns report
    /// exactly what deep-clone-based campaigns report, byte for byte.
    #[test]
    fn snapshot_campaigns_equal_deep_clone_campaigns(
        files in proptest::collection::vec(file_strategy(), 0..4),
        arg in "[a-z]{1,6}",
    ) {
        let (spec, paths) = build_spec(&files, &arg);
        let app = Walker { files: paths };
        let setup = spec.materialize().expect("generated specs are valid");

        // Copy-on-write path: campaigns snapshot the frozen world.
        let cow_report = Session::from_setup(setup.clone()).execute(&app);

        // Deep-clone path: the world is eagerly materialized first, so no
        // run shares any substrate storage with the pristine world.
        let mut deep_setup = setup.clone();
        deep_setup.world = setup.world.deep_clone();
        let deep_report = Session::from_setup(deep_setup).execute(&app);

        prop_assert_eq!(&cow_report, &deep_report);
        let cow_json = serde_json::to_string(&cow_report).expect("serialize");
        let deep_json = serde_json::to_string(&deep_report).expect("serialize");
        prop_assert_eq!(cow_json, deep_json, "reports must be byte-identical");
    }

    /// Campaigns never mutate the frozen pristine world they snapshot from.
    #[test]
    fn campaigns_leave_the_pristine_world_untouched(
        files in proptest::collection::vec(file_strategy(), 0..4),
        arg in "[a-z]{1,6}",
    ) {
        let (spec, paths) = build_spec(&files, &arg);
        let app = Walker { files: paths };
        let session = Session::new(&spec).expect("generated specs are valid");
        let _ = session.execute(&app);
        let rebuilt = spec.materialize().expect("generated specs are valid");
        prop_assert_eq!(&session.world().fs, &rebuilt.world.fs);
        prop_assert_eq!(&session.world().registry, &rebuilt.world.registry);
        prop_assert_eq!(&session.world().net, &rebuilt.world.net);
        prop_assert!(session.world().trace.sites().is_empty());
    }
}
