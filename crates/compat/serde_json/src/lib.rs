//! Offline stand-in for `serde_json`.
//!
//! Serializes the stand-in `serde` data model ([`serde::Value`]) to real
//! JSON text and parses it back, providing the `to_string`,
//! `to_string_pretty` and `from_str` entry points the workspace uses.
//! Maps serialize as arrays of `[key, value]` pairs (the stand-in data
//! model is ordered and key types are not restricted to strings), which is
//! still plain JSON on the wire and round-trips exactly.

#![warn(rust_2018_idioms)]

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.message)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes a `T` from it.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::de(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is shortest-round-trip; force a
                // fractional part so the value re-parses as a float.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; `null` decodes back to NaN.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_delimited(out, items.iter(), indent, depth, ('[', ']'), |out, item, ind, d| {
            write_value(out, item, ind, d)
        }),
        Value::Map(entries) => {
            write_delimited(out, entries.iter(), indent, depth, ('{', '}'), |out, (k, v), ind, d| {
                write_json_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind, d);
            })
        }
    }
}

fn write_delimited<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    mut write_item: impl FnMut(&mut String, T, Option<usize>, usize),
) {
    out.push(open);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
