//! # epa-core — the EAI fault model and environment fault-injection engine
//!
//! The primary contribution of Du & Mathur, *Testing for Software
//! Vulnerability Using Environment Perturbation* (DSN 2000), as a library:
//!
//! * [`model`] — the Environment–Application Interaction (EAI) taxonomy
//!   (paper §2, Tables 1–4 structure);
//! * [`catalog`] — the fault catalog (paper Tables 5 and 6), both as
//!   printable rows and as per-interaction-point fault generators;
//! * [`perturb`] — executable perturbations (direct = environment mutation,
//!   indirect = received-input mutation);
//! * [`inject`] — the hook that delivers one fault at one interaction point
//!   (paper §3.3 step 6 placement semantics);
//! * [`campaign`] — the full testing procedure (paper §3.3 steps 1–10);
//! * [`coverage`] — the two-dimensional adequacy metric (paper §3.2,
//!   Figure 2);
//! * [`report`] — per-fault records, coverage and vulnerability scores;
//! * [`baselines`] — Fuzz and AVA comparators (paper §5).
//!
//! # Example: the paper's §3.4 `lpr` experiment in eight lines
//!
//! ```
//! use epa_core::campaign::{Campaign, TestSetup};
//! use epa_sandbox::app::Application;
//! use epa_sandbox::cred::{Gid, Uid};
//! use epa_sandbox::mode::Mode;
//! use epa_sandbox::os::Os;
//! use epa_sandbox::process::Pid;
//!
//! struct Lpr;
//! impl Application for Lpr {
//!     fn name(&self) -> &'static str { "lpr" }
//!     fn run(&self, os: &mut Os, pid: Pid) -> i32 {
//!         // creat(n, 0660) without O_EXCL — the flaw from the paper.
//!         match os.sys_write_file(pid, "lpr:create", "/var/spool/lpd/job", "data", 0o660) {
//!             Ok(()) => 0,
//!             Err(_) => 1,
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut os = Os::new();
//! os.users.add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
//! os.fs.mkdir_p("/var/spool/lpd", Uid::ROOT, Gid::ROOT, Mode::new(0o755))?;
//! os.fs.put_file("/etc/passwd", "root:0:0:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))?;
//! os.fs.put_file("/usr/bin/lpr", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))?;
//! epa_core::perturb::tag_standard_targets(&mut os);
//!
//! let setup = TestSetup::new(os).program("/usr/bin/lpr");
//! let report = Campaign::new(&Lpr, &setup).execute();
//! assert_eq!(report.injected(), 4);      // existence, ownership, permission, symlink
//! assert_eq!(report.violated(), 4);      // naive creat tolerates none of them
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod campaign;
pub mod catalog;
pub mod coverage;
pub mod inject;
pub mod model;
pub mod perturb;
pub mod report;

pub use campaign::{run_once, Campaign, CampaignOptions, CampaignPlan, RunOutcome, TestSetup};
pub use catalog::{direct_faults_for, faults_for_site, indirect_faults_for, table5_rows, table6_rows};
pub use coverage::{AdequacyPoint, AdequacyRegion, AdequacyThresholds, Ratio};
pub use inject::{InjectionHook, InjectionPlan};
pub use model::{DirectKind, EaiCategory, FsAttribute, IndirectKind, NetAttribute, ProcAttribute};
pub use perturb::{ConcreteFault, DirectFault, FaultPayload, IndirectFault};
pub use report::{CampaignReport, FaultRecord};
