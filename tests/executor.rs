//! Integration: the suite-wide work-stealing executor — thread ceiling,
//! deterministic reassembly, and agreement with the sequential path.
//!
//! The pool's worker gauge is process-global, so every test in this binary
//! that runs a pool takes `POOL_LOCK` first; the ceiling assertions then
//! observe only their own run.

use std::sync::Mutex;

use epa::apps::standard_suite;
use epa::core::engine::executor::{self, Executor};

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn available() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZero::get)
}

#[test]
fn pooled_suite_never_exceeds_available_parallelism_plus_one() {
    let _guard = POOL_LOCK.lock().unwrap();
    executor::reset_peak_live_workers();
    let report = standard_suite().expect("valid specs").execute();
    assert_eq!(report.reports.len(), 8);
    let peak_workers = executor::peak_live_workers();
    // Workers stay within the hardware ceiling; the only other live thread
    // is the calling thread draining results, hence the +1 bound on the
    // total.
    assert!(
        peak_workers <= available(),
        "suite execution spawned {peak_workers} workers on {} cores",
        available()
    );
    let total_live = peak_workers + 1;
    assert!(total_live <= available() + 1);
}

#[test]
fn pooled_suite_reports_are_byte_identical_to_sequential() {
    let _guard = POOL_LOCK.lock().unwrap();
    let pooled = standard_suite().expect("valid specs").execute();
    let sequential = standard_suite().expect("valid specs").sequential().execute();
    assert_eq!(pooled, sequential);
    let pooled_json = serde_json::to_string(&pooled).expect("serialize");
    let sequential_json = serde_json::to_string(&sequential).expect("serialize");
    assert_eq!(
        pooled_json.as_bytes(),
        sequential_json.as_bytes(),
        "pooled and sequential suite reports must serialize byte-identically"
    );
}

#[test]
fn pinned_worker_counts_reassemble_byte_identical_reports() {
    let _guard = POOL_LOCK.lock().unwrap();
    // The sharded queue's determinism contract on the full workload: the
    // standard suite pinned to 1, 4 and 8 workers must reproduce the
    // sequential report byte-for-byte, and the pinned counts must bound
    // the worker high-water regardless of the hardware.
    let sequential = standard_suite().expect("valid specs").sequential().execute();
    let sequential_json = serde_json::to_string(&sequential).expect("serialize");
    for workers in [1usize, 4, 8] {
        executor::reset_peak_live_workers();
        let pooled = standard_suite().expect("valid specs").with_workers(workers).execute();
        let peak = executor::peak_live_workers();
        assert!(
            peak <= workers,
            "suite pinned to {workers} workers recorded a {peak} high-water"
        );
        assert_eq!(pooled, sequential, "suite at {workers} pinned workers diverged");
        assert_eq!(
            serde_json::to_string(&pooled).expect("serialize").as_bytes(),
            sequential_json.as_bytes(),
            "suite at {workers} pinned workers must serialize byte-identically to sequential"
        );
    }
}

#[test]
fn a_forced_multi_worker_pool_still_reassembles_plan_order() {
    let _guard = POOL_LOCK.lock().unwrap();
    // Even above the hardware ceiling (this is the machinery test, not the
    // suite ceiling test), results come back in job order.
    let jobs: Vec<usize> = (0..97).collect();
    let pool = Executor::with_workers(4);
    let mut completion_order: Vec<usize> = Vec::new();
    let out = pool.run_indexed(&jobs, |i, j| (i, j * j), &mut |i, _| completion_order.push(i));
    assert_eq!(completion_order.len(), 97);
    for (i, (idx, square)) in out.iter().enumerate() {
        assert_eq!(*idx, i);
        assert_eq!(*square, i * i);
    }
}

#[test]
fn campaign_parallelism_also_respects_the_ceiling() {
    let _guard = POOL_LOCK.lock().unwrap();
    executor::reset_peak_live_workers();
    use epa::apps::{turnin, Turnin};
    use epa::core::campaign::CampaignOptions;
    use epa::core::engine::Session;
    let report = Session::new(&turnin::spec())
        .expect("valid spec")
        .with_options(CampaignOptions {
            parallel: true,
            ..Default::default()
        })
        .execute(&Turnin);
    assert_eq!(report.injected(), 41);
    assert!(
        executor::peak_live_workers() <= available(),
        "campaign pool exceeded available_parallelism"
    );
}
