//! AVA baseline: internal-state perturbation (Ghosh et al., S&P 1998).
//!
//! AVA corrupts the *internal states assigned to application variables*
//! rather than the environment. The closest faithful analogue in this
//! sandbox: randomly corrupt the values the application's internal entities
//! receive at every input interaction — with no environment-attribute
//! perturbation and no semantic patterns. Per the paper's §5 analysis, this
//! surfaces input-propagation flaws but is structurally blind to direct
//! environment faults (file attributes, symlinks, trust, availability).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use epa_sandbox::app::Application;
use epa_sandbox::data::Data;
use epa_sandbox::error::SysResult;
use epa_sandbox::os::Os;
use epa_sandbox::syscall::{InteractionRef, Interceptor, SysReturn, Syscall};

use super::{BaselineRecord, BaselineReport};
use crate::campaign::{run_once, TestSetup};

/// AVA configuration.
#[derive(Debug, Clone)]
pub struct AvaOptions {
    /// Number of randomized runs.
    pub runs: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that any given input value is corrupted.
    pub intensity: f64,
}

impl Default for AvaOptions {
    fn default() -> Self {
        AvaOptions {
            runs: 100,
            seed: 42,
            intensity: 0.5,
        }
    }
}

/// The AVA hook: corrupts input-derived values as they enter internal state.
struct AvaHook {
    rng: StdRng,
    intensity: f64,
    corruptions: u32,
}

impl AvaHook {
    fn corrupt(&mut self, data: &mut Data) {
        let choice = self.rng.gen_range(0..4u8);
        let text = data.text();
        let mutated = match choice {
            0 => {
                // Bit-flip a random byte.
                let mut bytes = data.as_bytes().to_vec();
                if bytes.is_empty() {
                    vec![0xff]
                } else {
                    let i = self.rng.gen_range(0..bytes.len());
                    bytes[i] ^= 1u8 << self.rng.gen_range(0..8u8);
                    bytes
                }
            }
            1 => text.as_bytes()[..text.len() / 2].to_vec(),
            2 => {
                let mut t = text.into_bytes();
                t.extend(std::iter::repeat_n(b'Z', self.rng.gen_range(1..2048)));
                t
            }
            _ => {
                let len = self.rng.gen_range(0..64);
                (0..len).map(|_| self.rng.gen_range(0x20u8..=0x7e)).collect()
            }
        };
        data.set_bytes(mutated);
        self.corruptions += 1;
    }
}

impl Interceptor for AvaHook {
    fn before(&mut self, _os: &mut Os, _point: &InteractionRef, _call: &Syscall) {}

    fn after(&mut self, _os: &mut Os, point: &InteractionRef, result: &mut SysResult<SysReturn>) {
        if !point.op.is_input() {
            return;
        }
        if self.rng.gen_bool(self.intensity) {
            if let Ok(ret) = result {
                match ret {
                    SysReturn::Payload(d) => self.corrupt(d),
                    SysReturn::Delivery(m) => self.corrupt(&mut m.data),
                    _ => {}
                }
            }
        }
    }
}

/// Runs the AVA baseline.
pub fn run_ava(setup: &TestSetup, app: &dyn Application, options: &AvaOptions) -> BaselineReport {
    let mut seeder = StdRng::seed_from_u64(options.seed);
    let mut records = Vec::with_capacity(options.runs);
    for i in 0..options.runs {
        let run_seed: u64 = seeder.gen();
        let hook = AvaHook {
            rng: StdRng::seed_from_u64(run_seed),
            intensity: options.intensity,
            corruptions: 0,
        };
        let outcome = run_once(setup, app, Some(Box::new(hook)));
        records.push(BaselineRecord {
            input: format!("ava run {i} (seed {run_seed:#x})"),
            exit: outcome.exit,
            crashed: outcome.has_crashed(),
            violations: outcome.violations,
        });
    }
    BaselineReport {
        technique: "ava".into(),
        app: app.name().to_string(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sandbox::buffer::{CopyDiscipline, FixedBuf};
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::mode::Mode;
    use epa_sandbox::process::Pid;
    use epa_sandbox::trace::InputSemantic;

    struct Overflowing;
    impl Application for Overflowing {
        fn name(&self) -> &'static str {
            "overflowing"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let Ok(arg) = os.sys_arg(pid, "ovf:arg", 0, InputSemantic::UserFileName) else {
                return 2;
            };
            let mut buf = FixedBuf::new("argbuf", 256);
            os.mem_copy(pid, &mut buf, &arg, CopyDiscipline::Unchecked);
            0
        }
    }

    /// Vulnerable only to a *direct* fault (symlink swap) — AVA cannot see it.
    struct DirectOnly;
    impl Application for DirectOnly {
        fn name(&self) -> &'static str {
            "direct-only"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let _ = os.sys_write_file(pid, "do:create", "/var/spool/x", "job", 0o660);
            0
        }
    }

    fn setup() -> TestSetup {
        let mut os = Os::new();
        os.users
            .add("u", os.scenario.invoker, os.scenario.invoker_gid, "/home/u");
        os.fs
            .mkdir_p("/var/spool", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        os.fs
            .put_file("/usr/bin/app", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))
            .unwrap();
        TestSetup::new(os).program("/usr/bin/app").args(["input"])
    }

    #[test]
    fn ava_finds_input_propagation_flaws() {
        let s = setup();
        let rep = run_ava(
            &s,
            &Overflowing,
            &AvaOptions {
                runs: 60,
                seed: 3,
                intensity: 0.9,
            },
        );
        assert!(rep.detections() > 0, "length corruption must trip the overflow");
    }

    #[test]
    fn ava_misses_direct_environment_flaws() {
        let s = setup();
        let rep = run_ava(
            &s,
            &DirectOnly,
            &AvaOptions {
                runs: 40,
                seed: 3,
                intensity: 0.9,
            },
        );
        assert_eq!(
            rep.detections(),
            0,
            "no internal-state corruption can surface the symlink flaw"
        );
    }

    #[test]
    fn ava_is_deterministic_per_seed() {
        let s = setup();
        let o = AvaOptions {
            runs: 10,
            seed: 11,
            intensity: 0.7,
        };
        assert_eq!(run_ava(&s, &Overflowing, &o), run_ava(&s, &Overflowing, &o));
    }
}
