//! Auditing network daemons: environment perturbation vs random fuzzing.
//!
//! ```text
//! cargo run --example netdaemon_audit
//! ```
//!
//! Runs the EPA campaign over `fingerd` and `authd`, then gives Fuzz the
//! same budget on `fingerd` — showing both what random input *does* find
//! (the overflow) and what only environment perturbation finds
//! (authenticity, protocol, trust and disclosure flaws).

use epa::apps::fingerd::FINGER_PORT;
use epa::apps::{worlds, Authd, Fingerd};
use epa::core::baselines::fuzz::{run_fuzz, FuzzOptions, FuzzTarget};
use epa::core::engine::Session;

fn main() {
    let finger_setup = worlds::fingerd_world();
    let finger = Session::from_setup(finger_setup.clone()).execute(&Fingerd);
    println!("{}", finger.render_text());

    let authd_setup = worlds::authd_world();
    let authd = Session::from_setup(authd_setup.clone()).execute(&Authd);
    println!("{}", authd.render_text());

    let budget = finger.injected();
    let fuzz = run_fuzz(
        &finger_setup,
        &Fingerd,
        &FuzzOptions {
            runs: budget,
            seed: 7,
            max_len: 6000,
            target: FuzzTarget::Net {
                port: FINGER_PORT,
                from: "trusted.cs.example.edu".into(),
            },
        },
    );
    println!(
        "fuzz on fingerd with the same budget ({budget} runs): {} detecting runs, rules: {:?}",
        fuzz.detections(),
        fuzz.distinct_rules()
    );
    println!(
        "epa on fingerd: {} violations, rules: {:?}",
        finger.violated(),
        finger
            .violations()
            .flat_map(|r| r.violations.iter().map(|v| v.rule.clone()))
            .collect::<std::collections::BTreeSet<_>>()
    );
}
