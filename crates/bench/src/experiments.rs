//! Experiment runners: every table and figure of the paper.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use epa_apps::{worlds, Authd, Backupd, Fingerd, FontPurge, Lpr, MailNotify, NtLogon, Turnin, TurninFixed};
use epa_core::baselines::ava::{run_ava, AvaOptions};
use epa_core::baselines::fuzz::{run_fuzz, FuzzOptions, FuzzTarget};
use epa_core::baselines::BaselineReport;
use epa_core::campaign::{run_once, CampaignOptions, TestSetup};
use epa_core::coverage::{AdequacyPoint, AdequacyRegion, AdequacyThresholds};
use epa_core::engine::{Session, SuiteReport};
use epa_core::inject::InjectionPlan;
use epa_core::model::FsAttribute;
use epa_core::perturb::{ConcreteFault, FaultPayload};
use epa_core::report::CampaignReport;
use epa_core::{table5_rows, table6_rows};
use epa_sandbox::app::Application;
use epa_sandbox::error::SysResult;
use epa_sandbox::os::Os;
use epa_sandbox::syscall::{InteractionRef, Interceptor, SysReturn, Syscall};
use epa_sandbox::trace::SiteId;

// ----------------------------------------------------------------------
// Tables 1–4: the vulnerability-database classification
// ----------------------------------------------------------------------

/// Computes and renders paper Table 1.
pub fn table1() -> String {
    epa_vulndb::compute(&epa_vulndb::entries()).table1.render()
}

/// Computes and renders paper Table 2.
pub fn table2() -> String {
    epa_vulndb::compute(&epa_vulndb::entries()).table2.render()
}

/// Computes and renders paper Table 3.
pub fn table3() -> String {
    epa_vulndb::compute(&epa_vulndb::entries()).table3.render()
}

/// Computes and renders paper Table 4.
pub fn table4() -> String {
    epa_vulndb::compute(&epa_vulndb::entries()).table4.render()
}

fn render_catalog(title: &str, rows: &[epa_core::catalog::CatalogRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let mut last_entity = String::new();
    for row in rows {
        let entity = if row.entity == last_entity {
            String::new()
        } else {
            row.entity.clone()
        };
        last_entity = row.entity.clone();
        let _ = writeln!(s, "{:<24} {:<28} {}", entity, row.item, row.injections.join("; "));
    }
    s
}

/// Renders paper Table 5 (the indirect-fault catalog).
pub fn table5() -> String {
    render_catalog(
        "Table 5: indirect environment faults and environment perturbations",
        &table5_rows(),
    )
}

/// Renders paper Table 6 (the direct-fault catalog).
pub fn table6() -> String {
    render_catalog(
        "Table 6: direct environment faults and environment perturbations",
        &table6_rows(),
    )
}

// ----------------------------------------------------------------------
// Figure 1: indirect vs direct propagation, measured
// ----------------------------------------------------------------------

/// Measured split of detected violations by propagation path.
#[derive(Debug, Clone)]
pub struct Figure1Result {
    /// Violations triggered by faults that propagated through internal
    /// entities (indirect).
    pub via_internal_entity: usize,
    /// Violations triggered by faults acting through environment entities
    /// (direct).
    pub via_environment_entity: usize,
    /// Total faults injected.
    pub injected: usize,
}

impl Figure1Result {
    /// Renders the figure as annotated ASCII.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Figure 1: interaction model (measured on `turnin`, {} faults)",
            self.injected
        );
        let _ = writeln!(s, "  (a) environment ──input──> internal entity ──use──> violation");
        let _ = writeln!(s, "      indirect-path violations: {}", self.via_internal_entity);
        let _ = writeln!(s, "  (b) environment entity ──interaction──> violation");
        let _ = writeln!(s, "      direct-path violations:   {}", self.via_environment_entity);
        s
    }
}

/// Runs the turnin campaign and splits its violations by propagation path.
pub fn figure1() -> Figure1Result {
    let report = Session::from_setup(worlds::turnin_world()).execute(&Turnin);
    let via_internal_entity = report.violations().filter(|r| r.category.is_indirect()).count();
    let via_environment_entity = report.violations().filter(|r| r.category.is_direct()).count();
    Figure1Result {
        via_internal_entity,
        via_environment_entity,
        injected: report.injected(),
    }
}

// ----------------------------------------------------------------------
// Figure 2: the two-dimensional adequacy metric
// ----------------------------------------------------------------------

/// One measured Figure 2 sample point.
#[derive(Debug, Clone)]
pub struct Figure2Point {
    /// What was run.
    pub label: String,
    /// The coverage point.
    pub point: AdequacyPoint,
    /// Its region.
    pub region: AdequacyRegion,
}

/// The four measured sample points of Figure 2.
#[derive(Debug, Clone)]
pub struct Figure2Result {
    /// Points 1–4, in the paper's numbering.
    pub points: Vec<Figure2Point>,
}

impl Figure2Result {
    /// Renders the measured points.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Figure 2: test adequacy metric (measured sample points)");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(
                s,
                "  point {}: {:<34} interaction={:.2} fault={:.2} -> {}",
                i + 1,
                p.label,
                p.point.interaction,
                p.point.fault,
                p.region
            );
        }
        s
    }
}

/// Runs four campaigns reproducing the four sample points of Figure 2.
pub fn figure2() -> Figure2Result {
    let thresholds = AdequacyThresholds::default();
    let session = Session::from_setup(worlds::turnin_world());
    let restricted = session.clone().with_options(CampaignOptions {
        max_sites: Some(3),
        max_faults_per_site: Some(2),
        ..Default::default()
    });

    let mk = |label: &str, report: &CampaignReport| {
        let point = report.adequacy();
        Figure2Point {
            label: label.to_string(),
            point,
            region: point.region(thresholds),
        }
    };
    let p1 = restricted.execute(&Turnin);
    let p2 = restricted.execute(&TurninFixed);
    let p3 = session.execute(&Turnin);
    let p4 = session.execute(&TurninFixed);
    Figure2Result {
        points: vec![
            mk("turnin, 3 sites x 2 faults", &p1),
            mk("turnin-fixed, 3 sites x 2 faults", &p2),
            mk("turnin, full campaign", &p3),
            mk("turnin-fixed, full campaign", &p4),
        ],
    }
}

// ----------------------------------------------------------------------
// §3.4: the lpr example
// ----------------------------------------------------------------------

/// The measured §3.4 lpr experiment.
#[derive(Debug, Clone)]
pub struct LprResult {
    /// Table 6 file-system attributes considered (the paper's list of 7).
    pub candidate_attributes: usize,
    /// Attributes applicable at the `create` interaction.
    pub applicable: usize,
    /// Faults injected.
    pub injected: usize,
    /// Faults that caused a violation.
    pub violations: usize,
    /// Per-fault outcome lines.
    pub outcomes: Vec<String>,
}

impl LprResult {
    /// Renders the experiment.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Paper §3.4 — lpr `create` interaction point");
        let _ = writeln!(
            s,
            "  candidate file attributes: {}   applicable: {}   injected: {}   violations: {}",
            self.candidate_attributes, self.applicable, self.injected, self.violations
        );
        for o in &self.outcomes {
            let _ = writeln!(s, "  {o}");
        }
        s
    }
}

/// Reproduces the paper's §3.4 walkthrough: perturb only the `create`
/// interaction of `lpr` and observe which attributes it tolerates.
pub fn lpr_34() -> LprResult {
    let mut filter = BTreeSet::new();
    filter.insert(SiteId::new("lpr:create_spool"));
    let report = Session::from_setup(worlds::lpr_world())
        .with_options(CampaignOptions {
            site_filter: Some(filter),
            ..Default::default()
        })
        .execute(&Lpr);
    let outcomes = report
        .records
        .iter()
        .map(|r| {
            let verdict = if r.tolerated() { "tolerated" } else { "VIOLATION" };
            format!("{:<55} -> {verdict}", r.fault_id)
        })
        .collect();
    LprResult {
        candidate_attributes: FsAttribute::ALL.len(),
        applicable: report.injected(),
        injected: report.injected(),
        violations: report.violated(),
        outcomes,
    }
}

// ----------------------------------------------------------------------
// §4.1: turnin
// ----------------------------------------------------------------------

/// The measured §4.1 turnin experiment.
#[derive(Debug, Clone)]
pub struct TurninResult {
    /// The full campaign report (vulnerable turnin).
    pub report: CampaignReport,
    /// The fixed variant's report.
    pub fixed: CampaignReport,
}

impl TurninResult {
    /// Renders the experiment against the paper's numbers.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Paper §4.1 — turnin");
        let _ = writeln!(
            s,
            "  interaction points: {} (paper: 8)   perturbations: {} (paper: 41)   violations: {} (paper: 9)",
            self.report.total_sites,
            self.report.injected(),
            self.report.violated()
        );
        for (site, injected, violated) in self.report.by_site() {
            let _ = writeln!(s, "    {site:<28} {injected:>2} injected  {violated} violations");
        }
        for r in self.report.violations() {
            let _ = writeln!(s, "  VIOLATION {:<50} @ {}", r.fault_id, r.site);
        }
        let _ = writeln!(
            s,
            "  turnin-fixed: {} injected, {} violations (fault coverage {})",
            self.fixed.injected(),
            self.fixed.violated(),
            self.fixed.fault_coverage()
        );
        s
    }
}

/// Runs the full turnin campaign (and the fixed variant).
pub fn turnin_41() -> TurninResult {
    let session = Session::from_setup(worlds::turnin_world());
    TurninResult {
        report: session.execute(&Turnin),
        fixed: session.execute(&TurninFixed),
    }
}

// ----------------------------------------------------------------------
// §4.2: the NT registry
// ----------------------------------------------------------------------

/// The measured §4.2 registry experiment.
#[derive(Debug, Clone)]
pub struct RegistryResult {
    /// Unprotected keys in the registry (paper: 29).
    pub unprotected: usize,
    /// Keys consumed by the modeled modules (paper: 9 exercised).
    pub exercised: usize,
    /// Exercised keys whose perturbation produced a violation (paper: 9).
    pub exploited: usize,
    /// Per-key outcome lines.
    pub per_key: Vec<String>,
}

impl RegistryResult {
    /// Renders the experiment.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Paper §4.2 — Windows NT registry");
        let _ = writeln!(
            s,
            "  unprotected keys: {} (paper: 29)   exercised by modules: {}   exploited: {} (paper: 9)",
            self.unprotected, self.exercised, self.exploited
        );
        for k in &self.per_key {
            let _ = writeln!(s, "  {k}");
        }
        let _ = writeln!(
            s,
            "  remaining {} unprotected keys are consumed by no modeled module (the paper's speculation set)",
            self.unprotected - self.exercised
        );
        s
    }
}

/// Runs the fontpurge and ntlogon campaigns and counts exploited keys.
pub fn registry_42() -> RegistryResult {
    let font_session = Session::from_setup(worlds::fontpurge_world());
    let unprotected = font_session.world().registry.unprotected_keys().len();
    let font_report = font_session.execute(&FontPurge);
    let logon_report = Session::from_setup(worlds::ntlogon_world()).execute(&NtLogon);

    let mut per_key = Vec::new();
    let mut exploited = 0usize;
    let mut exercised = 0usize;
    // The five font keys map to fontpurge's read sites.
    for i in 0..epa_apps::fontpurge::FONT_KEYS {
        exercised += 1;
        let site = format!("fontpurge:read_key{i}");
        let violated = font_report
            .records
            .iter()
            .filter(|r| r.site == site && !r.tolerated())
            .count();
        if violated > 0 {
            exploited += 1;
        }
        per_key.push(format!(
            "HKLM/Software/Fonts/Cache{i:<2} -> {violated} violating perturbations ({})",
            if violated > 0 { "EXPLOITED" } else { "held" }
        ));
    }
    // The four logon keys map to ntlogon's read sites.
    for name in epa_apps::ntlogon::LOGON_KEYS {
        exercised += 1;
        let site = format!("ntlogon:read_{}", name.to_lowercase());
        let violated = logon_report
            .records
            .iter()
            .filter(|r| r.site == site && !r.tolerated())
            .count();
        if violated > 0 {
            exploited += 1;
        }
        per_key.push(format!(
            "HKLM/Software/Logon/{name:<10} -> {violated} violating perturbations ({})",
            if violated > 0 { "EXPLOITED" } else { "held" }
        ));
    }
    RegistryResult {
        unprotected,
        exercised,
        exploited,
        per_key,
    }
}

// ----------------------------------------------------------------------
// §5: comparison against Fuzz and AVA
// ----------------------------------------------------------------------

/// One application's comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Application name.
    pub app: String,
    /// Distinct violation rules EPA (this paper's method) surfaced.
    pub epa_rules: BTreeSet<String>,
    /// Distinct rules Fuzz surfaced.
    pub fuzz_rules: BTreeSet<String>,
    /// Distinct rules AVA surfaced.
    pub ava_rules: BTreeSet<String>,
}

/// The full comparison.
#[derive(Debug, Clone)]
pub struct ComparisonResult {
    /// Rows, one per application.
    pub rows: Vec<ComparisonRow>,
    /// Runs used per baseline.
    pub baseline_runs: usize,
}

impl ComparisonResult {
    /// Renders the comparison.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "Paper §5 — what each technique surfaces ({} runs per baseline; distinct violated policy rules)",
            self.baseline_runs
        );
        let _ = writeln!(
            s,
            "  {:<12} {:>5} {:>5} {:>5}   EPA-only rules",
            "app", "EPA", "Fuzz", "AVA"
        );
        for row in &self.rows {
            let epa_only: Vec<&String> = row
                .epa_rules
                .iter()
                .filter(|r| !row.fuzz_rules.contains(*r) && !row.ava_rules.contains(*r))
                .collect();
            let _ = writeln!(
                s,
                "  {:<12} {:>5} {:>5} {:>5}   {}",
                row.app,
                row.epa_rules.len(),
                row.fuzz_rules.len(),
                row.ava_rules.len(),
                epa_only.iter().map(|r| r.as_str()).collect::<Vec<_>>().join(", ")
            );
        }
        s
    }
}

fn rules_of(report: &BaselineReport) -> BTreeSet<String> {
    report.distinct_rules()
}

/// Runs EPA, Fuzz and AVA over three applications with a shared budget.
pub fn comparison() -> ComparisonResult {
    let runs = 60;
    let mut rows = Vec::new();

    let cases: Vec<(&dyn Application, TestSetup, FuzzTarget)> = vec![
        (&Turnin, worlds::turnin_world(), FuzzTarget::Args),
        (
            &Fingerd,
            worlds::fingerd_world(),
            FuzzTarget::Net {
                port: epa_apps::fingerd::FINGER_PORT,
                from: "trusted.cs.example.edu".into(),
            },
        ),
        (
            &MailNotify,
            worlds::mailnotify_world(),
            FuzzTarget::Ipc {
                channel: epa_apps::mailnotify::CHANNEL.into(),
                from: "maild".into(),
            },
        ),
    ];
    for (app, setup, target) in cases {
        let epa_report = Session::from_setup(setup.clone()).execute(app);
        let epa_rules: BTreeSet<String> = epa_report
            .violations()
            .flat_map(|r| r.violations.iter().map(|v| v.rule.clone()))
            .collect();
        let fuzz = run_fuzz(
            &setup,
            app,
            &FuzzOptions {
                runs,
                seed: 17,
                max_len: 6000,
                target,
            },
        );
        let ava = run_ava(
            &setup,
            app,
            &AvaOptions {
                runs,
                seed: 17,
                intensity: 0.8,
            },
        );
        rows.push(ComparisonRow {
            app: app.name().to_string(),
            epa_rules,
            fuzz_rules: rules_of(&fuzz),
            ava_rules: rules_of(&ava),
        });
    }
    ComparisonResult {
        rows,
        baseline_runs: runs,
    }
}

// ----------------------------------------------------------------------
// Ablation: injection placement (paper §3.3 step 6)
// ----------------------------------------------------------------------

/// A deliberately wrong hook: applies direct faults *after* the interaction.
struct AfterPlacementHook {
    plan: InjectionPlan,
    fired: bool,
}

impl Interceptor for AfterPlacementHook {
    fn before(&mut self, _os: &mut Os, _point: &InteractionRef, _call: &Syscall) {}

    fn after(&mut self, os: &mut Os, point: &InteractionRef, _result: &mut SysResult<SysReturn>) {
        if self.fired || point.site != self.plan.site || point.occurrence != self.plan.occurrence {
            return;
        }
        if let FaultPayload::Direct(df) = &self.plan.fault.payload {
            if df.apply(os, point.pid).is_ok() {
                self.fired = true;
            }
        }
    }
}

/// Placement-ablation outcome.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// Violations when direct faults are injected before the point (correct).
    pub before_violations: usize,
    /// Violations when the same faults land after the point (wrong).
    pub after_violations: usize,
    /// Faults used.
    pub injected: usize,
}

impl PlacementResult {
    /// Renders the ablation.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Ablation — direct-fault injection placement (paper §3.3 step 6)");
        let _ = writeln!(
            s,
            "  {} direct faults at lpr's create: before-point -> {} violations; after-point -> {} violations",
            self.injected, self.before_violations, self.after_violations
        );
        let _ = writeln!(
            s,
            "  (a perturbation that arrives after the interaction has already happened misses it)"
        );
        s
    }
}

/// Injects lpr's create-site faults before vs after the interaction point.
pub fn placement() -> PlacementResult {
    let mut filter = BTreeSet::new();
    filter.insert(SiteId::new("lpr:create_spool"));
    let session = Session::from_setup(worlds::lpr_world()).with_options(CampaignOptions {
        site_filter: Some(filter),
        ..Default::default()
    });
    let plan = session.plan(&Lpr);
    let faults: Vec<ConcreteFault> = plan
        .sites
        .iter()
        .filter(|s| s.included)
        .flat_map(|s| s.faults.clone())
        .collect();
    let before = session.execute_plan(&Lpr, &plan);

    let mut after_violations = 0usize;
    for fault in &faults {
        let hook = AfterPlacementHook {
            plan: InjectionPlan {
                site: SiteId::new("lpr:create_spool"),
                occurrence: 0,
                fault: fault.clone(),
            },
            fired: false,
        };
        let outcome = run_once(session.setup(), &Lpr, Some(Box::new(hook)));
        if !outcome.violations.is_empty() {
            after_violations += 1;
        }
    }
    PlacementResult {
        before_violations: before.violated(),
        after_violations,
        injected: faults.len(),
    }
}

// ----------------------------------------------------------------------
// Ablation: semantic patterns vs random mutation (paper §3.1)
// ----------------------------------------------------------------------

/// Pattern-vs-random ablation outcome.
#[derive(Debug, Clone)]
pub struct PatternsResult {
    /// Catalog faults injected and the violations they produced.
    pub catalog: (usize, usize),
    /// Random-input runs and the runs that produced violations.
    pub random: (usize, usize),
    /// Distinct rules the catalog surfaced that random input did not.
    pub catalog_only_rules: BTreeSet<String>,
}

impl PatternsResult {
    /// Renders the ablation.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Ablation — semantic fault patterns vs random input (paper §3.1)");
        let _ = writeln!(
            s,
            "  catalog: {} faults -> {} violations   random: {} runs -> {} detecting runs",
            self.catalog.0, self.catalog.1, self.random.0, self.random.1
        );
        let _ = writeln!(
            s,
            "  rules only the semantic catalog surfaced: {}",
            self.catalog_only_rules.iter().cloned().collect::<Vec<_>>().join(", ")
        );
        s
    }
}

/// Compares the 41-fault turnin catalog against an equal-budget random
/// argument fuzz.
pub fn patterns() -> PatternsResult {
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup.clone()).execute(&Turnin);
    let catalog_rules: BTreeSet<String> = report
        .violations()
        .flat_map(|r| r.violations.iter().map(|v| v.rule.clone()))
        .collect();
    let budget = report.injected();
    let fuzz = run_fuzz(
        &setup,
        &Turnin,
        &FuzzOptions {
            runs: budget,
            seed: 5,
            max_len: 6000,
            target: FuzzTarget::Args,
        },
    );
    let fuzz_rules = fuzz.distinct_rules();
    PatternsResult {
        catalog: (report.injected(), report.violated()),
        random: (fuzz.runs(), fuzz.detections()),
        catalog_only_rules: catalog_rules.difference(&fuzz_rules).cloned().collect(),
    }
}

// ----------------------------------------------------------------------
// Batch: the standard suite over all eight applications
// ----------------------------------------------------------------------

/// Runs the eight-application standard suite as one batch over the engine's
/// `Suite` runner and returns the aggregated report with cross-application
/// rollups.
pub fn suite() -> SuiteReport {
    epa_apps::standard_suite()
        .expect("the case-study specs are valid")
        .execute()
}

/// As [`suite`], layered over `cache` (typically
/// [`epa_core::engine::ResultCache::persistent`]): executes the standard
/// suite with every digest written through to the cache's backend, and
/// returns the report together with the suite's lockfile manifest — the
/// exact store keys a warm cross-process replay needs.
pub fn suite_with_cache(cache: epa_core::engine::ResultCache) -> (SuiteReport, epa_core::store::SuiteManifest) {
    let suite = epa_apps::standard_suite()
        .expect("the case-study specs are valid")
        .with_result_cache(cache);
    let report = suite.execute();
    let manifest = suite.manifest();
    (report, manifest)
}

// ----------------------------------------------------------------------
// The property-based scenario corpus
// ----------------------------------------------------------------------

/// Synthesizes `count` scenarios from `seed`, runs each through every
/// execution path via the differential harness (scripted-adapter apps),
/// and returns the corpus adequacy dashboard.
pub fn corpus(seed: u64, count: usize) -> epa_core::corpus::CorpusReport {
    let factory = epa_apps::ScriptedApp::factory();
    epa_core::corpus::run_corpus(&epa_core::corpus::CorpusConfig { seed, count }, &factory)
}

// ----------------------------------------------------------------------
// Sanity: every clean world is violation-free
// ----------------------------------------------------------------------

/// Checks that every model application runs violation-free unperturbed —
/// the precondition for attributing campaign violations to injected faults.
pub fn clean_baseline() -> Vec<(String, usize)> {
    let cases: Vec<(&dyn Application, TestSetup)> = vec![
        (&Lpr, worlds::lpr_world()),
        (&Turnin, worlds::turnin_world()),
        (&FontPurge, worlds::fontpurge_world()),
        (&NtLogon, worlds::ntlogon_world()),
        (&Fingerd, worlds::fingerd_world()),
        (&Authd, worlds::authd_world()),
        (&MailNotify, worlds::mailnotify_world()),
        (&Backupd, worlds::backupd_world()),
    ];
    cases
        .into_iter()
        .map(|(app, setup)| {
            let out = run_once(&setup, app, None);
            // Re-judge the completed log through a fresh copy of the
            // setup's own oracle (standard families plus any declared
            // invariants): the batch count must agree with the incremental
            // verdicts the run itself produced.
            let n = setup.oracle().evaluate_log(&out.os.audit).len();
            debug_assert_eq!(n, out.violations.len());
            (app.name().to_string(), n)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_baselines_are_all_zero() {
        for (app, violations) in clean_baseline() {
            assert_eq!(violations, 0, "{app} must be violation-free unperturbed");
        }
    }

    #[test]
    fn lpr_34_matches_paper() {
        let r = lpr_34();
        assert_eq!(r.candidate_attributes, 7);
        assert_eq!(r.injected, 4);
        assert_eq!(r.violations, 4);
    }

    #[test]
    fn suite_batch_covers_all_eight_apps() {
        let report = suite();
        assert_eq!(report.reports.len(), 8);
        assert_eq!(report.vulnerable_apps().len(), 8);
        assert!(report.total_injected() > report.total_violated());
        for app in [
            "lpr",
            "turnin",
            "fontpurge",
            "ntlogon",
            "fingerd",
            "authd",
            "mailnotify",
            "backupd",
        ] {
            assert!(report.get(app).is_some(), "{app} missing from suite report");
        }
    }

    #[test]
    fn placement_ablation_shows_the_asymmetry() {
        let r = placement();
        assert_eq!(r.before_violations, 4);
        assert_eq!(r.after_violations, 0);
    }
}

// ----------------------------------------------------------------------
// The static analyzer's world linter
// ----------------------------------------------------------------------

/// One standard-suite world's static-analysis verdict: the lint report
/// plus the fault-relevance tally over its full injection plan.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LintSummary {
    /// Application name (the lint subject).
    pub app: String,
    /// Jobs the analyzer proved must be executed.
    pub relevant: usize,
    /// Jobs the analyzer proved inert (droppable without running).
    pub inert: usize,
    /// Jobs the analyzer could not classify (always executed).
    pub unknown: usize,
    /// World-lint diagnostics (EPA0001–EPA0005).
    pub report: epa_core::LintReport,
}

impl LintSummary {
    /// Renders the tally line plus the lint report.
    pub fn render(&self) -> String {
        format!(
            "{}  [relevance: {} relevant, {} provably inert, {} unknown]\n",
            self.report.render_text(),
            self.relevant,
            self.inert,
            self.unknown
        )
    }
}

/// Lints every standard-suite world through the static analysis layer:
/// materialize the spec, trace one clean run, classify the full fault plan
/// (`Relevant` / `ProvablyInert` / `Unknown`), and check the world
/// declarations for dead or contradictory entries (EPA0001–EPA0005).
pub fn lint() -> Vec<LintSummary> {
    let budget = CampaignOptions::default().max_occurrences_per_site;
    epa_apps::standard_apps()
        .into_iter()
        .map(|(app, spec)| {
            let setup = spec.materialize().expect("the case-study specs are valid");
            let session = Session::from_setup(setup.clone());
            let plan = session.plan(&*app);
            let analysis = epa_core::AppAnalysis::from_clean_run(&setup, &plan.clean);
            let jobs = plan.jobs();
            let (relevant, inert, unknown) = analysis.tally(&jobs);
            let report = epa_core::lint_setup(app.name(), &spec, &analysis, &jobs, Some(budget));
            LintSummary {
                app: app.name().to_string(),
                relevant,
                inert,
                unknown,
                report,
            }
        })
        .collect()
}
