//! Interned path symbols — the hot-loop's answer to per-component
//! `String` churn.
//!
//! Every path that flows through the sandbox (walk resolution, audit
//! events, fault-key canonicalization) is first *cleaned* with
//! [`crate::path::clean`] and then interned into a process-wide symbol
//! table. The resulting [`PathSym`] is a `Copy` handle: cloning an
//! audit event no longer copies path bytes, equality is a pointer
//! compare, and the same path text is stored exactly once for the
//! lifetime of the process.
//!
//! Two invariants make the symbol a drop-in replacement for the owned
//! `String` it displaces:
//!
//! 1. **Symbol equality ≡ clean equality.** `intern(a) == intern(b)`
//!    exactly when `path::clean(a) == path::clean(b)` — including the
//!    `..`-preserving rule pinned in PR 5 (`..` is resolved physically
//!    by the VFS walk, never textually here).
//! 2. **Content uniqueness.** The table never stores two allocations
//!    with equal text, so the pointer-equality fast path and the
//!    content [`Ord`] are mutually consistent.
//!
//! The table leaks its strings (`Box::leak`) — a deliberate arena:
//! the set of distinct paths in a campaign is small and bounded by the
//! scenario corpus, and leaking buys `&'static str` handles with no
//! unsafe code and no lifetime threading. [`stats`] exposes hit/miss
//! counters that double as the allocations-per-run proxy reported by
//! `benches/hotpath.rs` (a counting global allocator is off the table:
//! the workspace forbids `unsafe_code`).

use shim_sync::sync::atomic::{AtomicU64, Ordering};
use shim_sync::sync::{OnceLock, RwLock};
use std::collections::HashMap;
use std::fmt;

use crate::path;

/// An interned, cleaned path — a `Copy` symbol whose equality is a
/// pointer compare and whose text lives for the life of the process.
///
/// Construct one with [`intern`] (or the `From` impls, which intern).
/// The symbol derefs to `str`, so read-only call sites
/// (`starts_with`, `contains`, formatting) keep working unchanged.
#[derive(Clone, Copy)]
pub struct PathSym(&'static str);

impl PathSym {
    /// The interned root path, `"/"`.
    pub fn root() -> PathSym {
        intern("/")
    }

    /// The symbol's text (already cleaned).
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// Interns `self`'s text joined with one more component — the walk
    /// loop's path extension, served from a `(dir, name)` cache so a
    /// re-walked prefix never re-allocates.
    pub fn join(&self, name: &str) -> PathSym {
        table().join(*self, name)
    }
}

impl PartialEq for PathSym {
    fn eq(&self, other: &PathSym) -> bool {
        // Content uniqueness makes pointer equality exact.
        std::ptr::eq(self.0, other.0)
    }
}

impl Eq for PathSym {}

impl std::hash::Hash for PathSym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash by content so PathSym and str keys agree in maps that
        // mix them; equality remains the pointer fast path.
        self.0.hash(state);
    }
}

impl PartialOrd for PathSym {
    fn partial_cmp(&self, other: &PathSym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PathSym {
    fn cmp(&self, other: &PathSym) -> std::cmp::Ordering {
        // Content order: deterministic across runs (pointer order is
        // not), which the verdict sort keys rely on.
        self.0.cmp(other.0)
    }
}

impl std::ops::Deref for PathSym {
    type Target = str;
    fn deref(&self) -> &str {
        self.0
    }
}

impl AsRef<str> for PathSym {
    fn as_ref(&self) -> &str {
        self.0
    }
}

impl fmt::Display for PathSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for PathSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0, f)
    }
}

impl From<&str> for PathSym {
    fn from(s: &str) -> PathSym {
        intern(s)
    }
}

impl From<&String> for PathSym {
    fn from(s: &String) -> PathSym {
        intern(s)
    }
}

impl From<String> for PathSym {
    fn from(s: String) -> PathSym {
        intern(&s)
    }
}

impl PartialEq<str> for PathSym {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for PathSym {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for PathSym {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<PathSym> for str {
    fn eq(&self, other: &PathSym) -> bool {
        self == other.0
    }
}

impl PartialEq<PathSym> for &str {
    fn eq(&self, other: &PathSym) -> bool {
        *self == other.0
    }
}

impl PartialEq<PathSym> for String {
    fn eq(&self, other: &PathSym) -> bool {
        self.as_str() == other.0
    }
}

impl serde::Serialize for PathSym {
    fn ser(&self) -> serde::Value {
        // Wire format is the plain string — every JSON schema that
        // carried an owned path is byte-identical with symbols.
        serde::Value::Str(self.0.to_string())
    }
}

impl serde::Deserialize for PathSym {
    fn de(v: &serde::Value) -> Result<PathSym, serde::DeError> {
        match v {
            serde::Value::Str(s) => Ok(intern(s)),
            _ => Err(serde::DeError::expected("path string", "PathSym")),
        }
    }
}

/// Interner counters — the bench's allocations-per-run proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternStats {
    /// Lookups served from the table without allocating.
    pub hits: u64,
    /// Lookups that interned (and leaked) a new string.
    pub misses: u64,
    /// Distinct symbols currently live (equals total leaked strings).
    pub symbols: u64,
    /// `(dir, name)` join-cache lookups served without re-cleaning.
    pub join_hits: u64,
}

struct Table {
    syms: RwLock<HashMap<&'static str, PathSym>>,
    joins: RwLock<HashMap<(PathSym, PathSym), PathSym>>,
    hits: AtomicU64,
    misses: AtomicU64,
    join_hits: AtomicU64,
}

fn table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| Table {
        syms: RwLock::new(HashMap::new()),
        joins: RwLock::new(HashMap::new()),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        join_hits: AtomicU64::new(0),
    })
}

impl Table {
    /// Interns text that is already clean (private fast path).
    fn intern_clean(&self, cleaned: &str) -> PathSym {
        if let Some(&sym) = self.syms.read().expect("interner poisoned").get(cleaned) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return sym;
        }
        let mut map = self.syms.write().expect("interner poisoned");
        // Double-check: another thread may have interned between locks.
        if let Some(&sym) = map.get(cleaned) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return sym;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let leaked: &'static str = Box::leak(cleaned.to_string().into_boxed_str());
        let sym = PathSym(leaked);
        map.insert(leaked, sym);
        sym
    }

    fn join(&self, dir: PathSym, name: &str) -> PathSym {
        // The component is itself a symbol, so the cache key is Copy
        // and 'static. Cleaning is segment-local, so keying on the
        // cleaned component cannot conflate distinct joined paths.
        let name_sym = intern(name);
        if let Some(&sym) = self.joins.read().expect("interner poisoned").get(&(dir, name_sym)) {
            self.join_hits.fetch_add(1, Ordering::Relaxed);
            return sym;
        }
        let sym = intern(&path::join(dir.as_str(), name_sym.as_str()));
        self.joins
            .write()
            .expect("interner poisoned")
            .insert((dir, name_sym), sym);
        sym
    }
}

/// Interns a path: cleans it with [`path::clean`], then returns the
/// process-wide unique symbol for the cleaned text.
pub fn intern(p: &str) -> PathSym {
    let t = table();
    // Most lookups arrive already clean (walk output, re-interned
    // symbols); probe the raw text first and only clean on miss.
    if let Some(&sym) = t.syms.read().expect("interner poisoned").get(p) {
        // A stored key is always cleaned text, so a raw hit here means
        // `p` was already clean.
        t.hits.fetch_add(1, Ordering::Relaxed);
        return sym;
    }
    let cleaned = path::clean(p);
    t.intern_clean(&cleaned)
}

/// A snapshot of the interner counters (see [`InternStats`]).
pub fn stats() -> InternStats {
    let t = table();
    InternStats {
        hits: t.hits.load(Ordering::Relaxed),
        misses: t.misses.load(Ordering::Relaxed),
        symbols: t.syms.read().expect("interner poisoned").len() as u64,
        join_hits: t.join_hits.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_cleans_share_a_symbol() {
        assert_eq!(intern("/etc//passwd"), intern("/etc/./passwd"));
        assert_eq!(intern("/etc/passwd").as_str(), "/etc/passwd");
    }

    #[test]
    fn dotdot_is_preserved_not_resolved() {
        // PR 5's rule: clean() collapses `//` and `.` but leaves `..`
        // for the physical walk.
        assert_eq!(intern("/var/run/../x").as_str(), "/var/run/../x");
        assert_ne!(intern("/var/run/../x"), intern("/var/x"));
    }

    #[test]
    fn join_extends_and_caches() {
        let etc = intern("/etc");
        assert_eq!(etc.join("passwd"), intern("/etc/passwd"));
        let before = stats().join_hits;
        assert_eq!(etc.join("passwd"), intern("/etc/passwd"));
        assert!(stats().join_hits > before);
        assert_eq!(PathSym::root().join("etc"), etc);
    }

    #[test]
    fn ordering_is_by_content() {
        assert!(intern("/a") < intern("/b"));
        assert!(intern("/a/b") < intern("/b"));
    }

    #[test]
    fn serde_round_trips_as_plain_string() {
        use serde::{Deserialize, Serialize};
        let sym = intern("/etc/shadow");
        let v = sym.ser();
        assert_eq!(v, serde::Value::Str("/etc/shadow".into()));
        assert_eq!(PathSym::de(&v).unwrap(), sym);
    }
}
