//! Criterion performance benches: engine overhead and substrate hot paths.
//!
//! Absolute numbers are machine-local; the benches exist so regressions in
//! the injection engine or the VFS resolver are visible.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use epa_apps::{worlds, Lpr, Turnin};
use epa_core::campaign::{run_once, Campaign, CampaignOptions};
use epa_sandbox::cred::{Credentials, Gid, Uid};
use epa_sandbox::mode::Mode;

fn bench_campaigns(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(20);
    let lpr_setup = worlds::lpr_world();
    g.bench_function("lpr_full_campaign", |b| {
        b.iter(|| Campaign::new(&Lpr, &lpr_setup).execute())
    });
    let turnin_setup = worlds::turnin_world();
    g.bench_function("turnin_full_campaign", |b| {
        b.iter(|| Campaign::new(&Turnin, &turnin_setup).execute())
    });
    g.bench_function("turnin_full_campaign_parallel", |b| {
        b.iter(|| {
            Campaign::new(&Turnin, &turnin_setup)
                .with_options(CampaignOptions {
                    parallel: true,
                    ..Default::default()
                })
                .execute()
        })
    });
    g.finish();
}

fn bench_single_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("run");
    let setup = worlds::turnin_world();
    g.bench_function("turnin_clean_run", |b| b.iter(|| run_once(&setup, &Turnin, None)));
    g.bench_function("world_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.clone(), BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_vfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfs");
    let mut fs = epa_sandbox::fs::Vfs::new();
    for d in 0..50 {
        for f in 0..10 {
            fs.put_file(
                &format!("/srv/data/dir{d}/file{f}"),
                "content",
                Uid::ROOT,
                Gid::ROOT,
                Mode::new(0o644),
            )
            .unwrap();
        }
    }
    fs.god_symlink("/srv/link", "/srv/data/dir25").unwrap();
    let cred = Credentials::user(Uid(1001), Gid(100));
    g.bench_function("resolve_deep_path", |b| {
        b.iter(|| fs.walk("/srv/data/dir25/file5", true, Some(&cred)).unwrap())
    });
    g.bench_function("resolve_through_symlink", |b| {
        b.iter(|| fs.walk("/srv/link/file5", true, Some(&cred)).unwrap())
    });
    g.bench_function("stat", |b| b.iter(|| fs.stat("/srv/data/dir10/file1", None).unwrap()));
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("vulndb");
    let db = epa_vulndb::entries();
    g.bench_function("classify_195_entries", |b| b.iter(|| epa_vulndb::compute(&db)));
    g.finish();
}

criterion_group!(benches, bench_campaigns, bench_single_run, bench_vfs, bench_classifier);
criterion_main!(benches);
