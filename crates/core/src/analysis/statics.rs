//! The static site model: a [`BehaviorScript`] walked against its
//! [`WorldSpec`] *without executing anything*.
//!
//! Scripts are straight-line programs-as-data, so the walk is exact: every
//! step contributes its site with the same id, operation kinds, and hit
//! count the dynamic trace would record (`tests/props_analysis.rs` pins
//! that the dynamically traced site set is always a subset of the static
//! one). On top of the reachable set the walker derives the per-site facts
//! the paper's step-1 static analysis provides — path aliasing through the
//! world's symlink chains, privilege context at the access, taint from
//! untrusted inputs, and re-read/TOCTTOU windows.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use epa_sandbox::cred::Uid;
use epa_sandbox::path;
use epa_sandbox::trace::{OpKind, SiteId};

use crate::corpus::{BehaviorScript, BehaviorStep};
use crate::engine::spec::WorldSpec;

/// One statically derived EAI site with its facts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticSite {
    /// The site id the dynamic trace would record (`gen{i}:{tag}`).
    pub site: SiteId,
    /// Operation kinds the site issues, in program order.
    pub ops: Vec<OpKind>,
    /// Static bound on how many trace events the site can record (its
    /// occurrence budget can never usefully exceed this).
    pub hits: usize,
    /// File paths the site names, as written in the script.
    pub paths: Vec<String>,
    /// The same paths with the world's symlink chains resolved away
    /// (physical forms in the declared world).
    pub resolved: Vec<String>,
    /// Whether any named path reaches its object through a symlink — the
    /// aliasing fact TOCTTOU reasoning needs.
    pub aliased: bool,
    /// Whether the access runs with elevated privilege (SUID-root program
    /// or root invoker) — the context in which a perturbed interaction is
    /// exploitable rather than merely wrong.
    pub privileged: bool,
    /// Whether the site receives input from an untrusted source.
    pub tainted: bool,
    /// Whether the site re-reads its object or checks-then-uses it — the
    /// re-read window indirect occurrence faults and TOCTTOU swaps target.
    pub reread_window: bool,
    /// Whether the site mutates the environment (write/create/delete).
    pub writes: bool,
}

/// The full static model of one scenario.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticModel {
    /// Every statically reachable site, in program order.
    pub sites: Vec<StaticSite>,
}

impl StaticModel {
    /// The statically reachable site set.
    pub fn reachable(&self) -> BTreeSet<SiteId> {
        self.sites.iter().map(|s| s.site.clone()).collect()
    }

    /// Resolved paths any site touches (read or write).
    pub fn touched_paths(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.sites {
            out.extend(s.paths.iter().cloned());
            out.extend(s.resolved.iter().cloned());
        }
        out
    }

    /// Resolved paths some site creates or writes.
    pub fn created_paths(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for s in &self.sites {
            if s.writes {
                out.extend(s.paths.iter().cloned());
                out.extend(s.resolved.iter().cloned());
            }
        }
        out
    }

    /// Static per-site hit bounds.
    pub fn hit_bounds(&self) -> BTreeMap<SiteId, usize> {
        self.sites.iter().map(|s| (s.site.clone(), s.hits)).collect()
    }
}

/// Resolves `p` through the spec's declared symlink chains, lexically:
/// whenever a prefix of the path names a declared link, the prefix is
/// replaced by the link's target (relative targets join against the link's
/// parent). Returns the physical form and whether any link was traversed.
/// Chains are followed at most 16 hops — past that the world is cyclic and
/// the name is returned as-is (the linter flags the cycle separately).
pub fn resolve_alias(spec: &WorldSpec, p: &str) -> (String, bool) {
    let links: BTreeMap<String, String> = spec
        .symlinks
        .iter()
        .map(|s| (path::normalize(&s.link), s.target.clone()))
        .collect();
    let mut current = path::normalize(p);
    let mut aliased = false;
    for _ in 0..16 {
        let mut replaced = false;
        let comps: Vec<String> = path::components(&current).map(str::to_string).collect();
        let mut prefix = String::new();
        for (i, c) in comps.iter().enumerate() {
            prefix.push('/');
            prefix.push_str(c);
            if let Some(target) = links.get(&prefix) {
                let parent = path::parent(&prefix).unwrap_or_else(|| "/".to_string());
                let resolved_target = if path::is_absolute(target) {
                    path::normalize(target)
                } else {
                    path::normalize(&path::join(&parent, target))
                };
                let rest = comps[i + 1..].join("/");
                current = if rest.is_empty() {
                    resolved_target
                } else {
                    path::normalize(&path::join(&resolved_target, &rest))
                };
                aliased = true;
                replaced = true;
                break;
            }
        }
        if !replaced {
            return (current, aliased);
        }
    }
    (current, aliased)
}

/// Whether the declared world contains `p` (as a file, directory, link, or
/// an ancestor implicitly created for one).
pub(crate) fn declared_exists(spec: &WorldSpec, p: &str) -> bool {
    let target = path::clean(p);
    if target == "/" {
        return true;
    }
    let mut declared: BTreeSet<String> = BTreeSet::new();
    let mut add_with_ancestors = |raw: &str| {
        let mut cur = path::clean(raw);
        loop {
            declared.insert(cur.clone());
            match path::parent(&cur) {
                Some(parent) if parent != cur && parent != "/" => cur = parent,
                _ => break,
            }
        }
    };
    for d in &spec.dirs {
        add_with_ancestors(&d.path);
    }
    for f in &spec.files {
        add_with_ancestors(&f.path);
    }
    for s in &spec.symlinks {
        add_with_ancestors(&s.link);
    }
    for u in &spec.users {
        add_with_ancestors(&u.home);
    }
    declared.contains(&target)
}

/// Whether the scenario's process runs with elevated privilege: a
/// SUID-root program file, or a root invoker.
fn privileged(spec: &WorldSpec) -> bool {
    if spec.effective_invoker() == Uid::ROOT {
        return true;
    }
    if let Some(program) = &spec.program {
        return spec
            .files
            .iter()
            .any(|f| f.path == *program && f.owner == Uid::ROOT && f.mode & 0o4000 != 0);
    }
    false
}

/// Walks the script against the world, producing the static model.
///
/// The op mapping mirrors `Syscall::op()` exactly (a plain write traces as
/// [`OpKind::CreateFile`], an append as [`OpKind::WriteFile`], an unlink as
/// [`OpKind::Delete`]) so static sites and dynamic trace events agree.
pub fn static_model(spec: &WorldSpec, script: &BehaviorScript) -> StaticModel {
    let priv_ctx = privileged(spec);
    let mut sites = Vec::new();
    for (i, step) in script.steps.iter().enumerate() {
        let tag = step_tag(step);
        let site = SiteId::new(format!("gen{i}:{tag}"));
        let (ops, hits, paths, tainted, reread, writes) = step_facts(step);
        let mut resolved = Vec::new();
        let mut aliased = false;
        for p in &paths {
            let (r, a) = resolve_alias(spec, p);
            aliased |= a;
            resolved.push(r);
        }
        sites.push(StaticSite {
            site,
            ops,
            hits,
            paths,
            resolved,
            aliased,
            privileged: priv_ctx,
            tainted,
            reread_window: reread,
            writes,
        });
    }
    StaticModel { sites }
}

/// The site tag of a step — must match `BehaviorStep::tag` (pinned by the
/// subset property in `tests/props_analysis.rs`).
fn step_tag(step: &BehaviorStep) -> &'static str {
    match step {
        BehaviorStep::ReadArg { .. } => "arg",
        BehaviorStep::ReadEnv { .. } => "env",
        BehaviorStep::ReadFile { .. } => "read",
        BehaviorStep::StatThenWrite { .. } => "checkuse",
        BehaviorStep::WriteFile { .. } => "write",
        BehaviorStep::CreateExclusive { .. } => "excl",
        BehaviorStep::Append { .. } => "append",
        BehaviorStep::Unlink { .. } => "unlink",
        BehaviorStep::Stat { .. } => "stat",
        BehaviorStep::ReadLink { .. } => "readlink",
        BehaviorStep::ListDir { .. } => "list",
        BehaviorStep::Exec { .. } => "exec",
        BehaviorStep::RegRead { .. } => "regread",
        BehaviorStep::RegWrite { .. } => "regwrite",
        BehaviorStep::DnsLookup { .. } => "dns",
        BehaviorStep::NetExchange { .. } => "net",
        BehaviorStep::NetReceive { .. } => "recv",
        BehaviorStep::IpcReceive { .. } => "ipc",
        BehaviorStep::Print { .. } => "print",
    }
}

type StepFacts = (Vec<OpKind>, usize, Vec<String>, bool, bool, bool);

/// `(ops, static hit bound, named paths, tainted, reread window, writes)`.
fn step_facts(step: &BehaviorStep) -> StepFacts {
    match step {
        BehaviorStep::ReadArg { .. } => (vec![OpKind::ReadArg], 1, vec![], true, false, false),
        BehaviorStep::ReadEnv { .. } => (vec![OpKind::Getenv], 1, vec![], true, false, false),
        BehaviorStep::ReadFile { path, times } => {
            let n = (*times).max(1);
            (vec![OpKind::ReadFile], n, vec![path.clone()], true, n > 1, false)
        }
        BehaviorStep::StatThenWrite { path, .. } => (
            vec![OpKind::Stat, OpKind::CreateFile],
            2,
            vec![path.clone()],
            false,
            true,
            true,
        ),
        BehaviorStep::WriteFile { path, .. } => (vec![OpKind::CreateFile], 1, vec![path.clone()], false, false, true),
        BehaviorStep::CreateExclusive { path, .. } => {
            (vec![OpKind::CreateExcl], 1, vec![path.clone()], false, false, true)
        }
        BehaviorStep::Append { path, .. } => (vec![OpKind::WriteFile], 1, vec![path.clone()], false, false, true),
        BehaviorStep::Unlink { path } => (vec![OpKind::Delete], 1, vec![path.clone()], false, false, true),
        BehaviorStep::Stat { path } => (vec![OpKind::Stat], 1, vec![path.clone()], false, false, false),
        BehaviorStep::ReadLink { path } => (vec![OpKind::Readlink], 1, vec![path.clone()], true, false, false),
        BehaviorStep::ListDir { path } => (vec![OpKind::ListDir], 1, vec![path.clone()], true, false, false),
        BehaviorStep::Exec { path } => (vec![OpKind::Exec], 1, vec![path.clone()], false, false, false),
        BehaviorStep::RegRead { .. } => (vec![OpKind::RegRead], 1, vec![], true, false, false),
        BehaviorStep::RegWrite { .. } => (vec![OpKind::RegWrite], 1, vec![], false, false, true),
        BehaviorStep::DnsLookup { .. } => (vec![OpKind::DnsResolve], 1, vec![], true, false, false),
        BehaviorStep::NetExchange { .. } => (
            vec![OpKind::NetConnect, OpKind::NetSend],
            2,
            vec![],
            false,
            false,
            false,
        ),
        BehaviorStep::NetReceive { .. } => (vec![OpKind::NetRecv], 1, vec![], true, false, false),
        BehaviorStep::IpcReceive { .. } => (vec![OpKind::ProcRecv], 1, vec![], true, false, false),
        BehaviorStep::Print { .. } => (vec![OpKind::Print], 1, vec![], false, false, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::spec::SymlinkSpec;

    fn spec_with_link(link: &str, target: &str) -> WorldSpec {
        let mut spec = WorldSpec::default();
        spec.symlinks.push(SymlinkSpec {
            link: link.to_string(),
            target: target.to_string(),
        });
        spec
    }

    #[test]
    fn alias_resolution_follows_chains() {
        let spec = spec_with_link("/var/log", "/data/log");
        let (r, aliased) = resolve_alias(&spec, "/var/log/app.log");
        assert_eq!(r, "/data/log/app.log");
        assert!(aliased);
        let (r, aliased) = resolve_alias(&spec, "/etc/passwd");
        assert_eq!(r, "/etc/passwd");
        assert!(!aliased);
    }

    #[test]
    fn relative_targets_resolve_against_the_link_parent() {
        let spec = spec_with_link("/usr/tmp", "../var/tmp");
        let (r, aliased) = resolve_alias(&spec, "/usr/tmp/x");
        assert_eq!(r, "/var/tmp/x");
        assert!(aliased);
    }

    #[test]
    fn cyclic_links_terminate() {
        let mut spec = spec_with_link("/a", "/b");
        spec.symlinks.push(SymlinkSpec {
            link: "/b".to_string(),
            target: "/a".to_string(),
        });
        let (_, aliased) = resolve_alias(&spec, "/a/x");
        assert!(aliased);
    }

    #[test]
    fn model_matches_step_structure() {
        let script = BehaviorScript::new(vec![
            BehaviorStep::ReadFile {
                path: "/etc/conf".into(),
                times: 3,
            },
            BehaviorStep::StatThenWrite {
                path: "/var/out".into(),
                content: "x".into(),
                mode: 0o644,
            },
            BehaviorStep::Print { text: "done".into() },
        ]);
        let model = static_model(&WorldSpec::default(), &script);
        assert_eq!(model.sites.len(), 3);
        assert_eq!(model.sites[0].site, SiteId::new("gen0:read"));
        assert_eq!(model.sites[0].hits, 3);
        assert!(model.sites[0].reread_window);
        assert!(model.sites[0].tainted);
        assert_eq!(model.sites[1].ops, vec![OpKind::Stat, OpKind::CreateFile]);
        assert!(model.sites[1].writes);
        assert!(model.created_paths().contains("/var/out"));
        assert!(model.touched_paths().contains("/etc/conf"));
        assert_eq!(model.hit_bounds()[&SiteId::new("gen1:checkuse")], 2);
    }

    #[test]
    fn declared_world_membership_includes_ancestors() {
        let mut spec = WorldSpec::default();
        spec.files.push(crate::engine::spec::FileSpec {
            path: "/etc/app/conf".into(),
            content: String::new(),
            owner: Uid::ROOT,
            group: epa_sandbox::cred::Gid::ROOT,
            mode: 0o644,
        });
        assert!(declared_exists(&spec, "/etc/app/conf"));
        assert!(declared_exists(&spec, "/etc/app"));
        assert!(declared_exists(&spec, "/etc"));
        assert!(!declared_exists(&spec, "/var"));
    }
}
