//! Lexical path manipulation for the virtual file system.
//!
//! Paths in the sandbox are plain `/`-separated strings. This module offers
//! the *lexical* helpers (join, normalize, split); the *physical* semantics
//! of `..` and symbolic links live in the resolver inside [`crate::fs`],
//! because `..` under a symlinked directory must follow the real parent —
//! the exact subtlety that several file-system perturbations exploit.

/// True when the path starts at the root.
pub fn is_absolute(path: &str) -> bool {
    path.starts_with('/')
}

/// Joins `base` and `rel`. If `rel` is absolute it replaces `base`.
///
/// # Examples
///
/// ```
/// use epa_sandbox::path::join;
/// assert_eq!(join("/home/ta", "submit"), "/home/ta/submit");
/// assert_eq!(join("/home/ta", "/etc/passwd"), "/etc/passwd");
/// ```
pub fn join(base: &str, rel: &str) -> String {
    if is_absolute(rel) || base.is_empty() {
        return rel.to_string();
    }
    if rel.is_empty() {
        return base.to_string();
    }
    let mut out = base.trim_end_matches('/').to_string();
    if out.is_empty() {
        out.push('/');
    }
    if !out.ends_with('/') {
        out.push('/');
    }
    out.push_str(rel.trim_start_matches('/'));
    out
}

/// Splits a path into its non-empty components (`.` components are kept;
/// the resolver interprets them).
pub fn components(path: &str) -> impl Iterator<Item = &str> {
    path.split('/').filter(|c| !c.is_empty())
}

/// Lexically normalizes a path: collapses `//` and `.`, resolves `..`
/// against the textual parent, clamps `..` at the root.
///
/// Note: this is the *lexical* view only. The VFS resolver performs
/// physical resolution; `normalize` is used for display and for comparing
/// configured target paths.
pub fn normalize(path: &str) -> String {
    let absolute = is_absolute(path);
    let mut stack: Vec<&str> = Vec::new();
    for c in components(path) {
        match c {
            "." => {}
            ".." => {
                if let Some(last) = stack.last() {
                    if *last != ".." {
                        stack.pop();
                        continue;
                    }
                }
                if !absolute {
                    stack.push("..");
                }
                // At the root, `..` is clamped (POSIX: /.. == /).
            }
            other => stack.push(other),
        }
    }
    let body = stack.join("/");
    if absolute {
        format!("/{body}")
    } else if body.is_empty() {
        ".".to_string()
    } else {
        body
    }
}

/// Lexically cleans a path: collapses `//` and `.` components, leaving
/// `..` **untouched**.
///
/// Unlike [`normalize`], this never rewrites which object a path names:
/// the VFS resolves `..` *physically* (following the real parent chain,
/// even across symlinked directories), so `/var/run/../x` and `/var/x`
/// can be different inodes when `/var/run` is a symlink — textual `..`
/// resolution would conflate them. Use `clean` wherever a canonical
/// spelling is wanted without changing resolution semantics (fault
/// targets, content-addressed keys).
pub fn clean(path: &str) -> String {
    let absolute = is_absolute(path);
    let kept: Vec<&str> = components(path).filter(|c| *c != ".").collect();
    let body = kept.join("/");
    if absolute {
        format!("/{body}")
    } else if body.is_empty() {
        ".".to_string()
    } else {
        body
    }
}

/// The final component of a path, if any.
pub fn file_name(path: &str) -> Option<&str> {
    components(path).last()
}

/// The textual parent directory: `/a/b/c` → `/a/b`; `/a` → `/`.
pub fn parent(path: &str) -> Option<String> {
    let norm = normalize(path);
    if norm == "/" {
        return None;
    }
    match norm.rfind('/') {
        Some(0) => Some("/".to_string()),
        Some(idx) => Some(norm[..idx].to_string()),
        None => Some(".".to_string()),
    }
}

/// True when `path` lexically starts with `prefix` on a component boundary.
pub fn starts_with(path: &str, prefix: &str) -> bool {
    let p = normalize(path);
    let pre = normalize(prefix);
    if pre == "/" {
        return p.starts_with('/');
    }
    p == pre || p.starts_with(&format!("{pre}/"))
}

/// True when the path contains a `..` component — the classic traversal
/// pattern the paper's `turnin` exploit used (`../.login`).
pub fn contains_dotdot(path: &str) -> bool {
    components(path).any(|c| c == "..")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_handles_slashes() {
        assert_eq!(join("/", "etc"), "/etc");
        assert_eq!(join("/etc/", "passwd"), "/etc/passwd");
        assert_eq!(join("/etc", ""), "/etc");
        assert_eq!(join("", "x"), "x");
    }

    #[test]
    fn clean_collapses_but_preserves_dotdot() {
        assert_eq!(clean("/a//b/./c"), "/a/b/c");
        assert_eq!(
            clean("/var/run/../x"),
            "/var/run/../x",
            "`..` resolution is physical, not lexical"
        );
        assert_eq!(clean("./a/./b"), "a/b");
        assert_eq!(clean("/"), "/");
        assert_eq!(clean("."), ".");
    }

    #[test]
    fn normalize_collapses() {
        assert_eq!(normalize("/a//b/./c"), "/a/b/c");
        assert_eq!(normalize("/a/b/../c"), "/a/c");
        assert_eq!(normalize("/../.."), "/");
        assert_eq!(normalize("a/../../b"), "../b");
        assert_eq!(normalize("./"), ".");
        assert_eq!(normalize("/"), "/");
    }

    #[test]
    fn parent_and_file_name() {
        assert_eq!(parent("/a/b/c").as_deref(), Some("/a/b"));
        assert_eq!(parent("/a").as_deref(), Some("/"));
        assert_eq!(parent("/"), None);
        assert_eq!(file_name("/a/b/c"), Some("c"));
        assert_eq!(file_name("/"), None);
        assert_eq!(parent("rel/x").as_deref(), Some("rel"));
    }

    #[test]
    fn starts_with_component_boundaries() {
        assert!(starts_with("/etc/passwd", "/etc"));
        assert!(!starts_with("/etcetera", "/etc"));
        assert!(starts_with("/etc", "/etc"));
        assert!(starts_with("/anything", "/"));
    }

    #[test]
    fn dotdot_detection() {
        assert!(contains_dotdot("../.login"));
        assert!(contains_dotdot("a/../b"));
        assert!(!contains_dotdot("a/b..c/..d"));
    }
}
