//! Integration: the fault catalog reproduces Tables 5 and 6 and generates
//! well-formed fault lists.

use std::collections::BTreeMap;

use epa::core::catalog::{direct_faults_for, indirect_faults_for, DirectContext};
use epa::core::{table5_rows, table6_rows};
use epa::sandbox::os::ScenarioMeta;
use epa::sandbox::trace::{InputSemantic, ObjectRef, OpKind};

#[test]
fn table5_covers_the_five_origins() {
    let rows = table5_rows();
    assert_eq!(rows.len(), 12, "paper Table 5 row count");
    for entity in [
        "User Input",
        "Environment Variable",
        "File System Input",
        "Network Input",
        "Process Input",
    ] {
        assert!(rows.iter().any(|r| r.entity == entity), "{entity} present");
    }
    // Spot-check the famous rows.
    let path_row = rows
        .iter()
        .find(|r| r.item.contains("execution path"))
        .expect("PATH row");
    assert!(path_row.injections.iter().any(|i| i.contains("untrusted path")));
    let mask_row = rows.iter().find(|r| r.item == "permission mask").expect("mask row");
    assert!(mask_row.injections[0].contains("mask to 0"));
}

#[test]
fn table6_covers_the_three_entities_plus_extension() {
    let rows = table6_rows();
    assert_eq!(
        rows.iter().filter(|r| r.entity == "File System").count(),
        7,
        "seven fs attribute rows"
    );
    assert_eq!(rows.iter().filter(|r| r.entity == "Network").count(), 5);
    assert_eq!(rows.iter().filter(|r| r.entity == "Process").count(), 3);
    assert_eq!(
        rows.iter().filter(|r| r.entity.starts_with("Registry")).count(),
        2,
        "documented NT extension"
    );
}

#[test]
fn every_indirect_semantic_yields_faults_with_unique_ids() {
    let s = ScenarioMeta::default();
    let semantics = [
        (InputSemantic::UserFileName, 5),
        (InputSemantic::UserCommand, 5),
        (InputSemantic::EnvValue, 4),
        (InputSemantic::EnvPathList, 5),
        (InputSemantic::EnvPermMask, 1),
        (InputSemantic::FsFileName, 4),
        (InputSemantic::FsFileExtension, 2),
        (InputSemantic::NetIpAddr, 2),
        (InputSemantic::NetPacket, 2),
        (InputSemantic::NetHostName, 2),
        (InputSemantic::NetDnsReply, 2),
        (InputSemantic::ProcMessage, 2),
    ];
    for (sem, expected) in semantics {
        let faults = indirect_faults_for(sem, &s);
        assert_eq!(faults.len(), expected, "{sem:?}");
        let ids: std::collections::BTreeSet<_> = faults.iter().map(|f| &f.id).collect();
        assert_eq!(ids.len(), faults.len(), "{sem:?}: ids unique");
        assert!(
            faults.iter().all(|f| f.semantic == Some(sem)),
            "{sem:?}: semantic recorded"
        );
        assert!(faults.iter().all(|f| !f.is_direct()));
    }
}

#[test]
fn direct_fault_applicability_rules() {
    let s = ScenarioMeta::default();
    let resolutions = BTreeMap::new();
    let ctx = DirectContext {
        scenario: &s,
        reaccessed: &[],
        exec_resolutions: &resolutions,
        cwd: "/",
    };
    // The lpr §3.4 rule: creates get exactly the four attributes.
    let create = direct_faults_for(OpKind::CreateFile, &ObjectRef::File("/spool/x".into()), &ctx);
    assert_eq!(create.len(), 4);
    // Reads add content-invariance.
    let read = direct_faults_for(OpKind::ReadFile, &ObjectRef::File("/etc/app.cf".into()), &ctx);
    assert_eq!(read.len(), 5);
    // Re-accessed objects add name-invariance (TOCTTOU).
    let re = vec!["/etc/app.cf".to_string()];
    let ctx2 = DirectContext {
        scenario: &s,
        reaccessed: &re,
        exec_resolutions: &resolutions,
        cwd: "/",
    };
    let read2 = direct_faults_for(OpKind::ReadFile, &ObjectRef::File("/etc/app.cf".into()), &ctx2);
    assert_eq!(read2.len(), 6);
    // Receives get the authenticity/protocol/socket faults.
    let recv = direct_faults_for(OpKind::NetRecv, &ObjectRef::NetPort(79), &ctx);
    assert_eq!(recv.len(), 5);
    // Registry reads get ACL + four value swaps.
    let reg = direct_faults_for(OpKind::RegRead, &ObjectRef::RegValue("K".into(), "v".into()), &ctx);
    assert_eq!(reg.len(), 5);
    // Output-only operations get nothing.
    assert!(direct_faults_for(OpKind::Print, &ObjectRef::Terminal, &ctx).is_empty());
}

#[test]
fn direct_faults_name_the_scenario_targets() {
    let s = ScenarioMeta::default();
    let resolutions = BTreeMap::new();
    let ctx = DirectContext {
        scenario: &s,
        reaccessed: &[],
        exec_resolutions: &resolutions,
        cwd: "/",
    };
    let read = direct_faults_for(OpKind::ReadFile, &ObjectRef::File("/etc/app.cf".into()), &ctx);
    let symlink = read
        .iter()
        .find(|f| f.id.starts_with("direct:fs:symlink"))
        .expect("symlink fault");
    assert!(
        symlink.description.contains(&s.secret_target),
        "read symlinks aim at the secret target"
    );
    let create = direct_faults_for(OpKind::CreateFile, &ObjectRef::File("/spool/x".into()), &ctx);
    let symlink_w = create
        .iter()
        .find(|f| f.id.starts_with("direct:fs:symlink"))
        .expect("symlink fault");
    assert!(
        symlink_w.description.contains(&s.integrity_target),
        "create symlinks aim at the integrity target"
    );
}
