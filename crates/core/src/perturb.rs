//! Concrete perturbations: executable environment faults.
//!
//! A [`ConcreteFault`] is one injectable fault instance — a catalog pattern
//! (paper Tables 5/6) made concrete against a specific interaction point
//! and the scenario's attack targets. Direct faults mutate the [`Os`] world
//! *before* the interaction executes; indirect faults mutate the value the
//! application *received* (paper §3.3 step 6).

use std::fmt;

use serde::{Deserialize, Serialize};

use epa_sandbox::cred::Uid;
use epa_sandbox::data::Data;
use epa_sandbox::error::SysResult;
use epa_sandbox::fs::FileTag;
use epa_sandbox::mode::Mode;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::syscall::SysReturn;

use crate::model::EaiCategory;

/// A direct environment fault: a mutation of the environment state applied
/// before the targeted interaction point (Table 6 instantiations).
///
/// `#[non_exhaustive]`: new perturbation kinds are added as the catalog
/// grows; downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DirectFault {
    /// Make the file exist, owned by the attacker (existence fault for
    /// create-style interactions).
    FileMakeExist {
        /// Target path.
        path: String,
    },
    /// Remove the file (existence fault for read-style interactions).
    FileMakeMissing {
        /// Target path.
        path: String,
    },
    /// Ensure the file exists and is owned by the attacker.
    FileChownAttacker {
        /// Target path.
        path: String,
    },
    /// Ensure the file exists owned by root (ownership fault: "change
    /// ownership to ... root").
    FileChownRoot {
        /// Target path.
        path: String,
    },
    /// Ensure the file exists with permissions stripped (readable by no one
    /// but root).
    FilePermRestrict {
        /// Target path.
        path: String,
    },
    /// Ensure the file exists world-writable.
    FilePermOpen {
        /// Target path.
        path: String,
    },
    /// Strip the execute bits (permission fault for exec interactions).
    FilePermNoExec {
        /// Target path.
        path: String,
    },
    /// Replace the path with a symbolic link to `target`.
    SymlinkSwap {
        /// Path to replace.
        path: String,
        /// Where the link points.
        target: String,
    },
    /// Overwrite the file's content (content-invariance fault).
    ModifyContent {
        /// Target path.
        path: String,
        /// New content.
        content: String,
    },
    /// Rename the object away (name-invariance / TOCTTOU fault).
    RenameAway {
        /// Target path.
        path: String,
    },
    /// Start the interaction from a different working directory.
    WorkingDirectory {
        /// The directory the process is moved to.
        dir: String,
    },
    /// Make a registry key world-writable (ACL-protection fault).
    RegistryOpenAcl {
        /// Key path.
        key: String,
    },
    /// Overwrite a registry value, pointing the module at `new_value`
    /// (value-invariance fault — what an attacker does to an unprotected key).
    RegistrySetValue {
        /// Key path.
        key: String,
        /// Value name.
        value: String,
        /// The planted value.
        new_value: String,
    },
    /// The next message on `port` actually comes from the attacker.
    NetSpoofNext {
        /// Local port.
        port: u16,
        /// Actual origin planted.
        actual: String,
    },
    /// Omit the `idx`-th protocol step queued on `port`.
    NetOmitStep {
        /// Local port.
        port: u16,
        /// Step index.
        idx: usize,
    },
    /// Duplicate the `idx`-th protocol step (an extra step).
    NetDuplicateStep {
        /// Local port.
        port: u16,
        /// Step index.
        idx: usize,
    },
    /// Swap protocol steps `a` and `b` (reordering).
    NetSwapSteps {
        /// Local port.
        port: u16,
        /// First step.
        a: usize,
        /// Second step.
        b: usize,
    },
    /// Share the socket on `port` with another process.
    NetShareSocket {
        /// Local port.
        port: u16,
        /// Who shares it.
        with: String,
    },
    /// Deny the remote service.
    NetDenyService {
        /// Remote host.
        host: String,
        /// Remote port.
        port: u16,
    },
    /// Mark the remote entity untrusted.
    NetDistrustEntity {
        /// Remote host.
        host: String,
        /// Remote port.
        port: u16,
    },
    /// Take the resolver down (service-availability fault on DNS).
    DnsDeny,
    /// The next IPC message actually comes from the attacker.
    IpcSpoofNext {
        /// Channel name.
        channel: String,
        /// Actual origin planted.
        actual: String,
    },
    /// Mark the IPC peer untrusted.
    IpcDistrust {
        /// Channel name.
        channel: String,
    },
    /// Deny the IPC peer service.
    IpcDeny {
        /// Channel name.
        channel: String,
    },
}

impl DirectFault {
    /// Applies the fault to the world. `pid` is the process whose
    /// interaction is being perturbed (needed for working-directory faults).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from god-mode mutations (e.g. a target
    /// path with no parent); callers treat these as "fault not applicable".
    pub fn apply(&self, os: &mut Os, pid: Pid) -> SysResult<()> {
        let attacker = os.scenario.attacker;
        let attacker_gid = os.scenario.attacker_gid;
        match self {
            DirectFault::FileMakeExist { path } => {
                os.fs
                    .put_file(path, "intruder data", attacker, attacker_gid, Mode::new(0o644))?;
            }
            DirectFault::FileMakeMissing { path } => {
                if os.fs.exists(path) {
                    os.fs.god_remove(path)?;
                }
            }
            DirectFault::FileChownAttacker { path } => {
                if !os.fs.exists(path) {
                    os.fs
                        .put_file(path, "intruder data", attacker, attacker_gid, Mode::new(0o644))?;
                } else {
                    os.fs.god_chown(path, attacker, attacker_gid)?;
                }
            }
            DirectFault::FileChownRoot { path } => {
                if !os.fs.exists(path) {
                    os.fs.put_file(
                        path,
                        "planted",
                        Uid::ROOT,
                        epa_sandbox::cred::Gid::ROOT,
                        Mode::new(0o644),
                    )?;
                } else {
                    os.fs.god_chown(path, Uid::ROOT, epa_sandbox::cred::Gid::ROOT)?;
                }
            }
            DirectFault::FilePermRestrict { path } => {
                if !os.fs.exists(path) {
                    os.fs.put_file(
                        path,
                        "restricted",
                        Uid::ROOT,
                        epa_sandbox::cred::Gid::ROOT,
                        Mode::new(0o600),
                    )?;
                } else {
                    os.fs.god_chown(path, Uid::ROOT, epa_sandbox::cred::Gid::ROOT)?;
                    os.fs.god_chmod(path, Mode::new(0o600))?;
                }
            }
            DirectFault::FilePermOpen { path } => {
                if !os.fs.exists(path) {
                    os.fs.put_file(path, "open", attacker, attacker_gid, Mode::new(0o666))?;
                } else {
                    let st = os.fs.lstat(path, None)?;
                    os.fs.god_chmod(path, st.mode.with_world_write())?;
                }
            }
            DirectFault::FilePermNoExec { path } => {
                if os.fs.exists(path) {
                    let st = os.fs.lstat(path, None)?;
                    os.fs.god_chmod(path, st.mode.without_exec())?;
                }
            }
            DirectFault::SymlinkSwap { path, target } => {
                // Ensure a read through the link can find *something* hostile
                // when the target lives in attacker territory.
                if !os.fs.exists(target) && target.starts_with(&os.scenario.attacker_home) {
                    os.fs
                        .put_file(target, "#!payload", attacker, attacker_gid, Mode::new(0o755))?;
                }
                os.fs.god_symlink(path, target)?;
            }
            DirectFault::ModifyContent { path, content } => {
                if os.fs.exists(path) {
                    os.fs.god_write(path, content.as_str())?;
                } else {
                    os.fs
                        .put_file(path, content.as_str(), attacker, attacker_gid, Mode::new(0o644))?;
                }
            }
            DirectFault::RenameAway { path } => {
                if os.fs.exists(path) {
                    let data = os.fs.god_read(path).unwrap_or_default();
                    let st = os.fs.lstat(path, None)?;
                    os.fs.god_remove(path)?;
                    let moved = format!("{path}.moved");
                    os.fs.put_file(&moved, data, st.owner, st.group, st.mode)?;
                }
            }
            DirectFault::WorkingDirectory { dir } => {
                os.fs.mkdir_p(dir, attacker, attacker_gid, Mode::new(0o755))?;
                let w = os.fs.walk(dir, true, None)?;
                if let Ok(p) = os.procs.get_mut(pid) {
                    p.cwd = w.physical.to_string();
                    p.cwd_inode = w.id;
                }
            }
            DirectFault::RegistryOpenAcl { key } => {
                os.registry.god_set_acl(
                    key,
                    epa_sandbox::registry::RegAcl {
                        owner: Uid::ROOT,
                        world_writable: true,
                    },
                )?;
            }
            DirectFault::RegistrySetValue { key, value, new_value } => {
                // When the planted value points into attacker territory,
                // make sure something executable is waiting there.
                if new_value.starts_with(&os.scenario.attacker_home) && !os.fs.exists(new_value) {
                    os.fs
                        .put_file(new_value, "#!payload", attacker, attacker_gid, Mode::new(0o755))?;
                }
                os.registry.god_set_value(key, value, new_value.clone());
            }
            DirectFault::NetSpoofNext { port, actual } => os.net.spoof_next(*port, actual.clone()),
            DirectFault::NetOmitStep { port, idx } => os.net.omit_step(*port, *idx),
            DirectFault::NetDuplicateStep { port, idx } => os.net.duplicate_step(*port, *idx),
            DirectFault::NetSwapSteps { port, a, b } => os.net.swap_steps(*port, *a, *b),
            DirectFault::NetShareSocket { port, with } => os.net.share_socket(*port, with.clone()),
            DirectFault::NetDenyService { host, port } => os.net.deny_service(host, *port),
            DirectFault::NetDistrustEntity { host, port } => os.net.distrust_entity(host, *port),
            DirectFault::DnsDeny => os.net.dns_available = false,
            DirectFault::IpcSpoofNext { channel, actual } => os.net.spoof_next_ipc(channel, actual.clone()),
            DirectFault::IpcDistrust { channel } => os.net.distrust_ipc(channel),
            DirectFault::IpcDeny { channel } => os.net.deny_ipc(channel),
        }
        Ok(())
    }
}

/// An indirect environment fault: a mutation of the input value an internal
/// entity receives (Table 5 instantiations).
///
/// `#[non_exhaustive]`: new mutation kinds are added as the catalog grows;
/// downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum IndirectFault {
    /// Grow the value far past any plausible buffer ("change length").
    Lengthen {
        /// Bytes of filler appended.
        by: usize,
    },
    /// Strip a leading `/` ("use relative path").
    MakeRelative,
    /// Prefix with `/` ("use absolute path").
    MakeAbsolute,
    /// Prefix with `../` components (the traversal special-character fault).
    InsertDotDot {
        /// How many `../` components.
        depth: usize,
    },
    /// Insert a special character at the front of the value.
    InsertSpecial {
        /// The character (`;`, `|`, `&`, `/`, newline, …).
        ch: char,
    },
    /// Reverse the order of a `:`-separated path list.
    PathListReorder,
    /// Prepend an untrusted directory to a path list.
    PathListInsertUntrusted {
        /// The inserted directory.
        dir: String,
    },
    /// Replace the path list with a single incorrect path.
    PathListWrong {
        /// The bogus path.
        dir: String,
    },
    /// Insert the relative `.` entry at the front (the classic
    /// current-directory-in-`PATH` fault).
    PathListRecursive,
    /// Zero a permission mask.
    PermMaskZero,
    /// Replace the file extension.
    ChangeExtension {
        /// The planted extension (e.g. `exe`).
        ext: String,
    },
    /// Grow the file extension past its assumed length.
    LengthenExtension,
    /// Replace the value with structurally invalid text ("bad-formatted").
    Malform,
}

impl IndirectFault {
    /// Applies the fault to a received value, preserving labels.
    pub fn apply_to_data(&self, data: &mut Data) {
        let text = data.text();
        let new_text = match self {
            IndirectFault::Lengthen { by } => {
                let mut t = text;
                t.push_str(&"A".repeat(*by));
                t
            }
            IndirectFault::MakeRelative => text.trim_start_matches('/').to_string(),
            IndirectFault::MakeAbsolute => {
                if text.starts_with('/') {
                    text
                } else {
                    format!("/{text}")
                }
            }
            IndirectFault::InsertDotDot { depth } => {
                format!("{}{}", "../".repeat(*depth), text)
            }
            IndirectFault::InsertSpecial { ch } => format!("{ch}{text}"),
            IndirectFault::PathListReorder => {
                let mut parts: Vec<&str> = text.split(':').collect();
                parts.reverse();
                parts.join(":")
            }
            IndirectFault::PathListInsertUntrusted { dir } => format!("{dir}:{text}"),
            IndirectFault::PathListWrong { dir } => dir.clone(),
            IndirectFault::PathListRecursive => format!(".:{text}"),
            IndirectFault::PermMaskZero => "0".to_string(),
            IndirectFault::ChangeExtension { ext } => match text.rsplit_once('.') {
                Some((stem, _)) => format!("{stem}.{ext}"),
                None => format!("{text}.{ext}"),
            },
            IndirectFault::LengthenExtension => format!("{text}.{}", "x".repeat(300)),
            IndirectFault::Malform => format!("\u{1}\u{2}%%%{}%%%\u{3}", "\u{7f}".repeat(16)),
        };
        data.set_bytes(new_text.into_bytes());
    }

    /// Applies the fault to a syscall result: payloads and deliveries have
    /// their data mutated; other result shapes are untouched.
    pub fn apply_to_return(&self, ret: &mut SysReturn) {
        match ret {
            SysReturn::Payload(d) => self.apply_to_data(d),
            SysReturn::Delivery(m) => self.apply_to_data(&mut m.data),
            _ => {}
        }
    }
}

/// Whether a concrete fault is direct or indirect, with its payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultPayload {
    /// Applied before the interaction: environment mutation.
    Direct(DirectFault),
    /// Applied after the interaction: input mutation.
    Indirect(IndirectFault),
}

/// One injectable fault instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcreteFault {
    /// Stable identifier, unique within a plan (e.g.
    /// `direct:fs:symlink@/var/spool/job`).
    pub id: String,
    /// EAI classification, for category breakdowns.
    pub category: EaiCategory,
    /// For indirect faults: the input semantics the fault targets. The
    /// injection hook strikes the first interaction at the planned site
    /// whose declared semantics match (a site may receive several inputs).
    pub semantic: Option<epa_sandbox::trace::InputSemantic>,
    /// Human-readable description of the perturbation.
    pub description: String,
    /// The executable payload.
    pub payload: FaultPayload,
}

impl ConcreteFault {
    /// True for direct faults.
    pub fn is_direct(&self) -> bool {
        matches!(self.payload, FaultPayload::Direct(_))
    }

    /// True when re-aiming this fault at a later occurrence of its site
    /// changes what the injection does. Direct faults perturb the
    /// environment immediately before the k-th execution of the site
    /// (the TOCTTOU re-access axis), and occurrence-addressed indirect
    /// faults strike the k-th received value; semantics-addressed indirect
    /// faults always strike the first matching input regardless of the
    /// planned occurrence, so replanning them at k > 0 would only duplicate
    /// the k = 0 run.
    pub fn occurrence_sensitive(&self) -> bool {
        self.is_direct() || self.semantic.is_none()
    }
}

impl fmt::Display for ConcreteFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.id, self.category)
    }
}

/// Tags the scenario's standard attack targets onto a freshly built world —
/// convenience used by world builders so every scenario's oracle sees the
/// same meaning for its targets.
pub fn tag_standard_targets(os: &mut Os) {
    let secret = os.scenario.secret_target.clone();
    let integrity = os.scenario.integrity_target.clone();
    let critical = os.scenario.critical_target.clone();
    let protected_dir = os.scenario.protected_dir.clone();
    if os.fs.exists(&secret) {
        let _ = os.fs.tag(&secret, FileTag::Secret);
    }
    if os.fs.exists(&integrity) {
        let _ = os.fs.tag(&integrity, FileTag::Protected);
    }
    if os.fs.exists(&critical) {
        let _ = os.fs.tag(&critical, FileTag::Critical);
    }
    if os.fs.exists(&protected_dir) {
        let _ = os.fs.tag(&protected_dir, FileTag::Protected);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sandbox::cred::Gid;
    use std::collections::BTreeMap;

    fn world() -> (Os, Pid) {
        let mut os = Os::new();
        os.users
            .add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
        os.fs.mkdir_p("/tmp", Uid::ROOT, Gid::ROOT, Mode::new(0o1777)).unwrap();
        os.fs
            .put_file("/etc/passwd", "root:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        let pid = os
            .spawn(os.scenario.invoker, None, vec![], BTreeMap::new(), "/")
            .unwrap();
        (os, pid)
    }

    #[test]
    fn file_existence_faults() {
        let (mut os, pid) = world();
        DirectFault::FileMakeExist {
            path: "/tmp/spool".into(),
        }
        .apply(&mut os, pid)
        .unwrap();
        assert!(os.fs.exists("/tmp/spool"));
        assert_eq!(os.fs.lstat("/tmp/spool", None).unwrap().owner, os.scenario.attacker);
        DirectFault::FileMakeMissing {
            path: "/tmp/spool".into(),
        }
        .apply(&mut os, pid)
        .unwrap();
        assert!(!os.fs.exists("/tmp/spool"));
    }

    #[test]
    fn symlink_swap_points_at_target() {
        let (mut os, pid) = world();
        DirectFault::SymlinkSwap {
            path: "/tmp/spool".into(),
            target: "/etc/passwd".into(),
        }
        .apply(&mut os, pid)
        .unwrap();
        let st = os.fs.stat("/tmp/spool", None).unwrap();
        assert_eq!(st.owner, Uid::ROOT); // resolved through the link
        assert!(os.fs.lstat("/tmp/spool", None).unwrap().file_type == epa_sandbox::fs::FileType::Symlink);
    }

    #[test]
    fn symlink_swap_plants_payload_in_attacker_home() {
        let (mut os, pid) = world();
        let target = format!("{}/payload.sh", os.scenario.attacker_home);
        DirectFault::SymlinkSwap {
            path: "/usr/bin/tar".into(),
            target: target.clone(),
        }
        .apply(&mut os, pid)
        .unwrap();
        assert!(os.fs.exists(&target));
    }

    #[test]
    fn perm_faults() {
        let (mut os, pid) = world();
        os.fs
            .put_file(
                "/tmp/f",
                "x",
                os.scenario.invoker,
                os.scenario.invoker_gid,
                Mode::new(0o644),
            )
            .unwrap();
        DirectFault::FilePermRestrict { path: "/tmp/f".into() }
            .apply(&mut os, pid)
            .unwrap();
        let st = os.fs.lstat("/tmp/f", None).unwrap();
        assert_eq!(st.mode.bits(), 0o600);
        assert_eq!(st.owner, Uid::ROOT);
        DirectFault::FilePermOpen { path: "/tmp/f".into() }
            .apply(&mut os, pid)
            .unwrap();
        assert!(os.fs.lstat("/tmp/f", None).unwrap().mode.world_writable());
    }

    #[test]
    fn working_directory_fault_moves_process() {
        let (mut os, pid) = world();
        DirectFault::WorkingDirectory {
            dir: "/tmp/elsewhere".into(),
        }
        .apply(&mut os, pid)
        .unwrap();
        assert_eq!(os.procs.get(pid).unwrap().cwd, "/tmp/elsewhere");
    }

    #[test]
    fn registry_faults() {
        let (mut os, pid) = world();
        os.registry
            .ensure_key("HKLM/K", epa_sandbox::registry::RegAcl::default());
        os.registry.god_set_value("HKLM/K", "v", "/fonts/a.fon");
        DirectFault::RegistryOpenAcl { key: "HKLM/K".into() }
            .apply(&mut os, pid)
            .unwrap();
        assert_eq!(os.registry.unprotected_keys(), vec!["HKLM/K".to_string()]);
        DirectFault::RegistrySetValue {
            key: "HKLM/K".into(),
            value: "v".into(),
            new_value: "/etc/passwd".into(),
        }
        .apply(&mut os, pid)
        .unwrap();
        assert_eq!(os.registry.get_value("HKLM/K", "v").unwrap().0, "/etc/passwd");
    }

    #[test]
    fn indirect_string_faults() {
        let mut d = Data::from("/home/user/file.txt");
        IndirectFault::MakeRelative.apply_to_data(&mut d);
        assert_eq!(d.text(), "home/user/file.txt");
        IndirectFault::MakeAbsolute.apply_to_data(&mut d);
        assert_eq!(d.text(), "/home/user/file.txt");
        IndirectFault::InsertDotDot { depth: 3 }.apply_to_data(&mut d);
        assert!(d.text().starts_with("../../../"));
        let mut e = Data::from("name");
        IndirectFault::Lengthen { by: 5000 }.apply_to_data(&mut e);
        assert!(e.len() > 5000);
        IndirectFault::InsertSpecial { ch: ';' }.apply_to_data(&mut e);
        assert!(e.text().starts_with(';'));
    }

    #[test]
    fn path_list_faults() {
        let mut d = Data::from("/bin:/usr/bin");
        IndirectFault::PathListReorder.apply_to_data(&mut d);
        assert_eq!(d.text(), "/usr/bin:/bin");
        IndirectFault::PathListInsertUntrusted {
            dir: "/home/evil/bin".into(),
        }
        .apply_to_data(&mut d);
        assert!(d.text().starts_with("/home/evil/bin:"));
        IndirectFault::PathListRecursive.apply_to_data(&mut d);
        assert!(d.text().starts_with(".:"));
        IndirectFault::PathListWrong {
            dir: "/nonexistent".into(),
        }
        .apply_to_data(&mut d);
        assert_eq!(d.text(), "/nonexistent");
    }

    #[test]
    fn extension_and_mask_faults() {
        let mut d = Data::from("font.fon");
        IndirectFault::ChangeExtension { ext: "exe".into() }.apply_to_data(&mut d);
        assert_eq!(d.text(), "font.exe");
        let mut m = Data::from("022");
        IndirectFault::PermMaskZero.apply_to_data(&mut m);
        assert_eq!(m.text(), "0");
    }

    #[test]
    fn labels_survive_indirect_mutation() {
        let mut d = Data::from("x").with_label(epa_sandbox::data::Label::Untrusted { source: "s".into() });
        IndirectFault::Malform.apply_to_data(&mut d);
        assert!(d.has_untrusted());
        assert!(!d.text().is_empty());
    }

    #[test]
    fn apply_to_return_touches_payload_and_delivery_only() {
        let f = IndirectFault::Lengthen { by: 10 };
        let mut r = SysReturn::Payload(Data::from("p"));
        f.apply_to_return(&mut r);
        if let SysReturn::Payload(d) = &r {
            assert_eq!(d.len(), 11);
        } else {
            panic!("payload expected");
        }
        let mut u = SysReturn::Unit;
        f.apply_to_return(&mut u);
        assert_eq!(u, SysReturn::Unit);
    }
}
