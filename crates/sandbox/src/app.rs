//! The application interface: what a program under test looks like.

use crate::os::Os;
use crate::process::Pid;

/// A program that runs inside the sandbox.
///
/// Implementations are written exactly like the C programs they model:
/// issue syscalls through [`Os`], handle errors by printing and exiting,
/// and return a process exit status. They must not consult oracle metadata
/// (labels, tags) — only the bytes and errors a real program would see.
///
/// # Examples
///
/// ```
/// use epa_sandbox::app::Application;
/// use epa_sandbox::os::Os;
/// use epa_sandbox::process::Pid;
///
/// struct Hello;
/// impl Application for Hello {
///     fn name(&self) -> &'static str { "hello" }
///     fn run(&self, os: &mut Os, pid: Pid) -> i32 {
///         let _ = os.sys_print(pid, "hello:print", "hello, world\n");
///         0
///     }
/// }
/// ```
pub trait Application: Sync {
    /// The program's name (also used in reports).
    fn name(&self) -> &'static str;

    /// Runs the program to completion, returning its exit status.
    fn run(&self, os: &mut Os, pid: Pid) -> i32;
}

impl<T: Application + ?Sized> Application for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        (**self).run(os, pid)
    }
}

impl<T: Application + ?Sized> Application for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        (**self).run(os, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::{Gid, Uid};
    use std::collections::BTreeMap;

    struct Echo;
    impl Application for Echo {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let args: Vec<String> = os.procs.get(pid).map(|p| p.args.clone()).unwrap_or_default();
            for (i, _) in args.iter().enumerate() {
                let Ok(a) = os.sys_arg(pid, "echo:arg", i, crate::trace::InputSemantic::Opaque) else {
                    return 1;
                };
                if os.sys_print(pid, "echo:print", a).is_err() {
                    return 1;
                }
            }
            0
        }
    }

    #[test]
    fn app_runs_and_captures_stdout() {
        let mut os = Os::new();
        os.users.add("u", Uid(1001), Gid(100), "/");
        let pid = os
            .spawn(Uid(1001), None, vec!["hi".into()], BTreeMap::new(), "/")
            .unwrap();
        let code = Echo.run(&mut os, pid);
        os.set_exit(pid, code);
        assert_eq!(code, 0);
        assert_eq!(os.stdout_text(pid), "hi");
        // Blanket impl for references works too.
        let app_ref: &dyn Application = &Echo;
        assert_eq!(app_ref.name(), "echo");
    }
}
