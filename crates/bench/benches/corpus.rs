//! The corpus throughput bench and differential gate.
//!
//! Synthesizes a 120-scenario corpus (fixed seed), runs the full
//! differential sweep — every scenario through every execution path — and
//! writes `BENCH_corpus.json`: synthesis and sweep wall-clock, scenario
//! throughput, and the dashboard rollups. Gates: the corpus must hold 100+
//! scenarios, synthesis must be deterministic (byte-identical fingerprints
//! across re-synthesis), and **zero** scenarios may diverge across
//! execution paths.

use std::time::Instant;

use epa_apps::ScriptedApp;
use epa_core::corpus::{run_corpus, synthesize, CorpusConfig, DEFAULT_CORPUS_SEED};

fn main() {
    let config = CorpusConfig {
        seed: DEFAULT_CORPUS_SEED,
        count: 120,
    };
    assert!(config.count >= 100, "the throughput gate runs at 100+-scenario scale");

    // Synthesis throughput + determinism.
    let synth_start = Instant::now();
    let corpus = synthesize(&config);
    let synth_ns = synth_start.elapsed().as_nanos();
    let again = synthesize(&config);
    assert_eq!(corpus.len(), config.count);
    for (a, b) in corpus.iter().zip(&again) {
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "re-synthesis from seed {:#x} must be byte-identical",
            config.seed
        );
    }

    // The differential sweep, timed end to end (synthesis is re-done inside
    // run_corpus; it is noise next to the 8-path execution of each world).
    let factory = ScriptedApp::factory();
    let sweep_start = Instant::now();
    let report = run_corpus(&config, &factory);
    let sweep_ns = sweep_start.elapsed().as_nanos();
    let scenarios_per_sec = report.scenarios as f64 / (sweep_ns as f64 / 1e9).max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"corpus\",\n  \"seed\": {},\n  \"scenarios\": {},\n  \
         \"synthesize_ns\": {synth_ns},\n  \"sweep_ns\": {sweep_ns},\n  \
         \"scenarios_per_sec\": {scenarios_per_sec:.2},\n  \"divergences\": {},\n  \
         \"safe\": {},\n  \"vulnerable\": {},\n  \"inadequate\": {}\n}}\n",
        config.seed, report.scenarios, report.divergences, report.safe, report.vulnerable, report.inadequate
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_corpus.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} ({} scenarios, {scenarios_per_sec:.1}/s, {} divergences)",
            path.display(),
            report.scenarios,
            report.divergences
        ),
        Err(e) => eprintln!("BENCH_corpus.json not written: {e}"),
    }

    assert_eq!(report.scenarios, config.count);
    assert_eq!(
        report.divergences, 0,
        "execution paths diverged; per-scenario seeds are in CORPUS_report.json"
    );
    // Region rollups must partition the corpus.
    assert_eq!(report.safe + report.vulnerable + report.inadequate, report.scenarios);
}
