//! The deterministic-schedule model checker.
//!
//! [`check`] runs a closure many times, each time under a different
//! thread interleaving, with exactly one thread running at a time. The
//! scheduler is cooperative: every synchronization operation performed
//! through the `shim_sync` facade is a *scheduling point* where the
//! checker may preempt the running thread, and blocking operations
//! (lock contention, condvar waits, joins, channel receives) are
//! *forced* switches. Between scheduling points threads run real code
//! at full speed — the state space is the space of schedules, not of
//! instructions.
//!
//! Exploration strategies:
//!
//! * [`Strategy::Dfs`] — depth-first enumeration of schedules by
//!   recording, replaying, and backtracking the sequence of scheduling
//!   choices. Voluntary preemptions are budgeted by
//!   [`Config::preemption_bound`] (CHESS-style iterative context
//!   bounding); forced switches are free and always fully explored.
//!   When the bounded space is exhausted, [`Report::complete`] is true.
//! * [`Strategy::Random`] — a seeded random walk over schedules,
//!   useful for state spaces too large to enumerate.
//!
//! Detectors, all of which stop exploration with a [`Failure`]:
//!
//! * **Deadlock** — no thread is runnable and at least one is blocked
//!   on a lock, join, or channel.
//! * **Lost wakeup** — no thread is runnable and every blocked thread
//!   is parked on a condvar: nobody is left to signal.
//! * **Lock-order cycle** — the static lock acquisition graph
//!   (held-lock → acquired-lock edges) develops a cycle.
//! * **Happens-before race** — a [`crate::cell::RaceCell`] access is
//!   unordered (by vector clock) with a prior access from another
//!   thread.
//! * **Step bound** — one execution exceeds [`Config::max_steps`]
//!   scheduling points: a livelock or unbounded spin.
//! * **Panic** — any model thread panics (assertion failures in
//!   fixtures surface here).
//!
//! Happens-before edges tracked by vector clocks: thread spawn/join,
//! mutex & rwlock release → acquire, condvar notify → wakeup, atomic
//! release-store → acquire-load (per object), channel send → receive,
//! and `OnceLock` initialization → observation.

use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once, PoisonError};

// ---------------------------------------------------------------------------
// Public configuration and report types
// ---------------------------------------------------------------------------

/// How [`check`] explores the schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Exhaustive bounded-preemption depth-first search.
    Dfs,
    /// Seeded random walk: `max_iterations` independent random schedules.
    Random {
        /// Seed for the deterministic splitmix64 stream of choices.
        seed: u64,
    },
}

/// Exploration limits and strategy for one [`check`] call.
#[derive(Debug, Clone)]
pub struct Config {
    /// Max voluntary preemptions per schedule under DFS (`None` =
    /// unbounded). Forced switches are never counted.
    pub preemption_bound: Option<usize>,
    /// Stop after this many schedules even if DFS has not exhausted the
    /// space (`Report::complete` stays false).
    pub max_iterations: usize,
    /// Per-execution scheduling-point budget; exceeding it reports a
    /// livelock ([`FailureKind::StepBound`]).
    pub max_steps: usize,
    /// DFS or random walk.
    pub strategy: Strategy,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            preemption_bound: Some(2),
            max_iterations: 500_000,
            max_steps: 20_000,
            strategy: Strategy::Dfs,
        }
    }
}

impl Config {
    /// The default DFS config with a different preemption bound.
    pub fn with_bound(bound: usize) -> Config {
        Config {
            preemption_bound: Some(bound),
            ..Config::default()
        }
    }

    /// A seeded random walk of `iterations` schedules.
    pub fn random(seed: u64, iterations: usize) -> Config {
        Config {
            preemption_bound: None,
            max_iterations: iterations,
            strategy: Strategy::Random { seed },
            ..Config::default()
        }
    }
}

/// What kind of property violation a schedule exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Unsynchronized shared access (no happens-before edge).
    Race,
    /// No runnable thread; someone is blocked on a lock/join/channel.
    Deadlock,
    /// No runnable thread and every blocked thread waits on a condvar.
    LostWakeup,
    /// The lock acquisition-order graph has a cycle.
    LockCycle,
    /// One execution exceeded the scheduling-step budget (livelock).
    StepBound,
    /// A model thread panicked (assertion failure, explicit panic…).
    Panic,
}

impl FailureKind {
    /// Stable lowercase name (used in BENCH JSON).
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Race => "race",
            FailureKind::Deadlock => "deadlock",
            FailureKind::LostWakeup => "lost_wakeup",
            FailureKind::LockCycle => "lock_cycle",
            FailureKind::StepBound => "step_bound",
            FailureKind::Panic => "panic",
        }
    }
}

/// A property violation, with the schedule prefix that reproduces it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Violation class.
    pub kind: FailureKind,
    /// Human-readable diagnosis (threads, objects, labels).
    pub detail: String,
    /// 1-based index of the schedule that failed.
    pub iteration: usize,
    /// The sequence of branch choices taken by the failing schedule.
    pub schedule: Vec<usize>,
}

/// The result of one [`check`] call.
#[derive(Debug, Clone)]
pub struct Report {
    /// Fixture name (caller-chosen, lands in BENCH JSON).
    pub name: String,
    /// Schedules actually executed.
    pub iterations: usize,
    /// Deepest schedule, in scheduling decisions with >1 alternative.
    pub max_depth: usize,
    /// True iff DFS exhausted the preemption-bounded schedule space.
    pub complete: bool,
    /// The preemption bound in force (`None` for random walks).
    pub preemption_bound: Option<usize>,
    /// The first violation found, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics (with the diagnosis) if any schedule found a violation.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model check `{}` failed at iteration {} ({}): {}\nschedule: {:?}",
                self.name,
                f.iteration,
                f.kind.as_str(),
                f.detail,
                f.schedule
            );
        }
    }

    /// Panics unless the bounded DFS space was fully enumerated.
    pub fn assert_complete(&self) {
        self.assert_ok();
        assert!(
            self.complete,
            "model check `{}` did not exhaust its schedule space in {} iterations",
            self.name, self.iterations
        );
    }

    /// The failure, which must exist (mutation-gate helper).
    pub fn expect_failure(&self, why: &str) -> &Failure {
        self.failure.as_ref().unwrap_or_else(|| {
            panic!(
                "model check `{}` explored {} schedules without finding the seeded bug: {}",
                self.name, self.iterations, why
            )
        })
    }
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A grow-on-demand vector clock indexed by model thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn set(&mut self, i: usize, v: u64) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
        self.0[i] = v;
    }

    fn bump(&mut self, i: usize) {
        let v = self.get(i) + 1;
        self.set(i, v);
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        for (i, &v) in other.0.iter().enumerate() {
            if v > self.get(i) {
                self.set(i, v);
            }
        }
    }

    fn len(&self) -> usize {
        self.0.len()
    }
}

// ---------------------------------------------------------------------------
// Per-object identity: survives statics across executions via epochs
// ---------------------------------------------------------------------------

/// A sync object's identity slot. Objects (including `static`s) carry a
/// `Handle`; the first operation of each execution re-registers the
/// object under the current epoch, so state never leaks between
/// schedules.
pub(crate) struct Handle(StdMutex<HandleInner>);

struct HandleInner {
    epoch: u64,
    id: usize,
}

impl Handle {
    pub(crate) const fn new() -> Handle {
        Handle(StdMutex::new(HandleInner {
            epoch: 0,
            id: usize::MAX,
        }))
    }
}

impl Default for Handle {
    fn default() -> Handle {
        Handle::new()
    }
}

impl std::fmt::Debug for Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Handle")
    }
}

struct ObjMeta {
    label: &'static str,
    /// Release/publish clock (lock releases, atomic release stores,
    /// once-init publication).
    clock: VClock,
    /// Exclusive holder (mutex owner / rwlock writer / once initializer).
    owner: Option<usize>,
    /// Shared holders (rwlock readers; may repeat for reentrant reads).
    readers: Vec<usize>,
    /// Threads parked on this condvar, FIFO.
    cv_waiters: Vec<usize>,
    /// RaceCell: per-thread clock of the last write / read.
    write_clock: VClock,
    read_clock: VClock,
}

impl ObjMeta {
    fn new(label: &'static str) -> ObjMeta {
        ObjMeta {
            label,
            clock: VClock::default(),
            owner: None,
            readers: Vec::new(),
            cv_waiters: Vec::new(),
            write_clock: VClock::default(),
            read_clock: VClock::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    Lock(usize),
    Cv(usize),
    Join(usize),
    Recv(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Runnable,
    Blocked(Block),
    Exited,
}

struct ThreadInfo {
    state: RunState,
    clock: VClock,
    held: Vec<usize>,
}

#[derive(Debug, Clone, Copy)]
struct ChoicePoint {
    taken: usize,
    total: usize,
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    current: usize,
    abort: bool,
    failure: Option<Failure>,
    steps: usize,
    preemptions: usize,
    /// DFS: replay prefix + appended new choice points.
    choices: Vec<ChoicePoint>,
    cursor: usize,
    /// Random walk state (None under DFS).
    rng: Option<u64>,
    /// Choice indices actually taken (failure reproduction info).
    trace: Vec<usize>,
    iteration: usize,
    objects: Vec<ObjMeta>,
    lock_edges: BTreeSet<(usize, usize)>,
    /// Ring buffer of the most recent operations (diagnostics for
    /// step-bound reports, where the repeating tail IS the livelock).
    recent: VecDeque<String>,
}

impl ExecState {
    fn note(&mut self, tid: usize, op: &str, label: &str) {
        if self.recent.len() >= 48 {
            self.recent.pop_front();
        }
        self.recent.push_back(format!("t{tid}:{op}({label})"));
    }
}

/// One model execution: the scheduler shared by all its threads.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    turn: StdCondvar,
    epoch: u64,
    max_steps: usize,
    preemption_bound: Option<usize>,
}

/// Sentinel panic payload used to unwind every thread of an aborted
/// execution; filtered out of panic-hook output and failure reports.
pub(crate) struct ModelAbort;

type Guard<'a> = StdMutexGuard<'a, ExecState>;

static EPOCH: AtomicU64 = AtomicU64::new(1);

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Execution {
    fn new(cfg: &Config, iteration: usize, prefix: Vec<ChoicePoint>, rng: Option<u64>) -> Execution {
        let mut root_clock = VClock::default();
        root_clock.set(0, 1);
        Execution {
            state: StdMutex::new(ExecState {
                threads: vec![ThreadInfo {
                    state: RunState::Runnable,
                    clock: root_clock,
                    held: Vec::new(),
                }],
                current: 0,
                abort: false,
                failure: None,
                steps: 0,
                preemptions: 0,
                choices: prefix,
                cursor: 0,
                rng,
                trace: Vec::new(),
                iteration,
                objects: Vec::new(),
                lock_edges: BTreeSet::new(),
                recent: VecDeque::new(),
            }),
            turn: StdCondvar::new(),
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed),
            max_steps: cfg.max_steps,
            preemption_bound: if rng.is_some() { None } else { cfg.preemption_bound },
        }
    }

    fn lock_state(&self) -> Guard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record a violation, wake everyone, and unwind this thread.
    fn fail(&self, mut st: Guard<'_>, kind: FailureKind, detail: String) -> ! {
        if st.failure.is_none() {
            let failure = Failure {
                kind,
                detail,
                iteration: st.iteration,
                schedule: st.trace.clone(),
            };
            st.failure = Some(failure);
        }
        st.abort = true;
        drop(st);
        self.turn.notify_all();
        panic::panic_any(ModelAbort);
    }

    /// Park until this thread holds the token (is `current` and
    /// runnable). Unwinds with [`ModelAbort`] if the execution aborted —
    /// unless this thread is already panicking, in which case the guard
    /// is returned so drop-side bookkeeping can proceed unblocked.
    fn wait_turn<'a>(&'a self, mut st: Guard<'a>, tid: usize) -> Guard<'a> {
        loop {
            if st.abort {
                if std::thread::panicking() {
                    return st;
                }
                drop(st);
                panic::panic_any(ModelAbort);
            }
            if st.current == tid && st.threads[tid].state == RunState::Runnable {
                return st;
            }
            st = self.turn.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Consume (or extend) the choice sequence: pick one of `total`
    /// alternatives.
    fn choose(&self, st: &mut ExecState, total: usize) -> usize {
        let pick = if let Some(rng) = st.rng.as_mut() {
            (splitmix(rng) % total as u64) as usize
        } else if st.cursor < st.choices.len() {
            let c = st.choices[st.cursor];
            debug_assert_eq!(c.total, total, "schedule replay diverged");
            c.taken.min(total - 1)
        } else {
            st.choices.push(ChoicePoint { taken: 0, total });
            0
        };
        st.cursor += 1;
        st.trace.push(pick);
        pick
    }

    /// The scheduling decision. `forced` means the current thread can no
    /// longer run (blocked or exited): the switch is mandatory and free.
    /// A non-forced decision may preempt within the preemption budget.
    /// Detects deadlock / lost wakeup when nothing is runnable.
    fn reschedule<'a>(&'a self, mut st: Guard<'a>, tid: usize, forced: bool) -> Guard<'a> {
        let enabled: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == RunState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if st.threads.iter().all(|t| t.state == RunState::Exited) {
                st.current = usize::MAX;
                drop(st);
                self.turn.notify_all();
                return self.lock_state();
            }
            // A join counts as condvar-equivalent when its target is
            // itself (transitively, through join chains) parked on a
            // condvar: the joiner would run again if the wakeup came.
            fn terminal_block(st: &ExecState, mut b: Block) -> Block {
                let mut hops = 0;
                while let Block::Join(j) = b {
                    match st.threads[j].state {
                        RunState::Blocked(next) => b = next,
                        _ => break,
                    }
                    hops += 1;
                    if hops > st.threads.len() {
                        break;
                    }
                }
                b
            }
            let mut parked = Vec::new();
            let mut all_cv = true;
            for (i, t) in st.threads.iter().enumerate() {
                if let RunState::Blocked(b) = t.state {
                    if !matches!(terminal_block(&st, b), Block::Cv(_)) {
                        all_cv = false;
                    }
                    let what = match b {
                        Block::Lock(o) => format!("lock `{}`", st.objects[o].label),
                        Block::Cv(o) => format!("condvar `{}`", st.objects[o].label),
                        Block::Join(j) => format!("join of t{j}"),
                        Block::Recv(o) => format!("recv on `{}`", st.objects[o].label),
                    };
                    parked.push(format!("t{i} blocked on {what}"));
                }
            }
            let kind = if all_cv {
                FailureKind::LostWakeup
            } else {
                FailureKind::Deadlock
            };
            let detail = if all_cv {
                format!(
                    "no thread is runnable and every blocked thread waits on a condvar \
                     (directly or through a join of a condvar waiter) — a wakeup was \
                     lost: {}",
                    parked.join("; ")
                )
            } else {
                format!("no thread is runnable: {}", parked.join("; "))
            };
            self.fail(st, kind, detail);
        }
        let alternatives: Vec<usize> = if forced {
            enabled
        } else {
            let can_preempt = self.preemption_bound.is_none_or(|b| st.preemptions < b);
            if can_preempt {
                let mut v = vec![tid];
                v.extend(enabled.into_iter().filter(|&t| t != tid));
                v
            } else {
                vec![tid]
            }
        };
        let pick = if alternatives.len() == 1 {
            0
        } else {
            self.choose(&mut st, alternatives.len())
        };
        let next = alternatives[pick];
        if !forced && next != tid {
            st.preemptions += 1;
        }
        if st.current != next {
            st.current = next;
            self.turn.notify_all();
        }
        st
    }

    /// Entry point of every operation: count a step and offer a
    /// preemption. Returns with the token held (or in teardown mode —
    /// `abort && panicking` — immediately, so drops never block).
    fn op_enter(&self, tid: usize) -> Guard<'_> {
        let st = self.lock_state();
        let mut st = self.wait_turn(st, tid);
        if st.abort {
            return st;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            let max = self.max_steps;
            let tail: Vec<String> = st.recent.iter().cloned().collect();
            self.fail(
                st,
                FailureKind::StepBound,
                format!(
                    "execution exceeded {max} scheduling points: livelock or unbounded spin; \
                     recent ops: {}",
                    tail.join(" ")
                ),
            );
        }
        let st = self.reschedule(st, tid, false);
        self.wait_turn(st, tid)
    }

    fn obj_id(&self, st: &mut ExecState, handle: &Handle, label: &'static str) -> usize {
        let mut h = handle.0.lock().unwrap_or_else(PoisonError::into_inner);
        if h.epoch != self.epoch {
            h.epoch = self.epoch;
            h.id = st.objects.len();
            st.objects.push(ObjMeta::new(label));
        }
        h.id
    }

    /// Any path `from -> … -> from` in the acquisition-order graph?
    fn lock_cycle(&self, st: &ExecState, from: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            for &(a, b) in &st.lock_edges {
                if a == n {
                    if b == from {
                        return true;
                    }
                    if seen.insert(b) {
                        stack.push(b);
                    }
                }
            }
        }
        false
    }

    fn acquire_exclusive(&self, st: &mut Guard<'_>, tid: usize, obj: usize) {
        let held: Vec<usize> = st.threads[tid].held.clone();
        for h in held {
            if h != obj {
                st.lock_edges.insert((h, obj));
            }
        }
        let release_clock = st.objects[obj].clock.clone();
        st.threads[tid].clock.join(&release_clock);
        st.objects[obj].owner = Some(tid);
        st.threads[tid].held.push(obj);
    }

    fn release_exclusive(&self, st: &mut Guard<'_>, tid: usize, obj: usize) {
        st.threads[tid].clock.bump(tid);
        let tc = st.threads[tid].clock.clone();
        let m = &mut st.objects[obj];
        m.clock.join(&tc);
        if m.owner == Some(tid) {
            m.owner = None;
        }
        st.threads[tid].held.retain(|&h| h != obj);
        for t in &mut st.threads {
            if t.state == RunState::Blocked(Block::Lock(obj)) {
                t.state = RunState::Runnable;
            }
        }
    }

    /// Model-level `Mutex::lock` (also rwlock write, once-init section).
    pub(crate) fn lock(&self, tid: usize, handle: &Handle, label: &'static str) {
        let mut st = self.op_enter(tid);
        if st.abort {
            return;
        }
        let obj = self.obj_id(&mut st, handle, label);
        st.note(tid, "lock", label);
        loop {
            if st.threads[tid].held.contains(&obj) {
                self.fail(
                    st,
                    FailureKind::Deadlock,
                    format!("t{tid} re-locked `{label}` it already holds (self-deadlock)"),
                );
            }
            let free = {
                let m = &st.objects[obj];
                m.owner.is_none() && m.readers.is_empty()
            };
            if free {
                self.acquire_exclusive(&mut st, tid, obj);
                if self.lock_cycle(&st, obj) {
                    self.fail(
                        st,
                        FailureKind::LockCycle,
                        format!("acquiring `{label}` closes a cycle in the lock-order graph"),
                    );
                }
                return;
            }
            st.threads[tid].state = RunState::Blocked(Block::Lock(obj));
            st = self.reschedule(st, tid, true);
            st = self.wait_turn(st, tid);
            if st.abort {
                return;
            }
        }
    }

    /// Model-level `Mutex::unlock` (guard drop). Not a scheduling point:
    /// the next operation's `op_enter` provides the preemption.
    pub(crate) fn unlock(&self, tid: usize, handle: &Handle, label: &'static str) {
        let mut st = self.lock_state();
        let obj = self.obj_id(&mut st, handle, label);
        st.note(tid, "unlock", label);
        self.release_exclusive(&mut st, tid, obj);
    }

    /// Model-level shared (read) lock.
    pub(crate) fn lock_shared(&self, tid: usize, handle: &Handle, label: &'static str) {
        let mut st = self.op_enter(tid);
        if st.abort {
            return;
        }
        let obj = self.obj_id(&mut st, handle, label);
        st.note(tid, "read", label);
        loop {
            if st.objects[obj].owner.is_none() {
                let held: Vec<usize> = st.threads[tid].held.clone();
                for h in held {
                    if h != obj {
                        st.lock_edges.insert((h, obj));
                    }
                }
                let release_clock = st.objects[obj].clock.clone();
                st.threads[tid].clock.join(&release_clock);
                st.objects[obj].readers.push(tid);
                st.threads[tid].held.push(obj);
                return;
            }
            st.threads[tid].state = RunState::Blocked(Block::Lock(obj));
            st = self.reschedule(st, tid, true);
            st = self.wait_turn(st, tid);
            if st.abort {
                return;
            }
        }
    }

    /// Model-level shared (read) unlock.
    pub(crate) fn unlock_shared(&self, tid: usize, handle: &Handle, label: &'static str) {
        let mut st = self.lock_state();
        let obj = self.obj_id(&mut st, handle, label);
        st.threads[tid].clock.bump(tid);
        let tc = st.threads[tid].clock.clone();
        let m = &mut st.objects[obj];
        m.clock.join(&tc);
        if let Some(pos) = m.readers.iter().position(|&r| r == tid) {
            m.readers.remove(pos);
        }
        st.threads[tid].held.retain(|&h| h != obj);
        if st.objects[obj].readers.is_empty() {
            for t in &mut st.threads {
                if t.state == RunState::Blocked(Block::Lock(obj)) {
                    t.state = RunState::Runnable;
                }
            }
        }
    }

    /// Model-level `Condvar::wait`: atomically release the mutex and
    /// park; on wakeup, reacquire the mutex before returning.
    pub(crate) fn condvar_wait(
        &self,
        tid: usize,
        cv_handle: &Handle,
        cv_label: &'static str,
        mutex_handle: &Handle,
        mutex_label: &'static str,
    ) {
        let mut st = self.op_enter(tid);
        if st.abort {
            return;
        }
        let cv = self.obj_id(&mut st, cv_handle, cv_label);
        st.note(tid, "wait", cv_label);
        let mx = self.obj_id(&mut st, mutex_handle, mutex_label);
        self.release_exclusive(&mut st, tid, mx);
        st.objects[cv].cv_waiters.push(tid);
        st.threads[tid].state = RunState::Blocked(Block::Cv(cv));
        st = self.reschedule(st, tid, true);
        st = self.wait_turn(st, tid);
        // Woken (or aborting): reacquire the mutex.
        loop {
            if st.abort {
                return;
            }
            let free = {
                let m = &st.objects[mx];
                m.owner.is_none() && m.readers.is_empty()
            };
            if free {
                self.acquire_exclusive(&mut st, tid, mx);
                return;
            }
            st.threads[tid].state = RunState::Blocked(Block::Lock(mx));
            st = self.reschedule(st, tid, true);
            st = self.wait_turn(st, tid);
        }
    }

    /// Model-level notify. `all` wakes every waiter; otherwise the
    /// longest-waiting thread (deterministic FIFO).
    pub(crate) fn condvar_notify(&self, tid: usize, handle: &Handle, label: &'static str, all: bool) {
        let mut st = self.op_enter(tid);
        if st.abort {
            return;
        }
        let cv = self.obj_id(&mut st, handle, label);
        st.note(tid, "notify", label);
        st.threads[tid].clock.bump(tid);
        let tc = st.threads[tid].clock.clone();
        let woken: Vec<usize> = if all {
            std::mem::take(&mut st.objects[cv].cv_waiters)
        } else if st.objects[cv].cv_waiters.is_empty() {
            Vec::new()
        } else {
            vec![st.objects[cv].cv_waiters.remove(0)]
        };
        for w in woken {
            st.threads[w].state = RunState::Runnable;
            st.threads[w].clock.join(&tc);
        }
    }

    /// Model-level atomic access: a scheduling point plus the
    /// acquire/release clock transfer the memory ordering implies. The
    /// value operation itself happens in the caller (exclusively — the
    /// token is held until its next operation).
    pub(crate) fn atomic_op(&self, tid: usize, handle: &Handle, label: &'static str, acquire: bool, release: bool) {
        let mut st = self.op_enter(tid);
        if st.abort {
            return;
        }
        let obj = self.obj_id(&mut st, handle, label);
        st.note(tid, "atomic", label);
        if acquire {
            let c = st.objects[obj].clock.clone();
            st.threads[tid].clock.join(&c);
        }
        if release {
            st.threads[tid].clock.bump(tid);
            let tc = st.threads[tid].clock.clone();
            st.objects[obj].clock.join(&tc);
        }
    }

    /// RaceCell access: happens-before check against every other
    /// thread's last conflicting access.
    pub(crate) fn cell_access(&self, tid: usize, handle: &Handle, label: &'static str, write: bool) {
        let mut st = self.op_enter(tid);
        if st.abort {
            return;
        }
        let obj = self.obj_id(&mut st, handle, label);
        let me = st.threads[tid].clock.clone();
        let mut conflict: Option<(usize, &'static str)> = None;
        {
            let m = &st.objects[obj];
            for u in 0..m.write_clock.len() {
                if u != tid && m.write_clock.get(u) > me.get(u) {
                    conflict = Some((u, "write"));
                }
            }
            if write && conflict.is_none() {
                for u in 0..m.read_clock.len() {
                    if u != tid && m.read_clock.get(u) > me.get(u) {
                        conflict = Some((u, "read"));
                    }
                }
            }
        }
        if let Some((other, what)) = conflict {
            let access = if write { "write" } else { "read" };
            self.fail(
                st,
                FailureKind::Race,
                format!(
                    "{access} of `{label}` by t{tid} is unordered with a prior {what} by \
                     t{other}: no happens-before edge connects them"
                ),
            );
        }
        let stamp = me.get(tid);
        let m = &mut st.objects[obj];
        if write {
            m.write_clock.set(tid, stamp);
        } else {
            m.read_clock.set(tid, stamp);
        }
    }

    /// Channel send: stamps the message with the sender's clock and
    /// wakes blocked receivers.
    pub(crate) fn chan_send(&self, tid: usize, handle: &Handle, label: &'static str) -> VClock {
        let mut st = self.op_enter(tid);
        if st.abort {
            return VClock::default();
        }
        let obj = self.obj_id(&mut st, handle, label);
        st.note(tid, "send", label);
        st.threads[tid].clock.bump(tid);
        let tc = st.threads[tid].clock.clone();
        for t in &mut st.threads {
            if t.state == RunState::Blocked(Block::Recv(obj)) {
                t.state = RunState::Runnable;
            }
        }
        tc
    }

    /// Channel receive: blocks until `try_pop` yields a message or
    /// `disconnected` reports every sender gone. `Err(())` maps to
    /// `RecvError`.
    pub(crate) fn chan_recv<T>(
        &self,
        tid: usize,
        handle: &Handle,
        label: &'static str,
        mut try_pop: impl FnMut() -> Option<(T, VClock)>,
        disconnected: impl Fn() -> bool,
    ) -> Result<T, ()> {
        let mut st = self.op_enter(tid);
        if st.abort {
            return Err(());
        }
        let obj = self.obj_id(&mut st, handle, label);
        st.note(tid, "recv", label);
        loop {
            if let Some((value, clock)) = try_pop() {
                st.threads[tid].clock.join(&clock);
                return Ok(value);
            }
            if disconnected() {
                return Err(());
            }
            st.threads[tid].state = RunState::Blocked(Block::Recv(obj));
            st = self.reschedule(st, tid, true);
            st = self.wait_turn(st, tid);
            if st.abort {
                return Err(());
            }
        }
    }

    /// The last sender disconnected: wake blocked receivers so they can
    /// observe the hangup. Not a scheduling point (runs from drops).
    pub(crate) fn chan_hangup(&self, handle: &Handle, label: &'static str) {
        let mut st = self.lock_state();
        let obj = self.obj_id(&mut st, handle, label);
        for t in &mut st.threads {
            if t.state == RunState::Blocked(Block::Recv(obj)) {
                t.state = RunState::Runnable;
            }
        }
        drop(st);
        self.turn.notify_all();
    }

    /// Register a new model thread; returns its tid. The child starts
    /// runnable (it runs when first scheduled).
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        let mut st = self.op_enter(parent);
        let child = st.threads.len();
        st.threads[parent].clock.bump(parent);
        let mut clock = st.threads[parent].clock.clone();
        clock.set(child, 1);
        st.threads.push(ThreadInfo {
            state: RunState::Runnable,
            clock,
            held: Vec::new(),
        });
        child
    }

    /// First thing a model thread does: park until first scheduled.
    pub(crate) fn thread_begin(&self, tid: usize) {
        let st = self.lock_state();
        let _st = self.wait_turn(st, tid);
    }

    /// Last thing a model thread does: mark exited, wake joiners, hand
    /// off the token (detecting deadlock among the survivors).
    pub(crate) fn thread_exit(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].state = RunState::Exited;
        let tc = st.threads[tid].clock.clone();
        for t in &mut st.threads {
            if t.state == RunState::Blocked(Block::Join(tid)) {
                t.state = RunState::Runnable;
                t.clock.join(&tc);
            }
        }
        if !st.abort && st.current == tid {
            st = self.reschedule(st, tid, true);
        }
        drop(st);
        self.turn.notify_all();
    }

    /// Model-level join: park until `target` exits (idempotent).
    pub(crate) fn join_thread(&self, joiner: usize, target: usize) {
        let mut st = self.op_enter(joiner);
        loop {
            if st.abort {
                return;
            }
            if st.threads[target].state == RunState::Exited {
                let tc = st.threads[target].clock.clone();
                st.threads[joiner].clock.join(&tc);
                return;
            }
            st.threads[joiner].state = RunState::Blocked(Block::Join(target));
            st = self.reschedule(st, joiner, true);
            st = self.wait_turn(st, joiner);
        }
    }

    /// A pure preemption point (`yield_now`, model `sleep`).
    pub(crate) fn yield_op(&self, tid: usize) {
        let _st = self.op_enter(tid);
    }

    /// A child thread panicked with a real (non-abort) payload: record
    /// it as the execution's failure and abort the schedule.
    pub(crate) fn record_child_panic(&self, tid: usize, msg: String) {
        let mut st = self.lock_state();
        if st.failure.is_none() {
            let failure = Failure {
                kind: FailureKind::Panic,
                detail: format!("t{tid} panicked: {msg}"),
                iteration: st.iteration,
                schedule: st.trace.clone(),
            };
            st.failure = Some(failure);
        }
        st.abort = true;
        drop(st);
        self.turn.notify_all();
    }

    /// Root returned from the checked closure: mark it exited and wait
    /// for every other thread to finish (fails on deadlocked leftovers).
    fn finish_root(&self) {
        let mut st = self.lock_state();
        st.threads[0].state = RunState::Exited;
        if !st.abort && st.threads.iter().any(|t| t.state != RunState::Exited) {
            st = self.reschedule(st, 0, true);
        }
        drop(st);
        self.turn.notify_all();
    }

    /// Wait (std-level) until every non-root thread has exited, so no
    /// stale thread leaks into the next schedule.
    fn drain_threads(&self) {
        let mut st = self.lock_state();
        while st.threads.iter().any(|t| t.state != RunState::Exited) {
            if st.threads.iter().skip(1).all(|t| t.state == RunState::Exited) {
                // Only the root is unfinished; the controller owns it.
                break;
            }
            st = self.turn.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local execution context
// ---------------------------------------------------------------------------

/// A thread's registration in an active execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) exec: Arc<Execution>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it belongs to an execution.
pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

struct CtxGuard {
    prev: Option<Ctx>,
}

impl CtxGuard {
    fn install(exec: Arc<Execution>, tid: usize) -> CtxGuard {
        let prev = CTX.with(|c| c.borrow_mut().replace(Ctx { exec, tid }));
        CtxGuard { prev }
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CTX.with(|c| *c.borrow_mut() = prev);
    }
}

/// Body wrapper for every spawned model thread: register, run, record
/// panics, deregister. Used by `crate::thread`.
pub(crate) fn thread_body<T>(exec: Arc<Execution>, tid: usize, f: impl FnOnce() -> T) -> T {
    let guard = CtxGuard::install(exec.clone(), tid);
    exec.thread_begin(tid);
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    if let Err(p) = &result {
        if !p.is::<ModelAbort>() {
            exec.record_child_panic(tid, payload_str(p.as_ref()));
        }
    }
    let exit = panic::catch_unwind(AssertUnwindSafe(|| exec.thread_exit(tid)));
    drop(guard);
    match result {
        Ok(v) => {
            if let Err(p) = exit {
                panic::resume_unwind(p);
            }
            v
        }
        Err(p) => panic::resume_unwind(p),
    }
}

// ---------------------------------------------------------------------------
// The exploration driver
// ---------------------------------------------------------------------------

/// Serializes model checks process-wide: object identity (epochs on
/// statics) assumes a single active execution.
fn check_gate() -> StdMutexGuard<'static, ()> {
    static GATE: StdMutex<()> = StdMutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Silence the panic-hook spam from [`ModelAbort`] unwinds (every
/// aborted schedule unwinds every thread); real panics still print.
fn install_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Model-check `f` under every schedule the configured strategy
/// generates, stopping at the first violation.
///
/// `f` runs once per schedule on the controller thread (model tid 0);
/// any thread it spawns through `shim_sync::thread` joins the execution.
/// All threads must be joined before `f` returns (scopes handle this).
pub fn check(name: &str, cfg: &Config, f: impl Fn()) -> Report {
    let _gate = check_gate();
    install_hook();
    let mut report = Report {
        name: name.to_string(),
        iterations: 0,
        max_depth: 0,
        complete: false,
        preemption_bound: match cfg.strategy {
            Strategy::Dfs => cfg.preemption_bound,
            Strategy::Random { .. } => None,
        },
        failure: None,
    };
    let mut prefix: Vec<ChoicePoint> = Vec::new();
    let mut seed = match cfg.strategy {
        Strategy::Random { seed } => Some(seed),
        Strategy::Dfs => None,
    };
    while report.iterations < cfg.max_iterations {
        report.iterations += 1;
        let rng = if let Some(s) = seed {
            let mut next = s;
            let _ = splitmix(&mut next);
            seed = Some(next);
            Some(s)
        } else {
            None
        };
        let exec = Arc::new(Execution::new(cfg, report.iterations, std::mem::take(&mut prefix), rng));
        let body = panic::catch_unwind(AssertUnwindSafe(|| {
            let _g = CtxGuard::install(exec.clone(), 0);
            f();
        }));
        let _fin = panic::catch_unwind(AssertUnwindSafe(|| exec.finish_root()));
        exec.drain_threads();
        let mut st = exec.lock_state();
        if let Err(p) = body {
            if st.failure.is_none() && !p.is::<ModelAbort>() {
                let failure = Failure {
                    kind: FailureKind::Panic,
                    detail: payload_str(p.as_ref()),
                    iteration: st.iteration,
                    schedule: st.trace.clone(),
                };
                st.failure = Some(failure);
            }
        }
        report.max_depth = report.max_depth.max(st.choices.len());
        if st.failure.is_some() {
            report.failure = st.failure.clone();
            break;
        }
        match cfg.strategy {
            Strategy::Random { .. } => {}
            Strategy::Dfs => {
                prefix = std::mem::take(&mut st.choices);
                drop(st);
                loop {
                    match prefix.last_mut() {
                        None => {
                            report.complete = true;
                            break;
                        }
                        Some(c) if c.taken + 1 < c.total => {
                            c.taken += 1;
                            break;
                        }
                        Some(_) => {
                            prefix.pop();
                        }
                    }
                }
                if report.complete {
                    break;
                }
            }
        }
    }
    report
}
