//! Campaign reports: per-fault records, coverage, and the vulnerability
//! assessment score of the paper's step 10.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use epa_sandbox::policy::Verdict;

use crate::coverage::{AdequacyPoint, AdequacyThresholds, Ratio};
use crate::model::EaiCategory;

/// The outcome of one injected run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The perturbed site.
    pub site: String,
    /// The occurrence that was struck.
    pub occurrence: usize,
    /// Fault identifier.
    pub fault_id: String,
    /// Fault classification.
    pub category: EaiCategory,
    /// Human-readable perturbation description.
    pub description: String,
    /// Whether the fault actually fired during the run.
    pub applied: bool,
    /// The application's exit status (`None` when it panicked).
    pub exit: Option<i32>,
    /// `Some(panic message)` when the application panicked under the fault.
    pub crashed: Option<String>,
    /// Length of the run's audit log — the bound every evidence index in
    /// `violations` must stay inside (machine-checkable from the serialized
    /// record alone).
    pub audit_events: usize,
    /// True when this record was **replayed** rather than executed: the
    /// planner resolved it from the suite-scoped
    /// [`crate::engine::planner::ResultCache`] (or from an equivalent job
    /// earlier in the same plan) instead of occupying a worker slot. Its
    /// outcome fields are byte-identical to the source run's.
    pub cache_hit: bool,
    /// True when this record was **statically pruned**: the analysis layer
    /// proved the fault inert ([`crate::analysis::Relevance::ProvablyInert`])
    /// and the planner synthesized the record from the clean run instead of
    /// executing it. Mirrors [`FaultRecord::cache_hit`] — outcome fields are
    /// byte-identical to what the run would have produced.
    pub pruned: bool,
    /// Verdicts the oracle pipeline detected, each carrying its evidence
    /// chain (a `Verdict` dereferences to its `Violation`).
    pub violations: Vec<Verdict>,
}

impl FaultRecord {
    /// The paper's toleration criterion: no security violation occurred.
    pub fn tolerated(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether the application panicked under this fault.
    pub fn has_crashed(&self) -> bool {
        self.crashed.is_some()
    }
}

/// The full report of one campaign over one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The application under test.
    pub app: String,
    /// Perturbable interaction points the traced execution exposed (sites
    /// with at least one applicable catalog fault).
    pub total_sites: usize,
    /// Interaction points actually perturbed.
    pub perturbed_sites: usize,
    /// Violations in the *unperturbed* run (must be zero for the campaign's
    /// attribution to be sound; kept for transparency).
    pub clean_violations: usize,
    /// Every injected run.
    pub records: Vec<FaultRecord>,
}

impl CampaignReport {
    /// Number of faults injected (paper's `n`).
    pub fn injected(&self) -> usize {
        self.records.len()
    }

    /// Number of injected runs that violated the policy (paper's `count`).
    pub fn violated(&self) -> usize {
        self.records.iter().filter(|r| !r.tolerated()).count()
    }

    /// Fault coverage: tolerated / injected.
    pub fn fault_coverage(&self) -> Ratio {
        Ratio::new(self.injected() - self.violated(), self.injected())
    }

    /// Interaction coverage: perturbed sites / total sites.
    pub fn interaction_coverage(&self) -> Ratio {
        Ratio::new(self.perturbed_sites, self.total_sites)
    }

    /// The paper's step-10 vulnerability assessment score: `count / n`.
    /// An empty campaign scores 0.0 (never `NaN`): no injected runs means
    /// no observed violations.
    pub fn vulnerability_score(&self) -> f64 {
        Ratio::new(self.violated(), self.injected()).value_or(0.0)
    }

    /// Number of records resolved from the planner's result cache (or from
    /// an equivalent earlier job in the same plan) instead of executed.
    pub fn cache_hits(&self) -> usize {
        self.records.iter().filter(|r| r.cache_hit).count()
    }

    /// Number of records the static analysis pruned (synthesized from the
    /// clean run instead of executed).
    pub fn pruned(&self) -> usize {
        self.records.iter().filter(|r| r.pruned).count()
    }

    /// Number of records that actually occupied a worker slot: injected
    /// runs minus cache hits minus statically pruned records.
    pub fn runs_executed(&self) -> usize {
        self.injected() - self.cache_hits() - self.pruned()
    }

    /// The Figure 2 adequacy point for this campaign.
    ///
    /// Fault coverage keeps its vacuous-truth reading (zero injected faults
    /// means zero intolerated faults, so 1.0); interaction coverage does
    /// **not** — a world exposing zero perturbable interaction points has
    /// *undefined* interaction coverage, and the campaign classifies as
    /// [`crate::coverage::AdequacyRegion::Inadequate`], never Safe.
    pub fn adequacy(&self) -> AdequacyPoint {
        let fault = self.fault_coverage().value_or(1.0);
        match self.interaction_coverage().fraction() {
            Some(interaction) => AdequacyPoint::new(interaction, fault),
            None => AdequacyPoint::vacuous(fault),
        }
    }

    /// Iterates all violating records.
    pub fn violations(&self) -> impl Iterator<Item = &FaultRecord> {
        self.records.iter().filter(|r| !r.tolerated())
    }

    /// Per-category (injected, violated) counts.
    pub fn by_category(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for r in &self.records {
            let e = out.entry(r.category.to_string()).or_insert((0, 0));
            e.0 += 1;
            if !r.tolerated() {
                e.1 += 1;
            }
        }
        out
    }

    /// Per-site (injected, violated) counts, in record order.
    pub fn by_site(&self) -> Vec<(String, usize, usize)> {
        let mut order: Vec<String> = Vec::new();
        let mut map: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for r in &self.records {
            if !map.contains_key(&r.site) {
                order.push(r.site.clone());
            }
            let e = map.entry(r.site.clone()).or_insert((0, 0));
            e.0 += 1;
            if !r.tolerated() {
                e.1 += 1;
            }
        }
        order
            .into_iter()
            .map(|s| {
                let (i, v) = map[&s];
                (s, i, v)
            })
            .collect()
    }

    /// A human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "campaign: {}", self.app);
        let _ = writeln!(
            s,
            "  interaction coverage: {}   fault coverage: {}",
            self.interaction_coverage(),
            self.fault_coverage()
        );
        let _ = writeln!(
            s,
            "  injected: {}   violations: {}   vulnerability score: {:.3}",
            self.injected(),
            self.violated(),
            self.vulnerability_score()
        );
        if self.cache_hits() > 0 || self.pruned() > 0 {
            let _ = writeln!(
                s,
                "  runs executed: {}   replayed from cache: {}   statically pruned: {}",
                self.runs_executed(),
                self.cache_hits(),
                self.pruned()
            );
        }
        let region = self.adequacy().region(AdequacyThresholds::default());
        let _ = writeln!(s, "  adequacy: {} -> {}", self.adequacy(), region);
        let _ = writeln!(s, "  per-site results:");
        for (site, injected, violated) in self.by_site() {
            let _ = writeln!(s, "    {site}: {injected} injected, {violated} violations");
        }
        for r in self.violations() {
            for v in &r.violations {
                let evidence = match v.evidence.items.first() {
                    Some(item) => format!("event #{} {}", item.index, item.summary),
                    None => "no implicated event".to_string(),
                };
                let _ = writeln!(
                    s,
                    "  VIOLATION {} @ {}: [{}] {} <- {}",
                    r.fault_id, r.site, v.kind, v.description, evidence
                );
            }
        }
        for r in self.records.iter().filter(|r| r.has_crashed()) {
            let msg = r.crashed.as_deref().unwrap_or_default();
            let _ = writeln!(s, "  CRASH {} @ {}: panicked with `{msg}`", r.fault_id, r.site);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IndirectKind;
    use epa_sandbox::policy::{Violation, ViolationKind};

    fn record(site: &str, fault: &str, violated: bool) -> FaultRecord {
        FaultRecord {
            site: site.into(),
            occurrence: 0,
            fault_id: fault.into(),
            category: EaiCategory::Indirect(IndirectKind::UserInput),
            description: String::new(),
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 1,
            cache_hit: false,
            pruned: false,
            violations: if violated {
                vec![Verdict::from_violation(Violation::new(
                    ViolationKind::Disclosure,
                    "R2",
                    "leak",
                    0,
                ))]
            } else {
                Vec::new()
            },
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            app: "demo".into(),
            total_sites: 8,
            perturbed_sites: 8,
            clean_violations: 0,
            records: vec![
                record("s1", "f1", false),
                record("s1", "f2", true),
                record("s2", "f3", false),
                record("s2", "f4", false),
            ],
        }
    }

    #[test]
    fn coverage_and_score() {
        let r = report();
        assert_eq!(r.injected(), 4);
        assert_eq!(r.violated(), 1);
        assert_eq!(r.fault_coverage().fraction(), Some(0.75));
        assert_eq!(r.interaction_coverage().fraction(), Some(1.0));
        assert!((r.vulnerability_score() - 0.25).abs() < 1e-9);
        assert_eq!(r.cache_hits(), 0);
        assert_eq!(r.runs_executed(), 4);
    }

    #[test]
    fn by_site_preserves_order() {
        let r = report();
        let per = r.by_site();
        assert_eq!(per[0], ("s1".to_string(), 2, 1));
        assert_eq!(per[1], ("s2".to_string(), 2, 0));
    }

    #[test]
    fn render_mentions_violation_with_evidence() {
        let text = report().render_text();
        assert!(
            text.contains("VIOLATION f2 @ s1: [disclosure] leak <- event #0"),
            "{text}"
        );
        assert!(text.contains("vulnerability score: 0.250"));
    }

    #[test]
    fn render_surfaces_panic_payloads() {
        let mut r = report();
        r.records[2].crashed = Some("index out of bounds".into());
        r.records[2].exit = None;
        let text = r.render_text();
        assert!(text.contains("CRASH f3 @ s2: panicked with `index out of bounds`"));
    }

    #[test]
    fn serde_round_trip() {
        let r = report();
        let json = serde_json::to_string(&r).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn empty_report_is_safe_zeroes() {
        let r = CampaignReport {
            app: "x".into(),
            total_sites: 0,
            perturbed_sites: 0,
            clean_violations: 0,
            records: vec![],
        };
        assert_eq!(r.vulnerability_score(), 0.0);
        assert_eq!(
            r.fault_coverage().value_or(1.0),
            1.0,
            "fault coverage stays vacuously true"
        );
        assert_eq!(r.interaction_coverage().fraction(), None);
    }

    #[test]
    fn zero_site_campaign_is_inadequate_not_safe() {
        use crate::coverage::{AdequacyRegion, AdequacyThresholds};
        let r = CampaignReport {
            app: "inert".into(),
            total_sites: 0,
            perturbed_sites: 0,
            clean_violations: 0,
            records: vec![],
        };
        let point = r.adequacy();
        assert!(point.vacuous);
        assert_eq!(
            point.region(AdequacyThresholds::default()),
            AdequacyRegion::Inadequate,
            "a campaign that tested nothing must never read as Safe"
        );
    }

    #[test]
    fn empty_report_renders_na_without_nan() {
        let r = CampaignReport {
            app: "x".into(),
            total_sites: 0,
            perturbed_sites: 0,
            clean_violations: 0,
            records: vec![],
        };
        let text = r.render_text();
        assert!(text.contains("interaction coverage: 0/0 (n/a)"), "{text}");
        assert!(text.contains("fault coverage: 0/0 (n/a)"), "{text}");
        assert!(text.contains("adequacy: (interaction=n/a, fault=1.00)"), "{text}");
        assert!(text.contains("inadequate"), "{text}");
        assert!(text.contains("vulnerability score: 0.000"), "{text}");
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn cache_hits_render_and_roll_up() {
        let mut r = report();
        r.records[2].cache_hit = true;
        assert_eq!(r.cache_hits(), 1);
        assert_eq!(r.runs_executed(), 3);
        let text = r.render_text();
        assert!(text.contains("runs executed: 3   replayed from cache: 1"), "{text}");
    }
}
