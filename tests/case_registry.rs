//! Integration: the §4.2 Windows NT registry case study.

use epa::apps::fontpurge::{font_key, FontPurge, FontPurgeFixed, FONT_KEYS};
use epa::apps::ntlogon::{logon_key, NtLogon, NtLogonFixed, LOGON_KEYS};
use epa::apps::worlds;
use epa::core::campaign::run_once;
use epa::core::engine::Session;
use epa::sandbox::policy::ViolationKind;

#[test]
fn the_nt_world_has_29_unprotected_keys() {
    let setup = worlds::fontpurge_world();
    assert_eq!(
        setup.world.registry.unprotected_keys().len(),
        29,
        "paper: 29 unprotected keys"
    );
}

#[test]
fn nine_exercised_keys_all_exploitable() {
    let r = epa_bench::registry_42();
    assert_eq!(r.unprotected, 29);
    assert_eq!(r.exercised, 9, "paper: 9 keys exercised by the tested modules");
    assert_eq!(r.exploited, 9, "paper: all 9 exploited");
}

#[test]
fn font_value_swap_deletes_the_critical_file() {
    let mut setup = worlds::fontpurge_world();
    setup
        .world
        .registry
        .god_set_value(&font_key(0), "Path", "/winnt/system.ini");
    let out = run_once(&setup, &FontPurge, None);
    assert!(out
        .violations
        .iter()
        .any(|v| v.kind == ViolationKind::TaintedPrivilegedOp));
    assert!(!out.os.fs.exists("/winnt/system.ini"));
}

#[test]
fn font_value_swap_can_also_take_the_sam() {
    let mut setup = worlds::fontpurge_world();
    setup
        .world
        .registry
        .god_set_value(&font_key(3), "Path", "/winnt/repair/sam");
    let out = run_once(&setup, &FontPurge, None);
    assert!(!out.violations.is_empty());
    assert!(!out.os.fs.exists("/winnt/repair/sam"));
}

#[test]
fn fixed_fontpurge_survives_every_key_perturbation() {
    let report = Session::from_setup(worlds::fontpurge_world()).execute(&FontPurgeFixed);
    assert_eq!(report.violated(), 0, "{:#?}", report.violations().collect::<Vec<_>>());
    assert!(report.injected() >= FONT_KEYS * 5, "all key faults still injected");
}

#[test]
fn logon_profile_trust_flaw_is_found_by_the_campaign() {
    let report = Session::from_setup(worlds::ntlogon_world()).execute(&NtLogon);
    assert_eq!(report.clean_violations, 0);
    let profile_viol = report
        .records
        .iter()
        .find(|r| r.site == "ntlogon:read_profiledir" && !r.tolerated())
        .expect("the ProfileDir key must be exploitable");
    assert!(
        profile_viol.fault_id.contains("untrusted-dir"),
        "{}",
        profile_viol.fault_id
    );
}

#[test]
fn every_logon_key_is_exploitable_and_the_fix_holds() {
    let setup = worlds::ntlogon_world();
    let session = Session::from_setup(setup);
    let report = session.execute(&NtLogon);
    for name in LOGON_KEYS {
        let site = format!("ntlogon:read_{}", name.to_lowercase());
        assert!(
            report.records.iter().any(|r| r.site == site && !r.tolerated()),
            "{name} should be exploitable"
        );
        assert!(session.world().registry.key(&logon_key(name)).is_some());
    }
    let fixed = session.execute(&NtLogonFixed);
    assert_eq!(fixed.violated(), 0, "{:#?}", fixed.violations().collect::<Vec<_>>());
}

#[test]
fn helpfile_key_discloses_the_sam_when_swapped() {
    let mut setup = worlds::ntlogon_world();
    setup
        .world
        .registry
        .god_set_value(&logon_key("HelpFile"), "Path", "/winnt/repair/sam");
    let out = run_once(&setup, &NtLogon, None);
    assert!(out.violations.iter().any(|v| v.kind == ViolationKind::Disclosure));
    let stdout = out.os.stdout_text(out.pid.unwrap());
    assert!(stdout.contains("NTHASH"), "the hash really reaches the user: {stdout}");
}
