//! Persistent result-store bench: cold-vs-warm suite wall-clock and
//! cross-process replay correctness, written to `BENCH_store.json`.
//!
//! `main` runs the eight-application standard suite twice against the same
//! store directory through *separate* `ResultCache::persistent` handles —
//! the cross-process shape: the warm pass shares nothing in memory with the
//! cold pass, only the on-disk entries and the campaign manifest. Gates:
//!
//! * the warm pass executes **zero** runs (every job replays from disk);
//! * warm verdicts are byte-identical to live execution (the `cache_hit`
//!   provenance flag is the only permitted difference);
//! * the campaign manifest written by the cold pass verifies complete
//!   against the store and is reproduced bit-for-bit by the warm pass;
//! * warm wall-clock beats cold wall-clock (replay must not cost more
//!   than execution).
//!
//! The same replay contract is then property-tested over randomized corpus
//! worlds (`synthesize_one` + `ScriptedApp`), where world shapes, fault
//! plans and verdicts vary per scenario instead of being the eight pinned
//! case studies.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use epa_apps::ScriptedApp;
use epa_bench::experiments;
use epa_core::corpus::{synthesize_one, DEFAULT_CORPUS_SEED};
use epa_core::engine::{ResultCache, Session};
use epa_core::report::CampaignReport;
use epa_core::store::DiskStore;

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> u128 {
    let _ = std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_nanos()
}

/// An empty per-invocation store directory under the system temp dir.
fn fresh_store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("epa-bench-store-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A cache over a fresh persistent handle — what a new process would open.
fn persistent_cache(dir: &Path) -> ResultCache {
    ResultCache::persistent(dir).expect("the bench store directory opens")
}

/// One comparable line per record: identity plus the serialized verdicts.
/// `cache_hit` is provenance, not a verdict, and is deliberately excluded —
/// it is the one field warm replay is allowed to change.
fn campaign_verdicts(app: &str, report: &CampaignReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for rec in &report.records {
        let verdicts = serde_json::to_string(&rec.violations).expect("verdicts serialize");
        let _ = writeln!(out, "{app}|{}|{}|{}|{verdicts}", rec.site, rec.occurrence, rec.fault_id);
    }
    out
}

/// The whole-suite verdict set, in report order.
fn suite_verdicts(report: &epa_core::engine::SuiteReport) -> String {
    report.reports.iter().map(|r| campaign_verdicts(&r.app, r)).collect()
}

/// The replay contract over randomized corpus worlds: for each synthesized
/// scenario, a cold campaign populates the store and a warm campaign
/// through a fresh handle must execute zero runs with byte-identical
/// verdicts. Returns `(scenarios, total injected)`.
fn replay_randomized_worlds(dir: &Path, scenarios: usize) -> usize {
    let mut injected = 0usize;
    for index in 0..scenarios {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, index);
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        let app = ScriptedApp::for_scenario(&scenario);
        let cold = Session::from_setup(setup.clone())
            .with_result_cache(persistent_cache(dir))
            .execute(&app);
        let warm = Session::from_setup(setup)
            .with_result_cache(persistent_cache(dir))
            .execute(&app);
        assert_eq!(
            warm.runs_executed(),
            0,
            "corpus scenario {index}: a warm campaign over a populated store must execute nothing"
        );
        assert_eq!(
            campaign_verdicts(&scenario.id, &cold),
            campaign_verdicts(&scenario.id, &warm),
            "corpus scenario {index}: warm verdicts must be byte-identical to live execution"
        );
        injected += cold.injected();
    }
    injected
}

/// Measures the cold (execute + persist) suite against the warm
/// (replay-from-disk) suite over the same store directory, asserts the
/// replay-correctness gates, and writes `BENCH_store.json`.
fn emit_store_bench_json() {
    let dir = fresh_store_dir("suite");

    // Deterministic passes, outside the timed region. Two independent
    // persistent handles = the two-process shape.
    let cold_cache = persistent_cache(&dir);
    let (cold, manifest) = experiments::suite_with_cache(cold_cache.clone());
    manifest.write_to(&dir).expect("the campaign manifest writes");
    let warm_cache = persistent_cache(&dir);
    let (warm, warm_manifest) = experiments::suite_with_cache(warm_cache.clone());

    assert_eq!(
        warm.total_runs_executed(),
        0,
        "the warm suite must replay every job from the store"
    );
    assert_eq!(cold.total_injected(), warm.total_injected());
    assert_eq!(cold.total_violated(), warm.total_violated());
    assert_eq!(
        suite_verdicts(&cold),
        suite_verdicts(&warm),
        "warm suite verdicts must be byte-identical to live execution"
    );
    assert_eq!(
        manifest, warm_manifest,
        "the campaign manifest must be reproducible from a warm run"
    );
    let warm_store_hits = warm_cache.stats().store_hits;
    assert!(
        warm_store_hits > 0,
        "the warm pass must be served by the persistent backend, not process memory"
    );

    // The manifest must account for every store key it promises.
    let store = DiskStore::open(&dir).expect("the populated store re-opens");
    let check = manifest.verify(&store);
    assert!(
        check.is_complete(),
        "the cold manifest must verify complete against the store ({} missing)",
        check.missing.len()
    );
    let entries = store.stats().entries;
    drop(store);

    // Timed region: each cold sample starts from an empty directory; each
    // warm sample opens a fresh handle over the populated one.
    let samples = 9;
    let cold_ns = median_ns(samples, || {
        let d = fresh_store_dir("suite-cold");
        let (report, m) = experiments::suite_with_cache(persistent_cache(&d));
        let _ = m.write_to(&d);
        report.total_runs_executed()
    });
    let warm_ns = median_ns(samples, || {
        experiments::suite_with_cache(persistent_cache(&dir))
            .0
            .total_runs_executed()
    });
    let speedup = cold_ns as f64 / warm_ns.max(1) as f64;

    let corpus_scenarios = 8;
    let corpus_dir = fresh_store_dir("corpus");
    let corpus_injected = replay_randomized_worlds(&corpus_dir, corpus_scenarios);

    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \"suite_apps\": {},\n  \"samples\": {samples},\n  \
         \"cold_suite_ns\": {cold_ns},\n  \"warm_suite_ns\": {warm_ns},\n  \
         \"cold_over_warm\": {speedup:.2},\n  \"cold_runs_executed\": {},\n  \
         \"warm_runs_executed\": {},\n  \"warm_store_hits\": {warm_store_hits},\n  \
         \"store_entries\": {entries},\n  \"manifest_keys\": {},\n  \
         \"verdict_sets_identical\": true,\n  \"manifest_complete\": true,\n  \
         \"corpus_scenarios\": {corpus_scenarios},\n  \"corpus_injected\": {corpus_injected},\n  \
         \"corpus_warm_runs_executed\": 0\n}}\n",
        cold.reports.len(),
        cold.total_runs_executed(),
        warm.total_runs_executed(),
        manifest.store_keys(),
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_store.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (warm replay {speedup:.2}x faster than cold; {warm_store_hits} disk replays, {entries} entries)",
            path.display()
        ),
        Err(e) => eprintln!("BENCH_store.json not written: {e}"),
    }

    // The wall-clock gate: replaying a suite from the store must beat
    // re-executing it, or persistence is pure overhead.
    assert!(
        warm_ns < cold_ns,
        "warm suite replay must be faster than cold execution \
         (warm {warm_ns}ns >= cold {cold_ns}ns)"
    );

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(fresh_store_dir("suite-cold"));
    let _ = std::fs::remove_dir_all(&corpus_dir);
}

fn main() {
    emit_store_bench_json();
}
