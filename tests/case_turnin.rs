//! Integration: the §4.1 turnin case study — the paper's headline numbers
//! and both published exploits.

use epa::apps::{worlds, Turnin, TurninFixed};
use epa::core::campaign::run_once;
use epa::core::engine::Session;
use epa::sandbox::policy::ViolationKind;

#[test]
fn eight_points_fortyone_perturbations_nine_violations() {
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup).execute(&Turnin);
    assert_eq!(report.clean_violations, 0, "clean run must be violation-free");
    assert_eq!(report.total_sites, 8, "paper: 8 interaction places");
    assert_eq!(report.injected(), 41, "paper: 41 environment perturbations");
    assert_eq!(
        report.violated(),
        9,
        "paper: 9 perturbations lead to security violation"
    );
}

#[test]
fn the_published_exploits_are_among_the_violations() {
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup).execute(&Turnin);
    let ids: Vec<&str> = report.violations().map(|r| r.fault_id.as_str()).collect();
    // Exploit 1: the Projlist permission/symlink disclosure.
    assert!(
        ids.contains(&"direct:fs:permission@/home/ta/submit/Projlist"),
        "{ids:?}"
    );
    assert!(ids.contains(&"direct:fs:symlink@/home/ta/submit/Projlist"), "{ids:?}");
    // Exploit 2: the `../` member name.
    assert!(ids.contains(&"indirect:user-file-name:dotdot"), "{ids:?}");
}

#[test]
fn violation_kinds_are_as_analyzed() {
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup).execute(&Turnin);
    let mut disclosures = 0;
    let mut integrity = 0;
    let mut execs = 0;
    let mut tainted = 0;
    for r in report.violations() {
        for v in &r.violations {
            match v.kind {
                ViolationKind::Disclosure => disclosures += 1,
                ViolationKind::IntegrityWrite => integrity += 1,
                ViolationKind::UntrustedExec => execs += 1,
                ViolationKind::TaintedPrivilegedOp => tainted += 1,
                other => panic!("unexpected violation kind {other:?}"),
            }
        }
    }
    assert_eq!(disclosures, 3, "cf symlink + Projlist permission + Projlist symlink");
    assert_eq!(integrity, 2, "chdir symlink + ../ member name");
    assert_eq!(execs, 3, "PATH insertion + tar ownership + tar symlink");
    assert_eq!(tainted, 1, "attacker-owned config redirects the copy");
}

#[test]
fn shadow_exploit_really_prints_the_shadow_file() {
    let mut setup = worlds::turnin_world();
    setup
        .world
        .fs
        .god_symlink("/home/ta/submit/Projlist", "/etc/shadow")
        .unwrap();
    let out = run_once(&setup, &Turnin, None);
    let stdout = out.os.stdout_text(out.pid.unwrap());
    assert!(
        stdout.contains("root:HASH0x7f"),
        "the student reads the shadow file: {stdout}"
    );
    assert!(out.violations.iter().any(|v| v.kind == ViolationKind::Disclosure));
}

#[test]
fn dotdot_exploit_really_overwrites_the_login_file() {
    let mut setup = worlds::turnin_world();
    setup.args = vec![
        "-c".into(),
        "cs390".into(),
        "-p".into(),
        "proj1".into(),
        "../.login".into(),
    ];
    let out = run_once(&setup, &Turnin, None);
    assert!(out.violations.iter().any(|v| v.kind == ViolationKind::IntegrityWrite));
    let login = out.os.fs.god_read("/home/ta/.login").unwrap().text();
    assert!(login.contains("TAR-ARCHIVE"), "TA's .login replaced: {login}");
}

#[test]
fn fixed_turnin_tolerates_all_41_faults() {
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup).execute(&TurninFixed);
    assert_eq!(report.total_sites, 8, "the fix does not change the interaction surface");
    assert_eq!(report.injected(), 41);
    assert_eq!(report.violated(), 0, "{:#?}", report.violations().collect::<Vec<_>>());
    assert_eq!(report.fault_coverage().fraction(), Some(1.0));
}

#[test]
fn fixed_turnin_still_works_for_honest_students() {
    let setup = worlds::turnin_world();
    let out = run_once(&setup, &TurninFixed, None);
    assert_eq!(out.exit, Some(0));
    assert!(out.os.fs.exists("/home/ta/submit/hw1.c"), "the submission still lands");
}

#[test]
fn violations_per_site_match_the_analysis() {
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup).execute(&Turnin);
    let per_site: Vec<(String, usize, usize)> = report.by_site();
    let expect = [
        ("turnin:read_args", 5, 1),
        ("turnin:getenv_path", 5, 1),
        ("turnin:read_config", 9, 2),
        ("turnin:read_projlist", 5, 2),
        ("turnin:chdir_submit", 4, 1),
        ("turnin:mktemp", 4, 0),
        ("turnin:exec_tar", 5, 2),
        ("turnin:copy_dest", 4, 0),
    ];
    for (site, injected, violated) in expect {
        let row = per_site
            .iter()
            .find(|(s, _, _)| s == site)
            .unwrap_or_else(|| panic!("missing {site}"));
        assert_eq!((row.1, row.2), (injected, violated), "{site}");
    }
}
