//! # epa-sandbox — the simulated operating-system substrate
//!
//! An in-memory UNIX-like (plus NT-registry) environment purpose-built for
//! **environment fault injection**, the security-testing technique of
//! Du & Mathur, *Testing for Software Vulnerability Using Environment
//! Perturbation* (DSN 2000).
//!
//! The paper's methodology perturbs the *environment* of a program — file
//! attributes, `PATH`, registry keys, network messages — at the points where
//! the program interacts with it, and asks a security-policy oracle whether
//! the program tolerated the perturbation. This crate supplies everything
//! that sentence needs:
//!
//! * [`fs`] — a virtual file system with permissions, ownership, symlinks,
//!   sticky bits, and physical `..`/symlink resolution;
//! * [`cred`]/[`process`] — users and SUID process semantics;
//! * [`net`] — messages with authenticity, protocol scripts, DNS, services;
//! * [`registry`] — an NT-style registry with per-key ACLs;
//! * [`syscall`]/[`os`] — the traced, hookable interaction layer;
//! * [`audit`]/[`policy`] — the executable security-policy oracle;
//! * [`buffer`] — the memory-safety (buffer-overflow) model;
//! * [`app`] — the trait model applications implement.
//!
//! # Quick example
//!
//! ```
//! use std::collections::BTreeMap;
//! use epa_sandbox::cred::{Gid, Uid};
//! use epa_sandbox::mode::Mode;
//! use epa_sandbox::os::Os;
//! use epa_sandbox::policy::OracleSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut os = Os::new();
//! os.users.add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
//! os.fs.mkdir_p("/var/spool", Uid::ROOT, Gid::ROOT, Mode::new(0o755))?;
//! os.fs.put_file("/usr/bin/lpr", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))?;
//!
//! // Subscribe the detector pipeline, then spawn a SUID-root process for
//! // an unprivileged invoker and write a spool file.
//! os.audit.attach_oracle(OracleSet::standard());
//! let pid = os.spawn(os.scenario.invoker, Some("/usr/bin/lpr"), vec![], BTreeMap::new(), "/")?;
//! os.sys_write_file(pid, "lpr:create", "/var/spool/job", "data", 0o660)?;
//!
//! // The oracle finds nothing wrong with the unperturbed run.
//! let verdicts = os.audit.detach_oracle().expect("attached above").finish();
//! assert!(verdicts.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod audit;
pub mod buffer;
pub mod cred;
pub mod data;
pub mod error;
pub mod fs;
pub mod intern;
pub mod mode;
pub mod net;
pub mod os;
pub mod path;
pub mod policy;
pub mod process;
pub mod registry;
pub mod syscall;
pub mod trace;

pub use app::Application;
pub use cred::{Credentials, Gid, Uid};
pub use data::{Data, Label, PathArg};
pub use error::{Errno, SysError, SysResult};
pub use intern::PathSym;
pub use mode::{Access, Mode};
pub use os::{Os, ScenarioMeta};
pub use policy::{Detector, Evidence, InvariantSpec, OracleSet, PolicyEngine, Verdict, Violation, ViolationKind};
pub use process::Pid;
pub use syscall::{InteractionRef, Interceptor, SysReturn, Syscall};
pub use trace::{InputSemantic, ObjectRef, OpKind, SiteId};
