//! Integration: the §5 comparison — environment perturbation vs Fuzz vs AVA.

use epa::apps::{worlds, Fingerd, Turnin};
use epa::core::baselines::ava::{run_ava, AvaOptions};
use epa::core::baselines::fuzz::{run_fuzz, FuzzOptions, FuzzTarget};
use epa_bench::comparison;

#[test]
fn epa_surfaces_rules_the_baselines_miss_on_every_app() {
    let c = comparison();
    assert_eq!(c.rows.len(), 3);
    for row in &c.rows {
        assert!(
            row.epa_rules.len() > row.fuzz_rules.len(),
            "{}: EPA ({:?}) must beat Fuzz ({:?})",
            row.app,
            row.epa_rules,
            row.fuzz_rules
        );
        assert!(
            row.epa_rules.len() > row.ava_rules.len(),
            "{}: EPA ({:?}) must beat AVA ({:?})",
            row.app,
            row.epa_rules,
            row.ava_rules
        );
        let epa_only: Vec<_> = row
            .epa_rules
            .iter()
            .filter(|r| !row.fuzz_rules.contains(*r) && !row.ava_rules.contains(*r))
            .collect();
        assert!(!epa_only.is_empty(), "{}: some flaw only EPA finds", row.app);
    }
}

#[test]
fn fuzz_still_finds_the_classic_overflow() {
    // Fuzz's historic strength must survive in the model: random oversized
    // packets trip fingerd's unchecked copy.
    let setup = worlds::fingerd_world();
    let rep = run_fuzz(
        &setup,
        &Fingerd,
        &FuzzOptions {
            runs: 50,
            seed: 3,
            max_len: 6000,
            target: FuzzTarget::Net {
                port: 79,
                from: "trusted.cs.example.edu".into(),
            },
        },
    );
    assert!(
        rep.distinct_rules().contains("R4-memory-safety"),
        "{:?}",
        rep.distinct_rules()
    );
}

#[test]
fn no_baseline_reaches_turnins_environment_flaws() {
    let setup = worlds::turnin_world();
    let fuzz = run_fuzz(
        &setup,
        &Turnin,
        &FuzzOptions {
            runs: 80,
            seed: 11,
            max_len: 4096,
            target: FuzzTarget::Args,
        },
    );
    let ava = run_ava(
        &setup,
        &Turnin,
        &AvaOptions {
            runs: 80,
            seed: 11,
            intensity: 0.9,
        },
    );
    for rules in [fuzz.distinct_rules(), ava.distinct_rules()] {
        assert!(
            !rules.contains("R6-untrusted-exec"),
            "PATH/tar flaws need environment perturbation: {rules:?}"
        );
        assert!(
            !rules.contains("R2-confidentiality"),
            "Projlist disclosure needs file-attribute perturbation: {rules:?}"
        );
    }
}

#[test]
fn baselines_are_deterministic_given_seed() {
    let setup = worlds::turnin_world();
    let o = FuzzOptions {
        runs: 10,
        seed: 42,
        max_len: 512,
        target: FuzzTarget::Args,
    };
    assert_eq!(run_fuzz(&setup, &Turnin, &o), run_fuzz(&setup, &Turnin, &o));
    let a = AvaOptions {
        runs: 10,
        seed: 42,
        intensity: 0.5,
    };
    assert_eq!(run_ava(&setup, &Turnin, &a), run_ava(&setup, &Turnin, &a));
}
