//! # epa-apps — the model applications and worlds of the paper's case studies
//!
//! Every application the paper tests (plus the breadth the EAI model
//! implies), reimplemented against the [`epa_sandbox`] syscall API with the
//! published flaws seeded, and a `*Fixed` variant demonstrating the repairs:
//!
//! | module | paper section | flaw family |
//! |---|---|---|
//! | [`lpr`] | §3.4 | naive `creat` of the spool file |
//! | [`turnin`] | §4.1 | config/list trust, `../` member names, PATH |
//! | [`fontpurge`] | §4.2 | privileged delete named by an unprotected registry key |
//! | [`ntlogon`] | §4.2 | profile-directory / script trust at logon |
//! | [`fingerd`] | §5 (Fuzz discussion) | overflow, fail-open allowlist, authenticity |
//! | [`authd`] | Table 6 network rows | protocol-step and authenticity handling |
//! | [`mailnotify`] | Table 6 process rows | mailbox integrity, IPC trust, PATH |
//! | [`backupd`] | Table 5 permission-mask row | environment-supplied creation mask |
//!
//! Every module exports its world declaratively as an
//! [`epa_core::engine::WorldSpec`] (`lpr::spec()`, `turnin::spec()`, …);
//! [`worlds`] holds the shared base builders plus materializing `*_world()`
//! shims for the pre-engine [`epa_core::campaign::TestSetup`] API, and
//! [`standard_suite`] registers all eight vulnerable applications on one
//! [`epa_core::engine::Suite`] for batch execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod authd;
pub mod backupd;
pub mod fingerd;
pub mod fontpurge;
pub mod lpr;
pub mod mailnotify;
pub mod ntlogon;
pub mod scripted;
pub mod turnin;
pub mod worlds;

pub use authd::{Authd, AuthdFixed};
pub use backupd::{Backupd, BackupdFixed};
pub use fingerd::{Fingerd, FingerdFixed};
pub use fontpurge::{FontPurge, FontPurgeFixed};
pub use lpr::{Lpr, LprFixed};
pub use mailnotify::{MailNotify, MailNotifyFixed};
pub use ntlogon::{NtLogon, NtLogonFixed};
pub use scripted::ScriptedApp;
pub use turnin::{Turnin, TurninFixed};

/// Shared assertions for the per-application oracle tests: every verdict
/// must carry an evidence chain whose indices stay inside the run's audit
/// log and whose snapshots match the implicated events.
#[cfg(test)]
pub(crate) fn assert_evidence_in_bounds(out: &epa_core::campaign::RunOutcome) {
    assert!(!out.violations.is_empty(), "expected at least one verdict");
    for v in &out.violations {
        assert!(!v.evidence.is_empty(), "verdict `{}` carries no evidence", v.rule);
        for item in &v.evidence.items {
            assert!(
                item.index < out.os.audit.len(),
                "evidence index {} out of bounds (log has {} events)",
                item.index,
                out.os.audit.len()
            );
            assert_eq!(
                item.summary,
                out.os.audit.events()[item.index].describe(),
                "evidence snapshot must match the implicated event"
            );
        }
    }
}

/// A boxed application ready for suite registration.
pub type BoxedApp = Box<dyn epa_sandbox::app::Application + Send + Sync>;

/// All eight vulnerable case-study applications paired with their world
/// specs, in the canonical suite order — the single source both
/// [`standard_suite`] and the static analyzer's lint/bench sweeps draw
/// from, so "the standard suite" means the same eight worlds everywhere.
pub fn standard_apps() -> Vec<(BoxedApp, epa_core::engine::WorldSpec)> {
    vec![
        (Box::new(Lpr) as BoxedApp, lpr::spec()),
        (Box::new(Turnin), turnin::spec()),
        (Box::new(FontPurge), fontpurge::spec()),
        (Box::new(NtLogon), ntlogon::spec()),
        (Box::new(Fingerd), fingerd::spec()),
        (Box::new(Authd), authd::spec()),
        (Box::new(MailNotify), mailnotify::spec()),
        (Box::new(Backupd), backupd::spec()),
    ]
}

/// All eight vulnerable case-study applications with their worlds,
/// registered on one [`epa_core::engine::Suite`] ready to execute as a
/// batch.
///
/// # Errors
///
/// A [`epa_core::engine::SpecError`] if any world spec fails to
/// materialize (the specs are tested, so this is effectively infallible).
pub fn standard_suite() -> Result<epa_core::engine::Suite, epa_core::engine::SpecError> {
    standard_suite_with_options(epa_core::campaign::CampaignOptions::default())
}

/// As [`standard_suite`], with explicit [`epa_core::campaign::CampaignOptions`]
/// installed on every registered session — how the planner benches build
/// the exhaustive (`dedup: false`) baseline and how callers opt into
/// budgeted campaigns across the whole suite.
///
/// # Errors
///
/// A [`epa_core::engine::SpecError`] if any world spec fails to
/// materialize.
pub fn standard_suite_with_options(
    options: epa_core::campaign::CampaignOptions,
) -> Result<epa_core::engine::Suite, epa_core::engine::SpecError> {
    let engine = epa_core::engine::Engine::new().with_options(options);
    engine.suite_of(standard_apps())
}
