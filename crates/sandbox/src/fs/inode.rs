//! Inodes: the objects the virtual file system stores.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::cred::{Gid, Uid};
use crate::data::Data;
use crate::mode::Mode;

/// Identifier of an inode within a [`crate::fs::Vfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InodeId(pub u64);

impl fmt::Display for InodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ino:{}", self.0)
    }
}

/// Oracle-side tags attached to files and directories by the world builder.
///
/// Tags express the *security meaning* of an object so the policy oracle can
/// judge outcomes: they are never consulted by application logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FileTag {
    /// Contents are confidential; reads attach a `Secret` label to the data.
    Secret,
    /// Integrity-critical object (e.g. `/etc/passwd`, a user's `.login`):
    /// modification on behalf of a user who could not write it is a violation.
    Protected,
    /// System-critical object whose *deletion or replacement* breaks the
    /// system (the NT case study's system configuration files).
    Critical,
}

impl fmt::Display for FileTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileTag::Secret => "secret",
            FileTag::Protected => "protected",
            FileTag::Critical => "critical",
        };
        f.write_str(s)
    }
}

/// What an inode is.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileKind {
    /// A regular file and its (labeled) content.
    Regular(Data),
    /// A directory mapping names to child inodes.
    Directory(BTreeMap<String, InodeId>),
    /// A symbolic link and its target path text.
    Symlink(String),
}

/// An inode: kind plus ownership, mode and oracle tags.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Inode {
    /// This inode's id.
    pub id: InodeId,
    /// What it is.
    pub kind: FileKind,
    /// Owning user.
    pub owner: Uid,
    /// Owning group.
    pub group: Gid,
    /// Permission bits.
    pub mode: Mode,
    /// Oracle tags (see [`FileTag`]).
    pub tags: BTreeSet<FileTag>,
}

impl Inode {
    /// True for directories.
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, FileKind::Directory(_))
    }

    /// True for regular files.
    pub fn is_file(&self) -> bool {
        matches!(self.kind, FileKind::Regular(_))
    }

    /// True for symbolic links.
    pub fn is_symlink(&self) -> bool {
        matches!(self.kind, FileKind::Symlink(_))
    }

    /// Size in bytes (0 for directories, target length for symlinks).
    pub fn size(&self) -> usize {
        match &self.kind {
            FileKind::Regular(d) => d.len(),
            FileKind::Directory(_) => 0,
            FileKind::Symlink(t) => t.len(),
        }
    }

    /// Directory entries, or an error-friendly `None` for non-directories.
    pub fn entries(&self) -> Option<&BTreeMap<String, InodeId>> {
        match &self.kind {
            FileKind::Directory(e) => Some(e),
            _ => None,
        }
    }

    /// Mutable directory entries.
    pub fn entries_mut(&mut self) -> Option<&mut BTreeMap<String, InodeId>> {
        match &mut self.kind {
            FileKind::Directory(e) => Some(e),
            _ => None,
        }
    }
}

/// File type reported by `stat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl fmt::Display for FileType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FileType::Regular => "regular",
            FileType::Directory => "directory",
            FileType::Symlink => "symlink",
        };
        f.write_str(s)
    }
}

/// Metadata snapshot returned by `stat`/`lstat`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stat {
    /// Inode id.
    pub id: InodeId,
    /// File type.
    pub file_type: FileType,
    /// Owner.
    pub owner: Uid,
    /// Group.
    pub group: Gid,
    /// Mode bits.
    pub mode: Mode,
    /// Size in bytes.
    pub size: usize,
    /// Oracle tags.
    pub tags: BTreeSet<FileTag>,
}

impl Stat {
    /// Builds a `Stat` from an inode.
    pub fn of(inode: &Inode) -> Stat {
        Stat {
            id: inode.id,
            file_type: match inode.kind {
                FileKind::Regular(_) => FileType::Regular,
                FileKind::Directory(_) => FileType::Directory,
                FileKind::Symlink(_) => FileType::Symlink,
            },
            owner: inode.owner,
            group: inode.group,
            mode: inode.mode,
            size: inode.size(),
            tags: inode.tags.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(id: u64) -> Inode {
        Inode {
            id: InodeId(id),
            kind: FileKind::Regular(Data::from("hello")),
            owner: Uid(1),
            group: Gid(1),
            mode: Mode::new(0o644),
            tags: BTreeSet::new(),
        }
    }

    #[test]
    fn kind_predicates() {
        let f = file(1);
        assert!(f.is_file() && !f.is_dir() && !f.is_symlink());
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn stat_reflects_inode() {
        let mut f = file(2);
        f.tags.insert(FileTag::Secret);
        let st = Stat::of(&f);
        assert_eq!(st.file_type, FileType::Regular);
        assert_eq!(st.size, 5);
        assert!(st.tags.contains(&FileTag::Secret));
    }

    #[test]
    fn directory_entries_access() {
        let mut d = Inode {
            id: InodeId(3),
            kind: FileKind::Directory(BTreeMap::new()),
            owner: Uid(0),
            group: Gid(0),
            mode: Mode::new(0o755),
            tags: BTreeSet::new(),
        };
        d.entries_mut().unwrap().insert("a".into(), InodeId(4));
        assert_eq!(d.entries().unwrap().len(), 1);
        assert!(file(9).entries().is_none());
    }
}
