//! # epa-bench — the reproduction harness
//!
//! One runner per table, figure and case study of the paper, shared by the
//! `reproduce` binary, the `paper_tables` bench target, and the integration
//! tests. Every runner returns a structured result plus a printable
//! rendering in the paper's layout, so `cargo run -p epa-bench --bin
//! reproduce -- all` regenerates the whole evaluation section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod experiments;

pub use experiments::*;
