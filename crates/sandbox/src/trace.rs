//! Execution traces of environment–application interaction points.
//!
//! The paper's methodology (§3.3, step 3) walks "each interaction point in
//! the execution trace". The sandbox builds that trace automatically: every
//! syscall an application issues is stamped with a static [`SiteId`] (the
//! source location of the interaction in the application), the kind of
//! operation, the environment object it touches, and — when the application
//! receives an input there — the *semantics* of that input, which selects
//! the applicable Table 5 fault patterns.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A static interaction site in an application, e.g. `"lpr:create_spool"`.
///
/// Sites are the unit of *interaction coverage*: the campaign perturbs
/// sites, and coverage is sites-perturbed over sites-observed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub String);

impl SiteId {
    /// Creates a site id.
    pub fn new(label: impl Into<String>) -> Self {
        SiteId(label.into())
    }

    /// The label text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SiteId {
    fn from(s: &str) -> Self {
        SiteId::new(s)
    }
}

/// The kind of operation performed at an interaction point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Read an environment variable.
    Getenv,
    /// Read a command-line argument.
    ReadArg,
    /// Bind an input value to an internal entity (post-parse).
    InputBind,
    /// Read a file's content.
    ReadFile,
    /// Create-or-truncate a file (`creat`).
    CreateFile,
    /// Exclusive creation (`O_CREAT|O_EXCL`).
    CreateExcl,
    /// Overwrite/append to a file.
    WriteFile,
    /// Remove a file.
    Delete,
    /// Make a directory.
    Mkdir,
    /// Change working directory.
    Chdir,
    /// `stat`/`lstat`.
    Stat,
    /// Create a symlink.
    Symlink,
    /// Read a symlink target.
    Readlink,
    /// Rename.
    Rename,
    /// Change mode bits.
    Chmod,
    /// Change ownership.
    Chown,
    /// List a directory.
    ListDir,
    /// Execute a program.
    Exec,
    /// Write to stdout.
    Print,
    /// Read a registry value.
    RegRead,
    /// Write a registry value.
    RegWrite,
    /// Delete a registry key/value.
    RegDelete,
    /// Connect to a network service.
    NetConnect,
    /// Send a network message.
    NetSend,
    /// Receive a network message.
    NetRecv,
    /// Resolve a host name.
    DnsResolve,
    /// Receive an IPC message from another process.
    ProcRecv,
}

impl OpKind {
    /// True when the operation *receives* data from the environment —
    /// the precondition for indirect fault injection (paper step 3).
    pub fn is_input(self) -> bool {
        matches!(
            self,
            OpKind::Getenv
                | OpKind::ReadArg
                | OpKind::InputBind
                | OpKind::ReadFile
                | OpKind::RegRead
                | OpKind::NetRecv
                | OpKind::DnsResolve
                | OpKind::ProcRecv
                | OpKind::ListDir
                | OpKind::Readlink
        )
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The environment object an interaction touches.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObjectRef {
    /// A file-system object (path as named by the application).
    File(String),
    /// An environment variable.
    EnvVar(String),
    /// The argument vector.
    Args,
    /// A registry value (`key`, `value`).
    RegValue(String, String),
    /// A network port on this host.
    NetPort(u16),
    /// A remote host.
    Host(String),
    /// A remote service (`host`, `port`).
    Service(String, u16),
    /// An IPC channel.
    IpcChannel(String),
    /// The terminal.
    Terminal,
    /// An internal entity being initialized from environment input
    /// (post-parse binding; named for diagnostics).
    Value(String),
}

impl fmt::Display for ObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectRef::File(p) => write!(f, "file:{p}"),
            ObjectRef::EnvVar(n) => write!(f, "env:{n}"),
            ObjectRef::Args => f.write_str("argv"),
            ObjectRef::RegValue(k, v) => write!(f, "reg:{k}\\{v}"),
            ObjectRef::NetPort(p) => write!(f, "port:{p}"),
            ObjectRef::Host(h) => write!(f, "host:{h}"),
            ObjectRef::Service(h, p) => write!(f, "service:{h}:{p}"),
            ObjectRef::IpcChannel(c) => write!(f, "ipc:{c}"),
            ObjectRef::Terminal => f.write_str("tty"),
            ObjectRef::Value(v) => write!(f, "value:{v}"),
        }
    }
}

/// The semantics of an input an application receives — the paper's Table 5
/// key. Semantics, not randomness, decide which fault patterns apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InputSemantic {
    /// A file or directory name supplied by the user (argv, stdin).
    UserFileName,
    /// A command (or command fragment) supplied by the user.
    UserCommand,
    /// An execution/library search path list (`PATH`, `LD_LIBRARY_PATH`).
    EnvPathList,
    /// A permission mask (`UMASK`-style).
    EnvPermMask,
    /// A generic environment-variable value.
    EnvValue,
    /// A file/directory name read from file-system content (config files).
    FsFileName,
    /// A file extension read from file-system content.
    FsFileExtension,
    /// An IP address received from the network.
    NetIpAddr,
    /// A raw network packet.
    NetPacket,
    /// A host name received from the network.
    NetHostName,
    /// A DNS reply.
    NetDnsReply,
    /// A message from another process.
    ProcMessage,
    /// Input with no security-relevant structure.
    Opaque,
}

impl fmt::Display for InputSemantic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One recorded interaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global sequence number within the run.
    pub seq: usize,
    /// The static site.
    pub site: SiteId,
    /// Operation kind.
    pub op: OpKind,
    /// Environment object touched.
    pub object: ObjectRef,
    /// Input semantics, when the operation receives data.
    pub semantic: Option<InputSemantic>,
    /// How many times this site had executed before (0-based).
    pub occurrence: usize,
    /// Whether the dispatched operation succeeded — the static analysis
    /// layer's ground truth for "this interaction actually received a
    /// value" (an indirect fault can only strike a successful receive).
    pub ok: bool,
}

/// The trace of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    site_hits: BTreeMap<SiteId, usize>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an interaction, assigning sequence and occurrence numbers.
    /// Returns the event's occurrence index for the site.
    pub fn record(&mut self, site: SiteId, op: OpKind, object: ObjectRef, semantic: Option<InputSemantic>) -> usize {
        let occurrence = *self.site_hits.entry(site.clone()).or_insert(0);
        *self.site_hits.get_mut(&site).expect("just inserted") += 1;
        let seq = self.events.len();
        self.events.push(TraceEvent {
            seq,
            site,
            op,
            object,
            semantic,
            occurrence,
            ok: true,
        });
        occurrence
    }

    /// Stamps the dispatch outcome onto event `seq` (recorded optimistically
    /// as `ok: true`; the dispatcher corrects it once the operation ran).
    pub fn set_outcome(&mut self, seq: usize, ok: bool) {
        if let Some(ev) = self.events.get_mut(seq) {
            ev.ok = ok;
        }
    }

    /// All events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// How many times `site` executed in this trace (0 when never seen) —
    /// the per-site occurrence budget an occurrence-aware fault planner
    /// enumerates (each hit is a distinct strikeable occurrence).
    pub fn hit_count(&self, site: &SiteId) -> usize {
        self.site_hits.get(site).copied().unwrap_or(0)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Distinct sites in order of first execution, with their merged
    /// descriptors — the paper's interaction-point list.
    pub fn sites(&self) -> Vec<SiteSummary> {
        let mut order: Vec<SiteId> = Vec::new();
        let mut map: BTreeMap<SiteId, SiteSummary> = BTreeMap::new();
        for ev in &self.events {
            if !map.contains_key(&ev.site) {
                order.push(ev.site.clone());
                map.insert(
                    ev.site.clone(),
                    SiteSummary {
                        site: ev.site.clone(),
                        first_seq: ev.seq,
                        hits: 0,
                        ops: Vec::new(),
                        inputs: Vec::new(),
                    },
                );
            }
            let s = map.get_mut(&ev.site).expect("inserted above");
            s.hits = s.hits.max(ev.occurrence + 1);
            if !s.ops.iter().any(|(op, obj)| *op == ev.op && *obj == ev.object) {
                s.ops.push((ev.op, ev.object.clone()));
            }
            if let Some(sem) = ev.semantic {
                if !s.inputs.contains(&sem) {
                    s.inputs.push(sem);
                }
            }
        }
        order
            .into_iter()
            .map(|s| map.remove(&s).expect("collected above"))
            .collect()
    }

    /// Paths of file objects touched at two or more *distinct sites* — the
    /// check-at-one-point, use-at-another shape that makes name/content
    /// invariance (TOCTTOU) faults applicable. Multiple operations within a
    /// single interaction point do not qualify.
    pub fn reaccessed_files(&self) -> Vec<String> {
        let mut sites_per_path: BTreeMap<&str, std::collections::BTreeSet<&SiteId>> = BTreeMap::new();
        for ev in &self.events {
            if let ObjectRef::File(p) = &ev.object {
                sites_per_path.entry(p.as_str()).or_default().insert(&ev.site);
            }
        }
        sites_per_path
            .into_iter()
            .filter(|(_, sites)| sites.len() >= 2)
            .map(|(p, _)| p.to_string())
            .collect()
    }
}

/// Aggregated view of one site across a run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteSummary {
    /// The site.
    pub site: SiteId,
    /// Sequence number of its first execution.
    pub first_seq: usize,
    /// Number of times it executed.
    pub hits: usize,
    /// Distinct (operation, object) pairs observed.
    pub ops: Vec<(OpKind, ObjectRef)>,
    /// Distinct input semantics observed.
    pub inputs: Vec<InputSemantic>,
}

impl SiteSummary {
    /// True when the site receives input (step 3's branch condition).
    pub fn has_input(&self) -> bool {
        !self.inputs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occurrences_count_per_site() {
        let mut t = Trace::new();
        let s = SiteId::new("app:open");
        assert_eq!(
            t.record(s.clone(), OpKind::ReadFile, ObjectRef::File("/a".into()), None),
            0
        );
        assert_eq!(
            t.record(s.clone(), OpKind::ReadFile, ObjectRef::File("/b".into()), None),
            1
        );
        assert_eq!(
            t.record(SiteId::new("app:other"), OpKind::Print, ObjectRef::Terminal, None),
            0
        );
        assert_eq!(t.len(), 3);
        assert_eq!(t.hit_count(&s), 2);
        assert_eq!(t.hit_count(&SiteId::new("app:other")), 1);
        assert_eq!(t.hit_count(&SiteId::new("never")), 0);
    }

    #[test]
    fn sites_merge_descriptors_in_first_execution_order() {
        let mut t = Trace::new();
        let a = SiteId::new("a");
        let b = SiteId::new("b");
        t.record(
            b.clone(),
            OpKind::Getenv,
            ObjectRef::EnvVar("PATH".into()),
            Some(InputSemantic::EnvPathList),
        );
        t.record(a.clone(), OpKind::ReadFile, ObjectRef::File("/f".into()), None);
        t.record(
            b.clone(),
            OpKind::Getenv,
            ObjectRef::EnvVar("PATH".into()),
            Some(InputSemantic::EnvPathList),
        );
        let sites = t.sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].site, b);
        assert_eq!(sites[0].hits, 2);
        assert_eq!(sites[0].inputs, vec![InputSemantic::EnvPathList]);
        assert!(sites[0].has_input());
        assert!(!sites[1].has_input());
    }

    #[test]
    fn reaccess_detection() {
        let mut t = Trace::new();
        t.record(SiteId::new("s1"), OpKind::Stat, ObjectRef::File("/x".into()), None);
        t.record(SiteId::new("s2"), OpKind::ReadFile, ObjectRef::File("/x".into()), None);
        t.record(SiteId::new("s3"), OpKind::ReadFile, ObjectRef::File("/y".into()), None);
        assert_eq!(t.reaccessed_files(), vec!["/x".to_string()]);
    }

    #[test]
    fn input_op_classification() {
        assert!(OpKind::ReadFile.is_input());
        assert!(OpKind::Getenv.is_input());
        assert!(!OpKind::CreateFile.is_input());
        assert!(!OpKind::Exec.is_input());
    }
}
