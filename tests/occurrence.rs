//! Integration: occurrence-aware fault plans (paper §3.3 perturbs *each
//! occurrence* of each interaction point).
//!
//! The fixture models the check-then-reuse (TOCTTOU) shape: a SUID-root
//! program opens the same configuration file three times at one site,
//! validates only the first read, and finally echoes what it read. A fault
//! struck at occurrence 0 lands *before* the validation and is caught; the
//! same fault struck at occurrence 1 or 2 lands in the trust window after
//! the check — which only an occurrence-aware plan can reach.

use epa::core::campaign::CampaignOptions;
use epa::core::engine::{Session, WorldSpec};
use epa::core::inject::{InjectionHook, InjectionPlan};
use epa::core::perturb::{ConcreteFault, DirectFault, FaultPayload};
use epa::core::report::CampaignReport;
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::os::{Os, ScenarioMeta};
use epa::sandbox::process::Pid;
use epa::sandbox::trace::SiteId;
use std::collections::BTreeMap;

/// The re-read configuration file.
const CFG: &str = "/var/lib/reread/target";
/// The content the first (validated) read must observe.
const GENUINE: &str = "all-clear";

/// The fixture: reads `CFG` three times at one site, validates read #1,
/// trusts reads #2 and #3, then prints the final content.
struct Reread;

impl Application for Reread {
    fn name(&self) -> &'static str {
        "reread"
    }
    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let mut last = None;
        for _ in 0..3 {
            match os.sys_read_file(pid, "reread:open", CFG) {
                Ok(d) => {
                    // Only the first read is validated — the paper's
                    // check-at-one-point, trust-thereafter flaw.
                    if last.is_none() && d.text() != GENUINE {
                        return 1;
                    }
                    last = Some(d);
                }
                Err(_) => return 1,
            }
        }
        let data = last.expect("three reads completed");
        let _ = os.sys_print(pid, "reread:report", data);
        0
    }
}

fn session(max_occurrences: usize) -> Session {
    let scenario = ScenarioMeta::default();
    let spec = WorldSpec::builder()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
        .user("evil", scenario.attacker, scenario.attacker_gid, "/home/evil")
        .root_file("/etc/passwd", "root:x:0:0:\n", 0o644)
        .root_file("/etc/shadow", "root:SECRETHASH\n", 0o600)
        .root_file(CFG, GENUINE, 0o644)
        .suid_root_program("/usr/bin/reread")
        .build();
    Session::new(&spec).expect("valid spec").with_options(CampaignOptions {
        max_occurrences_per_site: max_occurrences,
        ..Default::default()
    })
}

fn symlink_verdicts(report: &CampaignReport) -> BTreeMap<usize, bool> {
    report
        .records
        .iter()
        .filter(|r| r.fault_id.starts_with("direct:fs:symlink"))
        .map(|r| (r.occurrence, !r.tolerated()))
        .collect()
}

#[test]
fn the_clean_run_is_violation_free_and_hits_the_site_three_times() {
    let s = session(1);
    let out = s.run(&Reread);
    assert_eq!(out.exit, Some(0));
    assert!(out.violations.is_empty(), "{:?}", out.violations);
    let sites = out.os.trace.sites();
    let open = sites.iter().find(|s| s.site.as_str() == "reread:open").expect("site");
    assert_eq!(open.hits, 3, "the fixture re-reads the file three times");
    assert_eq!(out.os.trace.hit_count(&SiteId::new("reread:open")), 3);
}

#[test]
fn occurrence_plans_respect_the_cap_and_replan_only_sensitive_faults() {
    // 5 direct read faults at the site; occurrences past the first replan
    // all of them (direct faults are occurrence-sensitive).
    let plan1 = session(1).plan(&Reread);
    let open1 = plan1
        .sites
        .iter()
        .find(|s| s.summary.site.as_str() == "reread:open")
        .expect("site planned");
    assert_eq!(open1.occurrences, 1, "default cap preserves first-hit-only plans");
    assert!(open1.faults.iter().all(ConcreteFault::occurrence_sensitive));

    let plan3 = session(usize::MAX).plan(&Reread);
    let open3 = plan3
        .sites
        .iter()
        .find(|s| s.summary.site.as_str() == "reread:open")
        .expect("site planned");
    assert_eq!(open3.occurrences, 3, "uncapped plans strike every traced hit");
    let jobs = open3.jobs();
    assert_eq!(jobs.len(), 3 * open3.faults.len());
    for occurrence in 0..3 {
        assert_eq!(
            jobs.iter().filter(|j| j.occurrence == occurrence).count(),
            open3.faults.len()
        );
    }
    assert_eq!(plan3.total_faults(), plan3.jobs().len());
}

#[test]
fn the_hook_fires_only_on_the_planned_occurrence() {
    for target in [1usize, 2] {
        let s = session(1);
        let mut os = s.snapshot();
        let fault = ConcreteFault {
            id: "direct:fs:content@test".into(),
            category: epa::core::model::EaiCategory::Other,
            semantic: None,
            description: "modify between reads".into(),
            payload: FaultPayload::Direct(DirectFault::ModifyContent {
                path: CFG.into(),
                content: "perturbed".into(),
            }),
        };
        let (hook, fired) = InjectionHook::new(InjectionPlan {
            site: SiteId::new("reread:open"),
            occurrence: target,
            fault,
        });
        os.set_interceptor(Box::new(hook));
        let pid = os
            .spawn(
                os.scenario.invoker,
                Some("/usr/bin/reread"),
                vec![],
                BTreeMap::new(),
                "/",
            )
            .unwrap();
        for occurrence in 0..3 {
            let got = os.sys_read_file(pid, "reread:open", CFG).unwrap();
            // The content fault persists in the world once applied, so
            // reads before the target occurrence are genuine and reads at
            // or after it observe the perturbation.
            if occurrence < target {
                assert_eq!(got.text(), GENUINE, "occurrence {occurrence} must be untouched");
            } else {
                assert_eq!(got.text(), "perturbed", "occurrence {occurrence} is past the strike");
            }
        }
        assert!(fired.get());
    }
}

#[test]
fn later_occurrences_surface_the_violation_the_first_hit_misses() {
    // Occurrence 0: the symlink swap to /etc/shadow lands before the
    // validated read — the program notices and aborts. Tolerated.
    let first_only = session(1).execute(&Reread);
    let v1 = symlink_verdicts(&first_only);
    assert_eq!(v1.get(&0), Some(&false), "occurrence 0 symlink swap is caught");

    // Occurrences 1 and 2: the swap lands inside the trust window; the
    // program echoes the shadow file. Disclosure — invisible to any
    // occurrence-0 plan.
    let all = session(usize::MAX).execute(&Reread);
    let v3 = symlink_verdicts(&all);
    assert_eq!(v3.get(&0), Some(&false));
    assert_eq!(v3.get(&1), Some(&true), "occurrence 1 must violate");
    assert_eq!(v3.get(&2), Some(&true), "occurrence 2 must violate");
    let disclosure = all
        .records
        .iter()
        .find(|r| r.occurrence == 1 && r.fault_id.starts_with("direct:fs:symlink"))
        .expect("occurrence-1 symlink record");
    assert!(disclosure
        .violations
        .iter()
        .any(|v| v.description.contains("/etc/shadow")));
    assert!(all.violated() > first_only.violated());
}

#[test]
fn occurrence_campaigns_agree_between_sequential_and_parallel() {
    let seq = session(usize::MAX).execute(&Reread);
    let par = session(usize::MAX)
        .with_options(CampaignOptions {
            max_occurrences_per_site: usize::MAX,
            parallel: true,
            ..Default::default()
        })
        .execute(&Reread);
    assert_eq!(seq, par, "occurrence-aware plans stay deterministic under the pool");
}
