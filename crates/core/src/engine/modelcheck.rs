//! Model-check fixtures for the engine's concurrency protocols
//! (`model-check` feature only).
//!
//! Each fixture wraps one protocol in a small closed scenario — 2–3
//! workers, 3–6 jobs — and hands it to the shim's cooperative scheduler
//! ([`shim_sync::model::check`]), which explores every interleaving
//! within the preemption bound. The *production* types are checked, not
//! copies: under the `model-check` feature [`ShardedQueue`],
//! [`ResultCache`], and [`Executor`] compile against the shim's model
//! personality, so the code paths explored here are byte-for-byte the
//! ones tier-1 builds run under `std`.
//!
//! Two **seeded mutants** accompany the real protocols as a mutation
//! gate for the checker itself (if the checker cannot kill a bug we
//! once shipped, its green runs mean nothing):
//!
//! * [`check_close_protocol_mutant`] re-introduces the pre-PR-8 close
//!   race: the queue's `pending` counter decremented *outside* the
//!   owning shard's critical section. A sibling that reads the stale
//!   count spins between "pending says there is work" and "every shard
//!   is empty" for as long as the popping worker stays preempted — the
//!   checker reports the livelock via its step bound.
//! * [`check_claim_protocol_mutant`] breaks the cache claim protocol's
//!   exactly-once guarantee: `fulfill` drops the `Pending` slot and
//!   signals *before* publishing the digest. A waiter that rechecks in
//!   the gap finds no slot at all, concludes the claim was abandoned,
//!   and re-executes the run — the fixture's execution counter turns
//!   that into an assertion failure on the offending schedule.

use std::collections::{BTreeMap, VecDeque};

use shim_sync::model::{check, Config, Report};
use shim_sync::sync::atomic::{AtomicUsize, Ordering};
use shim_sync::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use shim_sync::thread;

use crate::engine::executor::{Executor, ShardedQueue};
use crate::engine::planner::{Claim, FaultKey, ResultCache, RunDigest};

/// A digest with recognizable content for replay assertions.
fn digest(exit: i32) -> RunDigest {
    RunDigest {
        applied: true,
        exit: Some(exit),
        crashed: None,
        audit_events: 1,
        violations: Vec::new(),
    }
}

/// The close/pending protocol of the executor's sharded queue: two
/// workers drain three jobs while the collector closes the pool after
/// the last result arrives. Every schedule must deliver all three jobs
/// exactly once and both workers must terminate (`pop -> None`).
pub fn check_close_protocol(cfg: &Config) -> Report {
    check("executor.close_protocol", cfg, || {
        let queue: ShardedQueue<usize> = ShardedQueue::new(2);
        queue.push_many(0, vec![10, 20, 30]);
        let (tx, rx) = mpsc::channel::<usize>();
        thread::scope(|scope| {
            for w in 0..2 {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || {
                    while let Some(job) = queue.pop(w) {
                        if tx.send(job).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = (0..3).map(|_| rx.recv().expect("job result")).collect();
            queue.close(false);
            got.sort_unstable();
            assert_eq!(got, vec![10, 20, 30], "every job delivered exactly once");
        });
    })
}

/// Seeded mutant of [`check_close_protocol`]: the queue decrements
/// `pending` after releasing the shard lock (the pre-PR-8 bug). See the
/// module docs for the failing schedule; the expected verdict is a
/// step-bound livelock report.
pub fn check_close_protocol_mutant(cfg: &Config) -> Report {
    check("executor.close_protocol.mutant", cfg, || {
        let queue: MutantQueue<usize> = MutantQueue::new(2);
        queue.push_many(vec![10, 20, 30]);
        let (tx, rx) = mpsc::channel::<usize>();
        thread::scope(|scope| {
            for w in 0..2 {
                let tx = tx.clone();
                let queue = &queue;
                scope.spawn(move || {
                    while let Some(job) = queue.pop(w) {
                        if tx.send(job).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = (0..3).map(|_| rx.recv().expect("job result")).collect();
            queue.close();
            got.sort_unstable();
            assert_eq!(got, vec![10, 20, 30]);
        });
    })
}

/// The result cache's claim protocol on the **production**
/// [`ResultCache`]: two racing claimants, one key. Exactly one may
/// execute; the other must block and replay the published digest.
pub fn check_claim_protocol(cfg: &Config) -> Report {
    check("cache.claim_protocol", cfg, || {
        let cache = ResultCache::new();
        let key = FaultKey::synthetic("site#0|-|{}");
        let executed = Arc::new(AtomicUsize::new(0));
        thread::scope(|scope| {
            for _ in 0..2 {
                let cache = cache.clone();
                let key = key.clone();
                let executed = executed.clone();
                scope.spawn(move || match cache.begin(7, &key) {
                    Claim::Execute(token) => {
                        executed.fetch_add(1, Ordering::SeqCst);
                        token.fulfill(digest(0));
                    }
                    Claim::Replay(d) => assert_eq!(d.exit, Some(0), "replayed the published digest"),
                });
            }
        });
        assert_eq!(executed.load(Ordering::SeqCst), 1, "exactly one claimant executes");
        assert_eq!(cache.stats().entries, 1);
    })
}

/// The claim protocol's abandonment path (the worker-panic liveness
/// fix): the first claimant drops its token unfulfilled — exactly what
/// a panicking job's unwind does — and a blocked second claimant must
/// wake, re-claim, and complete the run.
pub fn check_claim_abandon(cfg: &Config) -> Report {
    check("cache.claim_abandon", cfg, || {
        let cache = ResultCache::new();
        let key = FaultKey::synthetic("site#0|-|{}");
        // Claim on the root thread (no contention yet, so this always
        // wins), then abandon while the rescuer may already be blocked.
        let Claim::Execute(token) = cache.begin(7, &key) else {
            panic!("empty cache cannot replay");
        };
        let rescuer = {
            let cache = cache.clone();
            let key = key.clone();
            thread::spawn(move || match cache.begin(7, &key) {
                Claim::Execute(token) => token.fulfill(digest(1)),
                Claim::Replay(_) => panic!("nothing was published before the abandon"),
            })
        };
        drop(token); // abandon, as an unwinding worker would
        rescuer.join().expect("rescuer completes despite the abandoned claim");
        assert!(matches!(cache.begin(7, &key), Claim::Replay(_)));
    })
}

/// Seeded mutant of [`check_claim_protocol`]: a claim protocol whose
/// `fulfill` drops the `Pending` slot and signals before publishing.
/// The checker must find the schedule where a waiter rechecks in the
/// gap and re-executes (the fixture asserts exactly-once execution).
pub fn check_claim_protocol_mutant(cfg: &Config) -> Report {
    check("cache.claim_protocol.mutant", cfg, || {
        let cache = Arc::new(MutantCache::default());
        let executed = Arc::new(AtomicUsize::new(0));
        thread::scope(|scope| {
            for _ in 0..2 {
                let cache = cache.clone();
                let executed = executed.clone();
                scope.spawn(move || match cache.begin("k") {
                    MutantClaim::Execute => {
                        executed.fetch_add(1, Ordering::SeqCst);
                        cache.fulfill("k", 0);
                    }
                    MutantClaim::Replay(v) => assert_eq!(v, 0),
                });
            }
        });
        assert_eq!(executed.load(Ordering::SeqCst), 1, "exactly one claimant executes");
    })
}

/// Plan-order reassembly of [`Executor::run_indexed`] under adversarial
/// schedules: 2 workers race a shared cursor over 4 jobs, results
/// stream back in arbitrary completion order, and in **every**
/// interleaving the reassembled vector must be byte-identical to the
/// sequential run's.
pub fn check_indexed_reassembly(cfg: &Config) -> Report {
    let jobs: Vec<usize> = vec![10, 20, 30, 40];
    let sequential = format!(
        "{:?}",
        Executor::with_workers(1).run_indexed(&jobs, |i, j| (i, j * 2), &mut |_, _| {})
    );
    check("executor.indexed_reassembly", cfg, move || {
        let pool = Executor::with_workers(2);
        let mut streamed = 0usize;
        let out = pool.run_indexed(&jobs, |i, j| (i, j * 2), &mut |_, _| streamed += 1);
        assert_eq!(streamed, jobs.len(), "every completion streamed to the caller");
        assert_eq!(format!("{out:?}"), sequential, "reassembly is schedule-independent");
    })
}

/// The suite-pool shape on [`Executor::run_expanding`]: 2 seed jobs
/// (one per "application plan") each fan out into 2 follow-up jobs on
/// completion, so the steal path delivers children maximally
/// out-of-order across shards. The caller-side reassembly by job index
/// must match the sequential run byte-for-byte in every schedule.
pub fn check_expanding_reassembly(cfg: &Config) -> Report {
    let sequential = format!("{:?}", expanding_slots(1));
    check("executor.expanding_reassembly", cfg, move || {
        assert_eq!(
            format!("{:?}", expanding_slots(2)),
            sequential,
            "steal-path delivery order must not leak into the report"
        );
    })
}

/// Runs the suite-shaped expanding workload on `workers` workers and
/// reassembles results by job index (as `Suite::execute_with` does).
fn expanding_slots(workers: usize) -> BTreeMap<usize, usize> {
    let pool = Executor::with_workers(workers);
    let mut slots: BTreeMap<usize, usize> = BTreeMap::new();
    // Seeds 1 and 2 expand into children 10*id+1 / 10*id+2.
    pool.run_expanding(vec![1usize, 2], |job| (job, job * 100), &mut |(job, result)| {
        slots.insert(job, result);
        if job < 10 {
            vec![job * 10 + 1, job * 10 + 2]
        } else {
            Vec::new()
        }
    });
    slots
}

/// [`ShardedQueue`] with the pre-PR-8 seeded bug: `pending` decremented
/// *after* the shard lock is released (see the module docs).
struct MutantQueue<J> {
    shards: Vec<Mutex<VecDeque<J>>>,
    pending: AtomicUsize,
    closed: Mutex<bool>,
    ready: Condvar,
}

impl<J> MutantQueue<J> {
    fn new(workers: usize) -> MutantQueue<J> {
        MutantQueue {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            closed: Mutex::new(false),
            ready: Condvar::new(),
        }
    }

    fn push_many(&self, jobs: Vec<J>) {
        let n = jobs.len();
        for (k, job) in jobs.into_iter().enumerate() {
            self.shards[k % self.shards.len()]
                .lock()
                .expect("shard lock")
                .push_back(job);
        }
        self.pending.fetch_add(n, Ordering::SeqCst);
        drop(self.closed.lock().expect("queue lock"));
        self.ready.notify_all();
    }

    fn try_pop(&self, worker: usize) -> Option<J> {
        let n = self.shards.len();
        for k in 0..n {
            let victim = (worker + k) % n;
            let job = {
                let mut shard = self.shards[victim].lock().expect("shard lock");
                if k == 0 {
                    shard.pop_front()
                } else {
                    shard.pop_back()
                }
                // BUG under test: the shard lock is released here, BEFORE
                // the pending decrement below — a sibling can observe
                // `pending > 0` with every shard already empty.
            };
            if let Some(job) = job {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    fn pop(&self, worker: usize) -> Option<J> {
        loop {
            if self.pending.load(Ordering::SeqCst) > 0 {
                if let Some(job) = self.try_pop(worker) {
                    return Some(job);
                }
            }
            let mut closed = self.closed.lock().expect("queue lock");
            loop {
                if self.pending.load(Ordering::SeqCst) > 0 {
                    break;
                }
                if *closed {
                    return None;
                }
                closed = self.ready.wait(closed).expect("queue lock");
            }
        }
    }

    fn close(&self) {
        *self.closed.lock().expect("queue lock") = true;
        self.ready.notify_all();
    }
}

/// Outcome of [`MutantCache::begin`].
enum MutantClaim {
    Execute,
    Replay(u32),
}

/// One memo slot of the mutant claim protocol.
enum MutantSlot {
    Pending,
    Ready(u32),
}

/// A distilled claim protocol with the seeded fulfill bug (see the
/// module docs). `begin` mirrors [`ResultCache::begin`]; only `fulfill`
/// differs from the production ordering.
#[derive(Default)]
struct MutantCache {
    state: Mutex<BTreeMap<String, MutantSlot>>,
    settled: Condvar,
}

impl MutantCache {
    fn begin(&self, key: &str) -> MutantClaim {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match state.get(key) {
                Some(MutantSlot::Ready(v)) => return MutantClaim::Replay(*v),
                Some(MutantSlot::Pending) => {
                    state = self.settled.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    state.insert(key.to_string(), MutantSlot::Pending);
                    return MutantClaim::Execute;
                }
            }
        }
    }

    fn fulfill(&self, key: &str, value: u32) {
        // BUG under test: the Pending slot is dropped and waiters are
        // signaled BEFORE the digest is published. A waiter that
        // rechecks in the gap finds no slot, concludes the claim was
        // abandoned, and re-executes the run.
        {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            state.remove(key);
        }
        self.settled.notify_all();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.insert(key.to_string(), MutantSlot::Ready(value));
    }
}
