//! The scripted-behavior application adapter for the synthesized corpus.
//!
//! [`ScriptedApp`] turns a corpus [`BehaviorScript`] — a serializable list
//! of environment interactions the generator synthesizes alongside each
//! world — into a first-class [`Application`] the engine can trace,
//! perturb, and batch like any hand-written case study. The corpus layer
//! in `epa-core` deliberately never names a concrete application type;
//! this adapter is what the `reproduce` binary, the corpus bench, and the
//! property tests hand to
//! [`epa_core::corpus::harness::differential_check`] via its factory
//! argument.

use std::sync::Arc;

use epa_core::corpus::{BehaviorScript, Scenario};
use epa_sandbox::app::Application;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;

/// An [`Application`] driven entirely by a corpus behavior script.
#[derive(Debug, Clone)]
pub struct ScriptedApp {
    script: BehaviorScript,
}

impl ScriptedApp {
    /// Wraps a behavior script.
    pub fn new(script: BehaviorScript) -> ScriptedApp {
        ScriptedApp { script }
    }

    /// The adapter for one synthesized scenario.
    pub fn for_scenario(scenario: &Scenario) -> ScriptedApp {
        ScriptedApp::new(scenario.script.clone())
    }

    /// The factory closure the corpus harness consumes: every scenario maps
    /// to its own scripted adapter.
    pub fn factory() -> impl Fn(&Scenario) -> Arc<dyn Application + Send + Sync> + Sync {
        |scenario: &Scenario| Arc::new(ScriptedApp::for_scenario(scenario))
    }
}

impl Application for ScriptedApp {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        self.script.run(os, pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_core::corpus::{differential_check, synthesize_one, DEFAULT_CORPUS_SEED};

    #[test]
    fn scripted_app_drives_a_synthesized_scenario_end_to_end() {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, 3);
        let factory = ScriptedApp::factory();
        let outcome = differential_check(&scenario, &factory);
        assert!(outcome.divergence.is_none(), "divergence: {:?}", outcome.divergence);
        assert!(outcome.injected > 0, "scenario exposed no perturbable sites");
        assert!(outcome.paths.len() >= 6, "expected every execution path to run");
    }
}
