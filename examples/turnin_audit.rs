//! The paper's §4.1 `turnin` audit, end to end — including live replays of
//! both published exploits.
//!
//! ```text
//! cargo run --example turnin_audit
//! ```

use epa::apps::{worlds, Turnin, TurninFixed};
use epa::core::campaign::run_once;
use epa::core::engine::Session;

fn main() {
    // ---- the campaign (paper: 8 interaction points, 41 perturbations,
    //      9 violations) ------------------------------------------------
    let setup = worlds::turnin_world();
    let report = Session::from_setup(setup.clone()).execute(&Turnin);
    println!("{}", report.render_text());

    // ---- exploit 1: Projlist -> /etc/shadow ---------------------------
    println!("--- exploit replay 1: the TA symlinks Projlist to /etc/shadow ---");
    let mut attack = worlds::turnin_world();
    attack
        .world
        .fs
        .god_symlink("/home/ta/submit/Projlist", "/etc/shadow")
        .expect("world");
    let out = run_once(&attack, &Turnin, None);
    println!("turnin printed:\n{}", out.os.stdout_text(out.pid.expect("spawned")));
    for v in &out.violations {
        println!("oracle: {v}");
    }

    // ---- exploit 2: a submission named ../.login ----------------------
    println!("--- exploit replay 2: student submits `../.login` ---");
    let mut attack2 = worlds::turnin_world();
    attack2.args = vec![
        "-c".into(),
        "cs390".into(),
        "-p".into(),
        "proj1".into(),
        "../.login".into(),
    ];
    let out2 = run_once(&attack2, &Turnin, None);
    let login = attack2.world.fs.god_read("/home/ta/.login").expect("world");
    let after = out2.os.fs.god_read("/home/ta/.login").expect("world");
    println!("TA's .login before: {:?}", login.text());
    println!("TA's .login after:  {:?}", after.text());
    for v in &out2.violations {
        println!("oracle: {v}");
    }

    // ---- the patched program ------------------------------------------
    let fixed = Session::from_setup(setup.clone()).execute(&TurninFixed);
    println!(
        "--- turnin-fixed: {} faults injected, {} violations (fault coverage {}) ---",
        fixed.injected(),
        fixed.violated(),
        fixed.fault_coverage()
    );
}
