//! Normal-build personality: the std primitives themselves. Nothing is
//! wrapped — the facade costs exactly zero.

pub use std::sync::{
    atomic, mpsc, Arc, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard,
    RwLockWriteGuard, TryLockError, TryLockResult, WaitTimeoutResult, Weak,
};
