//! Property tests: oracle-pipeline equivalence — the incremental
//! (audit-log-subscribed) `OracleSet` must report exactly what the retired
//! batch evaluation reports, across randomized worlds, randomized fault
//! plans, and spec-declared invariants; and the deprecated
//! `PolicyEngine::evaluate` shim must keep reproducing the paper's pinned
//! lpr numbers through both paths.

#![allow(deprecated)]

use epa::core::campaign::{run_once_batch_oracle, Campaign, CampaignOptions};
use epa::core::engine::{Session, WorldSpec};
use epa::core::inject::InjectionHook;
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::os::{Os, ScenarioMeta};
use epa::sandbox::policy::{InvariantSpec, PolicyEngine, Violation};
use epa::sandbox::process::Pid;
use epa::sandbox::trace::InputSemantic;
use proptest::prelude::*;

/// A deterministic program parameterized by the randomized world: reads its
/// argument, then every declared data file, then spools a summary.
struct Walker {
    files: Vec<String>,
}

impl Application for Walker {
    fn name(&self) -> &'static str {
        "walker"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(arg) = os.sys_arg(pid, "walker:arg", 0, InputSemantic::UserFileName) else {
            return 2;
        };
        let mut seen = 0usize;
        for path in &self.files {
            if let Ok(d) = os.sys_read_file(pid, "walker:read", path.as_str()) {
                seen += d.len();
            }
        }
        let summary = format!("{}:{seen}", arg.text());
        if os
            .sys_write_file(pid, "walker:spool", "/var/spool/walker/out", summary.as_str(), 0o660)
            .is_err()
        {
            return 1;
        }
        let _ = os.sys_print(pid, "walker:done", "done\n");
        0
    }
}

#[derive(Debug, Clone)]
struct RandFile {
    name: String,
    content: String,
    mode: u16,
    owner: u8,
}

fn file_strategy() -> impl Strategy<Value = RandFile> {
    (
        "[a-z]{1,8}",
        ".{0,40}",
        prop_oneof![
            Just(0o600u16),
            Just(0o644u16),
            Just(0o666u16),
            Just(0o700u16),
            Just(0o755u16)
        ],
        0u8..3,
    )
        .prop_map(|(name, content, mode, owner)| RandFile {
            name,
            content,
            mode,
            owner,
        })
}

/// Randomized invariant declarations riding on the spec: none, a pristine
/// shadow file, a forbidden exec prefix, or a required check that never
/// runs (exercising the finish-time, empty-evidence verdict path).
fn invariant_strategy() -> impl Strategy<Value = Vec<InvariantSpec>> {
    prop_oneof![
        Just(Vec::new()),
        Just(vec![InvariantSpec::file_pristine("/etc/shadow")]),
        Just(vec![InvariantSpec::forbid_exec("/home/evil")]),
        Just(vec![
            InvariantSpec::require_rule("never-declared"),
            InvariantSpec::file_pristine("/etc/passwd"),
        ]),
    ]
}

fn build_spec(files: &[RandFile], arg: &str, invariants: &[InvariantSpec]) -> (WorldSpec, Vec<String>) {
    let scenario = ScenarioMeta::default();
    let mut b = WorldSpec::builder()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
        .user("evil", scenario.attacker, scenario.attacker_gid, "/home/evil")
        .dir("/var/spool/walker", Uid::ROOT, Gid::ROOT, 0o755)
        .root_file("/etc/passwd", "root:0:0:", 0o644)
        .root_file("/etc/shadow", "root:HASH", 0o600)
        .suid_root_program("/usr/bin/walker")
        .args([arg]);
    for inv in invariants {
        b = b.invariant(inv.clone());
    }
    let mut paths = Vec::new();
    for (i, f) in files.iter().enumerate() {
        // The index keeps paths unique even when names repeat.
        let path = format!("/data/f{i}-{}", f.name);
        let (owner, group) = match f.owner {
            0 => (Uid::ROOT, Gid::ROOT),
            1 => (scenario.invoker, scenario.invoker_gid),
            _ => (scenario.attacker, scenario.attacker_gid),
        };
        b = b.file(path.clone(), f.content.clone(), owner, group, f.mode);
        paths.push(path);
    }
    (b.build(), paths)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The oracle redesign's acceptance property: for every run of a
    /// randomized fault plan over a randomized world, the incremental
    /// pipeline's verdicts equal the retired batch scan's verdicts, and
    /// the deprecated `PolicyEngine::evaluate` shim returns exactly the
    /// verdicts' violations.
    #[test]
    fn incremental_equals_batch_equals_shim(
        files in proptest::collection::vec(file_strategy(), 0..4),
        arg in "[a-z]{1,6}",
        invariants in invariant_strategy(),
        max_faults in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        max_occurrences in 1usize..3,
    ) {
        let (spec, paths) = build_spec(&files, &arg, &invariants);
        let app = Walker { files: paths };
        let setup = spec.materialize().expect("generated specs are valid");
        let options = CampaignOptions {
            max_faults_per_site: max_faults,
            max_occurrences_per_site: max_occurrences,
            ..Default::default()
        };

        // Incremental path: the engine session (oracle subscribed to every
        // run's audit log).
        let session = Session::from_setup(setup.clone()).with_options(options.clone());
        let plan = session.plan(&app);
        let report = session.execute_plan(&app, &plan);
        let jobs = plan.jobs();
        prop_assert_eq!(jobs.len(), report.records.len());

        // Batch path: replay the identical jobs through the retired
        // post-hoc scan and compare verdict-for-verdict.
        for (job, record) in jobs.iter().zip(&report.records) {
            let (hook, _) = InjectionHook::new(job.clone());
            let batch = run_once_batch_oracle(&setup, &app, Some(Box::new(hook)));
            prop_assert_eq!(&batch.violations, &record.violations, "job {}", job.fault.id);
            prop_assert_eq!(batch.os.audit.len(), record.audit_events);

            // The deprecated shim agrees with the verdict stream minus the
            // spec-declared invariants it predates (it runs the standard
            // families only).
            let shim: Vec<Violation> = PolicyEngine::new().evaluate(&batch.os.audit);
            let standard: Vec<Violation> = record
                .violations
                .iter()
                .filter(|v| v.detector != "invariant")
                .map(|v| v.violation.clone())
                .collect();
            prop_assert_eq!(shim, standard);

            // Every evidence index stays inside the run's audit log.
            for verdict in &record.violations {
                for item in &verdict.evidence.items {
                    prop_assert!(item.index < record.audit_events);
                }
            }
        }
    }
}

/// The paper's §3.4 numbers, pinned through every oracle path: the
/// incremental session, the retired batch scan, and the deprecated
/// `PolicyEngine` shim.
#[test]
fn lpr_numbers_pin_through_both_oracle_paths() {
    use epa::apps::{worlds, Lpr};
    use epa::sandbox::trace::SiteId;
    use std::collections::BTreeSet;

    let mut filter = BTreeSet::new();
    filter.insert(SiteId::new("lpr:create_spool"));
    let options = CampaignOptions {
        site_filter: Some(filter),
        ..Default::default()
    };
    let setup = worlds::lpr_world();

    // Incremental: the engine session.
    let session = Session::from_setup(setup.clone()).with_options(options.clone());
    let report = session.execute(&Lpr);
    assert_eq!(report.injected(), 4, "existence, ownership, permission, symbolic link");
    assert_eq!(report.violated(), 4, "paper: violations detected for attributes 1-4");

    // Batch: the same four jobs through the retired post-hoc scan.
    let campaign = Campaign::new(&Lpr, &setup).with_options(options);
    let plan = campaign.plan();
    let mut batch_violated = 0usize;
    for job in plan.jobs() {
        let (hook, _) = InjectionHook::new(job);
        let out = run_once_batch_oracle(&setup, &Lpr, Some(Box::new(hook)));
        // The shim sees exactly what the pipeline sees, minus evidence.
        let shim = PolicyEngine::new().evaluate(&out.os.audit);
        assert_eq!(
            shim,
            out.violations.iter().map(|v| v.violation.clone()).collect::<Vec<_>>()
        );
        if !out.violations.is_empty() {
            batch_violated += 1;
        }
    }
    assert_eq!(batch_violated, 4, "batch path keeps the paper's 4/4");
}
