//! The security-policy oracle.
//!
//! The paper's methodology needs, at step 8, a decision procedure for
//! "was the security policy violated?". This module provides it as a pure
//! function over the [`crate::audit::AuditLog`]: a fixed rule set covering
//! the four classic policy families the paper's case studies exercise —
//! integrity, confidentiality, privilege/trust, and memory safety — plus
//! scenario-declared custom invariants.
//!
//! The rules are deliberately written so that a **clean (unperturbed) run of
//! a well-configured world produces zero violations**; campaign code asserts
//! this before injecting any fault, so every reported violation is
//! attributable to the injected perturbation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::audit::{AuditEvent, AuditLog};
use crate::fs::FileTag;

/// The policy family a violation falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// A privileged process modified an object its invoker could not write.
    IntegrityWrite,
    /// A privileged process deleted a protected/critical object or one the
    /// invoker could not remove.
    IntegrityDelete,
    /// Secret bytes the invoker may not read reached an invoker-visible sink.
    Disclosure,
    /// A privileged process executed an attacker-controllable program.
    UntrustedExec,
    /// A privileged operation's target was named by untrusted input.
    TaintedPrivilegedOp,
    /// An action was driven by a message whose origin was spoofed.
    SpoofedAction,
    /// A fixed-size buffer was overrun by an unchecked copy.
    MemoryCorruption,
    /// A scenario-declared invariant failed.
    Custom,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::IntegrityWrite => "integrity-write",
            ViolationKind::IntegrityDelete => "integrity-delete",
            ViolationKind::Disclosure => "disclosure",
            ViolationKind::UntrustedExec => "untrusted-exec",
            ViolationKind::TaintedPrivilegedOp => "tainted-privileged-op",
            ViolationKind::SpoofedAction => "spoofed-action",
            ViolationKind::MemoryCorruption => "memory-corruption",
            ViolationKind::Custom => "custom",
        };
        f.write_str(s)
    }
}

/// A detected security-policy violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Violation {
    /// The policy family.
    pub kind: ViolationKind,
    /// The rule that fired, e.g. `"R1-integrity-write"`.
    pub rule: String,
    /// Human-readable account of what happened.
    pub description: String,
    /// Index of the triggering event in the audit log.
    pub event_index: usize,
}

impl Violation {
    /// Builds a violation (the struct is `#[non_exhaustive]`, so downstream
    /// crates construct through this).
    pub fn new(
        kind: ViolationKind,
        rule: impl Into<String>,
        description: impl Into<String>,
        event_index: usize,
    ) -> Self {
        Violation {
            kind,
            rule: rule.into(),
            description: description.into(),
            event_index,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ({})", self.kind, self.description, self.rule)
    }
}

/// The fixed rule set. Stateless; construct once and reuse.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyEngine;

impl PolicyEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        PolicyEngine
    }

    /// Evaluates every rule against the log, returning all violations in
    /// event order.
    pub fn evaluate(&self, log: &AuditLog) -> Vec<Violation> {
        let mut out = Vec::new();
        for (idx, ev) in log.iter() {
            self.check_event(idx, ev, &mut out);
        }
        out
    }

    fn check_event(&self, idx: usize, ev: &AuditEvent, out: &mut Vec<Violation>) {
        match ev {
            AuditEvent::MemoryCorruption {
                buffer,
                capacity,
                attempted,
                ..
            } => {
                out.push(Violation {
                    kind: ViolationKind::MemoryCorruption,
                    rule: "R4-memory-safety".into(),
                    description: format!("unchecked copy of {attempted} bytes into {capacity}-byte buffer `{buffer}`"),
                    event_index: idx,
                });
            }
            AuditEvent::Emit { sink, labels, .. } => {
                for label in labels {
                    if label.is_protected_secret() {
                        out.push(Violation {
                            kind: ViolationKind::Disclosure,
                            rule: "R2-confidentiality".into(),
                            description: format!("{label} disclosed to {sink}"),
                            event_index: idx,
                        });
                    }
                }
            }
            AuditEvent::FileWrite(w) => {
                // R1: privileged write to something the invoker couldn't touch.
                let elevated = w.by.is_elevated();
                let overwrote_foreign = w.existed_before && !w.invoker_could_write && !w.created_by_self;
                let planted_in_protected =
                    !w.existed_before && w.parent_tags.contains(&FileTag::Protected) && !w.invoker_could_write_parent;
                if elevated && (overwrote_foreign || planted_in_protected) {
                    let what = if overwrote_foreign {
                        format!("overwrote {} which the invoker could not write", w.path)
                    } else {
                        format!("planted {} inside a protected directory", w.path)
                    };
                    out.push(Violation {
                        kind: ViolationKind::IntegrityWrite,
                        rule: "R1-integrity-write".into(),
                        description: what,
                        event_index: idx,
                    });
                }
                // R5: untrusted input named the target of a privileged write.
                if w.by.is_privileged() && w.path_taint.iter().any(|l| l.is_untrusted()) {
                    out.push(Violation {
                        kind: ViolationKind::TaintedPrivilegedOp,
                        rule: "R5-tainted-write".into(),
                        description: format!("privileged write to attacker-named path {}", w.path),
                        event_index: idx,
                    });
                }
                // R7: spoofed message drove a privileged write.
                if (w.by.is_elevated() || w.by.is_privileged())
                    && (w.data_labels.iter().any(|l| l.is_spoofed()) || w.path_taint.iter().any(|l| l.is_spoofed()))
                {
                    out.push(Violation {
                        kind: ViolationKind::SpoofedAction,
                        rule: "R7-spoofed-write".into(),
                        description: format!("write to {} driven by spoofed message", w.path),
                        event_index: idx,
                    });
                }
                // R2 (file sink): secret data written where the invoker can read it.
                if w.invoker_could_read_after {
                    for label in &w.data_labels {
                        if label.is_protected_secret() {
                            out.push(Violation {
                                kind: ViolationKind::Disclosure,
                                rule: "R2-confidentiality".into(),
                                description: format!("{label} disclosed to file {}", w.path),
                                event_index: idx,
                            });
                        }
                    }
                }
            }
            AuditEvent::FileDelete {
                path,
                tags,
                path_taint,
                invoker_could_delete,
                by,
                ..
            } => {
                let sensitive = tags.contains(&FileTag::Protected)
                    || tags.contains(&FileTag::Critical)
                    || tags.contains(&FileTag::Secret);
                if by.is_elevated() && sensitive && !invoker_could_delete {
                    out.push(Violation {
                        kind: ViolationKind::IntegrityDelete,
                        rule: "R3-integrity-delete".into(),
                        description: format!("privileged deletion of protected object {path}"),
                        event_index: idx,
                    });
                }
                // R5 (delete): a *sensitive* object was deleted because
                // untrusted input named it — the NT font-key case study.
                // Deleting attacker-named but harmless objects is the normal
                // job of cleanup tools and does not fire.
                if by.is_privileged() && sensitive && path_taint.iter().any(|l| l.is_untrusted()) {
                    out.push(Violation {
                        kind: ViolationKind::TaintedPrivilegedOp,
                        rule: "R5-tainted-delete".into(),
                        description: format!("privileged deletion of attacker-named sensitive path {path}"),
                        event_index: idx,
                    });
                }
            }
            AuditEvent::Exec {
                requested,
                resolved,
                owner,
                world_writable,
                dir_untrusted,
                path_taint,
                arg_labels,
                by,
            } => {
                if by.is_elevated() || by.is_privileged() {
                    // The binary itself must be attacker-controllable; a
                    // root-owned binary reached via tainted input is the
                    // program's (dangerous but distinct) design decision and
                    // is caught by the write/delete rules when it matters.
                    let untrusted_binary = (!owner.is_root() && *owner != by.ruid) || *world_writable || *dir_untrusted;
                    let spoofed =
                        path_taint.iter().any(|l| l.is_spoofed()) || arg_labels.iter().any(|l| l.is_spoofed());
                    if untrusted_binary {
                        out.push(Violation {
                            kind: ViolationKind::UntrustedExec,
                            rule: "R6-untrusted-exec".into(),
                            description: format!(
                                "privileged exec of {resolved} (requested `{requested}`): attacker-controllable binary"
                            ),
                            event_index: idx,
                        });
                    }
                    if spoofed {
                        out.push(Violation {
                            kind: ViolationKind::SpoofedAction,
                            rule: "R7-spoofed-exec".into(),
                            description: format!("exec of {resolved} driven by spoofed message"),
                            event_index: idx,
                        });
                    }
                }
            }
            AuditEvent::RegistryDelete { key, path_taint, by } => {
                if by.is_privileged() && path_taint.iter().any(|l| l.is_untrusted()) {
                    out.push(Violation {
                        kind: ViolationKind::TaintedPrivilegedOp,
                        rule: "R5-tainted-regdelete".into(),
                        description: format!("privileged registry deletion of attacker-named key {key}"),
                        event_index: idx,
                    });
                }
            }
            AuditEvent::Custom { rule, violated, detail } => {
                if *violated {
                    out.push(Violation {
                        kind: ViolationKind::Custom,
                        rule: format!("custom:{rule}"),
                        description: detail.clone(),
                        event_index: idx,
                    });
                }
            }
            AuditEvent::FileRead { .. }
            | AuditEvent::Chdir { .. }
            | AuditEvent::RegistryWrite { .. }
            | AuditEvent::NetRecv { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{SinkKind, WriteInfo};
    use crate::cred::{Credentials, Gid, Uid};
    use crate::data::Label;
    use std::collections::BTreeSet;

    fn suid_cred() -> Credentials {
        Credentials::user(Uid(100), Gid(100)).with_euid(Uid::ROOT)
    }

    fn clean_write(by: Credentials) -> WriteInfo {
        WriteInfo {
            path: "/var/spool/x".into(),
            existed_before: false,
            owner_before: None,
            invoker_could_write: false,
            target_tags: BTreeSet::new(),
            parent_tags: BTreeSet::new(),
            invoker_could_write_parent: false,
            invoker_could_read_after: false,
            created_by_self: false,
            path_taint: BTreeSet::new(),
            data_labels: BTreeSet::new(),
            by,
        }
    }

    #[test]
    fn fresh_spool_write_is_clean() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::FileWrite(clean_write(suid_cred())));
        assert!(PolicyEngine::new().evaluate(&log).is_empty());
    }

    #[test]
    fn overwriting_foreign_file_is_integrity_violation() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.path = "/etc/passwd".into();
        w.existed_before = true;
        w.owner_before = Some(Uid::ROOT);
        log.push(AuditEvent::FileWrite(w));
        let v = PolicyEngine::new().evaluate(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::IntegrityWrite);
    }

    #[test]
    fn unelevated_process_may_overwrite_its_own_files() {
        let mut log = AuditLog::new();
        let mut w = clean_write(Credentials::user(Uid(100), Gid(100)));
        w.existed_before = true;
        w.invoker_could_write = true;
        log.push(AuditEvent::FileWrite(w));
        assert!(PolicyEngine::new().evaluate(&log).is_empty());
    }

    #[test]
    fn planting_into_protected_dir_is_violation() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.path = "/etc/cron.d/evil".into();
        w.parent_tags = [FileTag::Protected].into_iter().collect();
        log.push(AuditEvent::FileWrite(w));
        let v = PolicyEngine::new().evaluate(&log);
        assert_eq!(v[0].kind, ViolationKind::IntegrityWrite);
    }

    #[test]
    fn secret_to_stdout_is_disclosure() {
        let mut log = AuditLog::new();
        let labels: BTreeSet<Label> = [Label::Secret {
            path: "/etc/shadow".into(),
            invoker_may_read: false,
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::Emit {
            sink: SinkKind::Stdout,
            labels,
            by: suid_cred(),
        });
        let v = PolicyEngine::new().evaluate(&log);
        assert_eq!(v[0].kind, ViolationKind::Disclosure);
    }

    #[test]
    fn readable_secret_is_not_disclosure() {
        let mut log = AuditLog::new();
        let labels: BTreeSet<Label> = [Label::Secret {
            path: "/home/me/own".into(),
            invoker_may_read: true,
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::Emit {
            sink: SinkKind::Stdout,
            labels,
            by: suid_cred(),
        });
        assert!(PolicyEngine::new().evaluate(&log).is_empty());
    }

    #[test]
    fn tainted_delete_fires_for_privileged_process() {
        let mut log = AuditLog::new();
        let taint: BTreeSet<Label> = [Label::Untrusted {
            source: "registry:Fonts".into(),
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::FileDelete {
            path: "/winnt/system.ini".into(),
            owner: Uid::ROOT,
            tags: [FileTag::Critical].into_iter().collect(),
            path_taint: taint,
            invoker_could_delete: false,
            by: Credentials::root(),
        });
        let v = PolicyEngine::new().evaluate(&log);
        assert!(v.iter().any(|x| x.kind == ViolationKind::TaintedPrivilegedOp));
    }

    #[test]
    fn untrusted_exec_detected() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Exec {
            requested: "tar".into(),
            resolved: "/tmp/evil/tar".into(),
            owner: Uid(666),
            world_writable: false,
            dir_untrusted: true,
            path_taint: BTreeSet::new(),
            arg_labels: BTreeSet::new(),
            by: suid_cred(),
        });
        let v = PolicyEngine::new().evaluate(&log);
        assert_eq!(v[0].kind, ViolationKind::UntrustedExec);
    }

    #[test]
    fn root_owned_binary_exec_is_clean() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Exec {
            requested: "tar".into(),
            resolved: "/usr/bin/tar".into(),
            owner: Uid::ROOT,
            world_writable: false,
            dir_untrusted: false,
            path_taint: BTreeSet::new(),
            arg_labels: BTreeSet::new(),
            by: suid_cred(),
        });
        assert!(PolicyEngine::new().evaluate(&log).is_empty());
    }

    #[test]
    fn spoofed_write_detected() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.data_labels = [Label::Spoofed {
            claimed_from: "ta-host".into(),
            actual_from: "evil".into(),
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::FileWrite(w));
        let v = PolicyEngine::new().evaluate(&log);
        assert!(v.iter().any(|x| x.kind == ViolationKind::SpoofedAction));
    }

    #[test]
    fn custom_rule_fires_only_when_violated() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Custom {
            rule: "auth-before-cmd".into(),
            violated: false,
            detail: String::new(),
        });
        log.push(AuditEvent::Custom {
            rule: "auth-before-cmd".into(),
            violated: true,
            detail: "cmd without auth".into(),
        });
        let v = PolicyEngine::new().evaluate(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Custom);
        assert_eq!(v[0].event_index, 1);
    }

    #[test]
    fn memory_corruption_always_fires() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::MemoryCorruption {
            buffer: "reqline".into(),
            capacity: 64,
            attempted: 5000,
            by: Credentials::root(),
        });
        let v = PolicyEngine::new().evaluate(&log);
        assert_eq!(v[0].kind, ViolationKind::MemoryCorruption);
    }
}
