//! The `std::thread` facade: re-exports in normal builds; under
//! `model-check`, spawn/scope/join/yield are scheduler events of the
//! active execution (and plain std otherwise).

#[cfg(feature = "model-check")]
#[path = "thread_model.rs"]
mod imp;
#[cfg(not(feature = "model-check"))]
#[path = "thread_std.rs"]
mod imp;

pub use imp::*;
