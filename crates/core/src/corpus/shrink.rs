//! Proptest-style greedy shrinking for corpus scenarios.
//!
//! Given a scenario on which some property fails (a cross-path divergence,
//! a panic), [`shrink`] removes one optional ingredient at a time — script
//! steps, declared files, symlinks, registry keys, network state, env
//! vars, invariants, even base directories — keeping a removal only when
//! the shrunk world still materializes *and* still reproduces the failure,
//! and iterates to a fixpoint. The result is the smallest [`WorldSpec`]
//! diff from pristine (an empty spec) that still fails, which is what a
//! divergence report shows instead of a 30-entry generated world.
//!
//! Deterministic: candidates are tried in a fixed order, so the same input
//! and predicate always shrink to the same scenario.
//!
//! [`WorldSpec`]: crate::engine::spec::WorldSpec

use super::Scenario;

/// The outcome of one shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized scenario (still reproduces the failure).
    pub scenario: Scenario,
    /// Candidate worlds tried (predicate invocations, counting the initial
    /// confirmation).
    pub iterations: usize,
    /// Ingredients removed from the original.
    pub removed: usize,
    /// The minimized scenario as a diff from the pristine (empty) spec:
    /// one line per surviving world entry or script step.
    pub diff_from_pristine: Vec<String>,
}

/// All single-removal neighbours of `scenario`, in deterministic order.
fn candidates(scenario: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut Scenario)| {
        let mut c = scenario.clone();
        f(&mut c);
        out.push(c);
    };
    for i in 0..scenario.script.steps.len() {
        push(&|c| {
            c.script.steps.remove(i);
        });
    }
    for i in 0..scenario.spec.files.len() {
        push(&|c| {
            c.spec.files.remove(i);
        });
    }
    for i in 0..scenario.spec.symlinks.len() {
        push(&|c| {
            c.spec.symlinks.remove(i);
        });
    }
    for i in 0..scenario.spec.tags.len() {
        push(&|c| {
            c.spec.tags.remove(i);
        });
    }
    for i in 0..scenario.spec.reg_keys.len() {
        push(&|c| {
            c.spec.reg_keys.remove(i);
        });
    }
    for i in 0..scenario.spec.dns.len() {
        push(&|c| {
            c.spec.dns.remove(i);
        });
    }
    for i in 0..scenario.spec.services.len() {
        push(&|c| {
            c.spec.services.remove(i);
        });
    }
    for i in 0..scenario.spec.inbound.len() {
        push(&|c| {
            c.spec.inbound.remove(i);
        });
    }
    for i in 0..scenario.spec.ipc.len() {
        push(&|c| {
            c.spec.ipc.remove(i);
        });
    }
    for key in scenario.spec.env.keys().cloned().collect::<Vec<_>>() {
        push(&|c| {
            c.spec.env.remove(&key);
        });
    }
    for i in 0..scenario.spec.args.len() {
        push(&|c| {
            c.spec.args.remove(i);
        });
    }
    for i in 0..scenario.spec.invariants.len() {
        push(&|c| {
            c.spec.invariants.remove(i);
        });
    }
    for i in 0..scenario.spec.dirs.len() {
        push(&|c| {
            c.spec.dirs.remove(i);
        });
    }
    for i in 0..scenario.spec.users.len() {
        push(&|c| {
            c.spec.users.remove(i);
        });
    }
    out
}

/// Renders a scenario as its diff from the pristine (empty) spec.
fn spec_diff(scenario: &Scenario) -> Vec<String> {
    let spec = &scenario.spec;
    let mut out = Vec::new();
    for u in &spec.users {
        out.push(format!("user {} uid={:?}", u.name, u.uid));
    }
    for d in &spec.dirs {
        out.push(format!("dir {} mode={:o}", d.path, d.mode));
    }
    for f in &spec.files {
        out.push(format!("file {} mode={:o} owner={:?}", f.path, f.mode, f.owner));
    }
    for s in &spec.symlinks {
        out.push(format!("symlink {} -> {}", s.link, s.target));
    }
    for (path, tag) in &spec.tags {
        out.push(format!("tag {path} {tag:?}"));
    }
    for k in &spec.reg_keys {
        out.push(format!(
            "regkey {} world_writable={} values={}",
            k.key,
            k.world_writable,
            k.values.len()
        ));
    }
    for (name, addr) in &spec.dns {
        out.push(format!("dns {name} -> {addr}"));
    }
    for s in &spec.services {
        out.push(format!("service {}:{} trusted={}", s.host, s.port, s.trusted));
    }
    for m in &spec.inbound {
        out.push(format!("inbound :{} from {}", m.port, m.from));
    }
    for m in &spec.ipc {
        out.push(format!("ipc {} from {}", m.channel, m.from));
    }
    if let Some(program) = &spec.program {
        out.push(format!("program {program}"));
    }
    if !spec.args.is_empty() {
        out.push(format!("args {:?}", spec.args));
    }
    for (k, v) in &spec.env {
        out.push(format!("env {k}={v}"));
    }
    out.push(format!("cwd {}", spec.cwd));
    for inv in &spec.invariants {
        out.push(format!("invariant {inv:?}"));
    }
    for (i, step) in scenario.script.steps.iter().enumerate() {
        out.push(format!("step {i}: {step:?}"));
    }
    out
}

/// Backstop on predicate invocations — generated worlds are small, so real
/// shrinks finish in tens of probes; this only guards a pathological
/// predicate.
const MAX_PROBES: usize = 20_000;

/// Greedily minimizes `scenario` while `reproduces` keeps returning `true`.
///
/// The predicate receives candidate scenarios that already materialize
/// (invalid removals are pruned before the predicate runs, so it only sees
/// runnable worlds). If the predicate rejects the *input* scenario, the
/// input is returned unshrunk.
pub fn shrink(scenario: &Scenario, reproduces: &mut dyn FnMut(&Scenario) -> bool) -> ShrinkResult {
    let mut probes = 1usize;
    if !reproduces(scenario) {
        return ShrinkResult {
            scenario: scenario.clone(),
            iterations: probes,
            removed: 0,
            diff_from_pristine: spec_diff(scenario),
        };
    }
    let mut current = scenario.clone();
    let mut removed = 0usize;
    loop {
        let mut progressed = false;
        for candidate in candidates(&current) {
            if probes >= MAX_PROBES {
                break;
            }
            if candidate.spec.materialize().is_err() {
                continue;
            }
            probes += 1;
            if reproduces(&candidate) {
                current = candidate;
                removed += 1;
                progressed = true;
                break; // indices shifted; re-enumerate from the new current
            }
        }
        if !progressed || probes >= MAX_PROBES {
            break;
        }
    }
    ShrinkResult {
        diff_from_pristine: spec_diff(&current),
        scenario: current,
        iterations: probes,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::super::generate::{synthesize_one, DEFAULT_CORPUS_SEED};
    use super::*;

    #[test]
    fn shrinking_a_trivially_true_predicate_strips_the_world_bare() {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, 0);
        let result = shrink(&scenario, &mut |_| true);
        // Everything optional goes; what's left is the materialization
        // floor (program file, invoker's account, cwd).
        assert!(result.scenario.script.steps.is_empty());
        assert!(result.scenario.spec.symlinks.is_empty());
        assert!(result.scenario.spec.reg_keys.is_empty());
        assert!(result.removed > 0);
        result
            .scenario
            .spec
            .materialize()
            .expect("shrunk world still materializes");
    }

    #[test]
    fn shrinking_preserves_the_failing_property() {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, 1);
        // "Failure": the script still contains a check-then-use step.
        let fails = |s: &Scenario| {
            s.script
                .steps
                .iter()
                .any(|st| matches!(st, crate::corpus::BehaviorStep::StatThenWrite { .. }))
        };
        let result = shrink(&scenario, &mut |s| fails(s));
        assert!(fails(&result.scenario), "shrunk scenario lost the property");
        assert_eq!(
            result
                .scenario
                .script
                .steps
                .iter()
                .filter(|st| matches!(st, crate::corpus::BehaviorStep::StatThenWrite { .. }))
                .count(),
            1,
            "shrinker should keep exactly one reproducing step"
        );
    }

    #[test]
    fn rejected_input_returns_unshrunk() {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, 2);
        let result = shrink(&scenario, &mut |_| false);
        assert_eq!(result.scenario, scenario);
        assert_eq!(result.removed, 0);
    }
}
