//! The injection hook: delivers exactly one fault at exactly one point.
//!
//! Following the paper's step 6, a direct fault fires in the `before` hook
//! (the environment is perturbed, then the application interacts with it);
//! an indirect fault fires in the `after` hook (the application's received
//! value is perturbed before its internal entity sees it).

use shim_sync::sync::atomic::{AtomicBool, Ordering};
use shim_sync::sync::Arc;

use serde::{Deserialize, Serialize};

use epa_sandbox::error::SysResult;
use epa_sandbox::os::Os;
use epa_sandbox::syscall::{InteractionRef, Interceptor, SysReturn, Syscall};
use epa_sandbox::trace::SiteId;

use crate::perturb::{ConcreteFault, FaultPayload};

/// One planned injection: a concrete fault aimed at one occurrence of one
/// interaction site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// The targeted site.
    pub site: SiteId,
    /// Which execution of the site (0-based) to strike.
    pub occurrence: usize,
    /// The fault to inject.
    pub fault: ConcreteFault,
}

/// Shared flag reporting whether a hook's fault actually fired during the
/// run (a perturbed input point may not be reached under some faults).
#[derive(Debug, Clone, Default)]
pub struct Fired(Arc<AtomicBool>);

impl Fired {
    /// True when the fault was applied.
    pub fn get(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    fn set(&self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// The [`Interceptor`] that executes an [`InjectionPlan`].
#[derive(Debug)]
pub struct InjectionHook {
    plan: InjectionPlan,
    fired: Fired,
}

impl InjectionHook {
    /// Builds the hook and a handle for observing whether it fired.
    pub fn new(plan: InjectionPlan) -> (Self, Fired) {
        let fired = Fired::default();
        (
            InjectionHook {
                plan,
                fired: fired.clone(),
            },
            fired,
        )
    }

    /// Direct faults strike a specific occurrence of the site.
    fn matches_direct(&self, point: &InteractionRef) -> bool {
        point.site == self.plan.site && point.occurrence == self.plan.occurrence
    }

    /// Indirect faults strike the first interaction at the site whose
    /// declared input semantics match the fault's target semantics (a site
    /// may read several differently-shaped inputs; the Table 5 pattern is
    /// tied to the input kind, not to a positional index).
    fn matches_indirect(&self, point: &InteractionRef) -> bool {
        if point.site != self.plan.site {
            return false;
        }
        match self.plan.fault.semantic {
            Some(sem) => point.semantic == Some(sem),
            None => point.occurrence == self.plan.occurrence,
        }
    }
}

impl Interceptor for InjectionHook {
    fn before(&mut self, os: &mut Os, point: &InteractionRef, _call: &Syscall) {
        if self.fired.get() || !self.matches_direct(point) {
            return;
        }
        if let FaultPayload::Direct(df) = &self.plan.fault.payload {
            // A perturbation that cannot be applied (e.g. target path has no
            // parent) is treated as not-fired; the record will show it.
            if df.apply(os, point.pid).is_ok() {
                self.fired.set();
            }
        }
    }

    fn after(&mut self, _os: &mut Os, point: &InteractionRef, result: &mut SysResult<SysReturn>) {
        if self.fired.get() || !self.matches_indirect(point) {
            return;
        }
        if let FaultPayload::Indirect(f) = &self.plan.fault.payload {
            if let Ok(ret) = result {
                f.apply_to_return(ret);
                self.fired.set();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EaiCategory, IndirectKind};
    use crate::perturb::IndirectFault;
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::trace::InputSemantic;
    use std::collections::BTreeMap;

    fn world() -> Os {
        let mut os = Os::new();
        os.users
            .add("u", os.scenario.invoker, os.scenario.invoker_gid, "/home/u");
        os.fs
            .mkdir_p(
                "/home/u",
                os.scenario.invoker,
                os.scenario.invoker_gid,
                epa_sandbox::mode::Mode::new(0o755),
            )
            .unwrap();
        os
    }

    fn lengthen_plan(site: &str, occurrence: usize) -> InjectionPlan {
        InjectionPlan {
            site: SiteId::new(site),
            occurrence,
            fault: ConcreteFault {
                id: "indirect:test:lengthen".into(),
                category: EaiCategory::Indirect(IndirectKind::UserInput),
                semantic: Some(InputSemantic::UserFileName),
                description: "test".into(),
                payload: FaultPayload::Indirect(IndirectFault::Lengthen { by: 100 }),
            },
        }
    }

    #[test]
    fn indirect_fault_strikes_first_semantic_match() {
        // The site reads a flag (Opaque) before the file name; the
        // UserFileName-targeted fault must skip the flag and strike the name.
        let mut os = world();
        let (hook, fired) = InjectionHook::new(lengthen_plan("app:arg", 0));
        os.set_interceptor(Box::new(hook));
        let pid = os
            .spawn(
                os.scenario.invoker,
                None,
                vec!["-c".into(), "b".into()],
                BTreeMap::new(),
                "/",
            )
            .unwrap();
        let flag = os.sys_arg(pid, "app:arg", 0, InputSemantic::Opaque).unwrap();
        assert_eq!(flag.text(), "-c", "non-matching semantics untouched");
        assert!(!fired.get());
        let name = os.sys_arg(pid, "app:arg", 1, InputSemantic::UserFileName).unwrap();
        assert_eq!(name.len(), 101, "first matching input perturbed");
        assert!(fired.get());
    }

    #[test]
    fn fault_fires_at_most_once() {
        let mut os = world();
        let (hook, fired) = InjectionHook::new(lengthen_plan("app:arg", 0));
        os.set_interceptor(Box::new(hook));
        let pid = os
            .spawn(
                os.scenario.invoker,
                None,
                vec!["a".into(), "b".into()],
                BTreeMap::new(),
                "/",
            )
            .unwrap();
        os.sys_arg(pid, "app:arg", 0, InputSemantic::UserFileName).unwrap();
        let again = os.sys_arg(pid, "app:arg", 0, InputSemantic::UserFileName);
        // Occurrence numbering means site "app:arg" occurrence 0 happens once;
        // the second call is occurrence 1 and must be untouched.
        assert_eq!(again.unwrap().text(), "a");
        assert!(fired.get());
    }

    #[test]
    fn direct_fault_fires_before_the_call() {
        use crate::perturb::DirectFault;
        let mut os = world();
        os.fs
            .put_file(
                "/etc/cf",
                "genuine",
                Uid::ROOT,
                Gid::ROOT,
                epa_sandbox::mode::Mode::new(0o644),
            )
            .unwrap();
        let plan = InjectionPlan {
            site: SiteId::new("app:read"),
            occurrence: 0,
            fault: ConcreteFault {
                id: "direct:fs:content@/etc/cf".into(),
                category: EaiCategory::Other,
                semantic: None,
                description: "modify".into(),
                payload: FaultPayload::Direct(DirectFault::ModifyContent {
                    path: "/etc/cf".into(),
                    content: "perturbed".into(),
                }),
            },
        };
        let (hook, fired) = InjectionHook::new(plan);
        os.set_interceptor(Box::new(hook));
        let pid = os
            .spawn(os.scenario.invoker, None, vec![], BTreeMap::new(), "/")
            .unwrap();
        let got = os.sys_read_file(pid, "app:read", "/etc/cf").unwrap();
        assert_eq!(got.text(), "perturbed", "the read must observe the perturbed world");
        assert!(fired.get());
    }

    #[test]
    fn indirect_fault_does_not_fire_on_error_result() {
        let mut os = world();
        let (hook, fired) = InjectionHook::new(lengthen_plan("app:getenv", 0));
        os.set_interceptor(Box::new(hook));
        let pid = os
            .spawn(os.scenario.invoker, None, vec![], BTreeMap::new(), "/")
            .unwrap();
        let e = os.sys_getenv(pid, "app:getenv", "UNSET", InputSemantic::EnvValue);
        assert!(e.is_err());
        assert!(!fired.get(), "cannot perturb a value that was never produced");
    }
}
