//! # epa — Environment Perturbation Analysis
//!
//! A faithful, executable reproduction of Du & Mathur, *Testing for
//! Software Vulnerability Using Environment Perturbation* (DSN 2000):
//! security testing as fault injection on the environment of a program.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`sandbox`] — the simulated OS substrate (VFS, processes, network,
//!   registry, security-policy oracle), with copy-on-write world snapshots;
//! * [`core`] — the EAI fault model, fault catalog (paper Tables 5–6),
//!   injection engine, campaign runner, and coverage metrics (Figure 2);
//! * [`engine`] — the driver facade from `core`: declarative
//!   [`engine::WorldSpec`] worlds, frozen [`engine::Session`] snapshots,
//!   and batch [`engine::Suite`] execution with cross-app rollups;
//! * [`vulndb`] — the 195-entry vulnerability database and the EAI
//!   classifier behind paper Tables 1–4;
//! * [`apps`] — the model applications and worlds of the paper's case
//!   studies (`lpr`, `turnin`, the NT registry modules, and more), each
//!   exporting its world as a spec.
//!
//! See the repository `README.md` for a guided tour (including the
//! `Campaign` → `Session`/`Suite` migration notes), `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use epa_apps as apps;
pub use epa_core as core;
pub use epa_core::engine;
pub use epa_sandbox as sandbox;
pub use epa_vulndb as vulndb;
