//! The persistent content-addressed [`ResultStore`] backend.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   HEADER                        "epa-result-store v1"
//!   MANIFEST.json                 lockfile-style suite manifest (optional)
//!   v1/
//!     <scope:016x>/               one bucket per (application, fingerprint)
//!       BUCKET                    "epa-store-bucket v1 scope=<scope:016x>"
//!       <shard:02x>/              fanout on the key digest's high byte
//!         <digest:016x>.entry     one checksummed record per FaultKey
//! ```
//!
//! # Entry wire format
//!
//! Three lines — a versioned header, a checksum, a JSON body:
//!
//! ```text
//! epa-store-entry v1
//! checksum <fnv1a(body):016x>
//! {"scope":"<scope:016x>","key":"<canonical FaultKey text>","digest":{...}}
//! ```
//!
//! The body carries the **full canonical key text**, not just its 64-bit
//! digest, and [`DiskStore::load`] verifies it against the requested key:
//! a digest collision reads as a miss, never as the wrong run. The
//! checksum covers the body bytes exactly, so a truncated or bit-flipped
//! entry (a crash mid-write, a disk fault) is detected, logged, deleted,
//! and treated as a miss. Writes go to a same-directory temp file first
//! and `rename(2)` into place, so a reader never observes a partial
//! entry under POSIX rename atomicity.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime};

use serde::{Deserialize, Serialize};
use shim_sync::sync::atomic::{AtomicU64, Ordering};

use crate::engine::planner::{fnv1a, FaultKey, RunDigest};
use crate::store::ResultStore;

/// Version of the on-disk record format (store header, bucket headers and
/// entry headers all carry it). Bump on any incompatible change; readers
/// treat foreign versions as misses, never as parseable data.
pub const STORE_FORMAT_VERSION: u32 = 1;

/// The store-root header file name.
const STORE_HEADER_FILE: &str = "HEADER";

/// The per-bucket header file name.
const BUCKET_HEADER_FILE: &str = "BUCKET";

/// The first line of every entry.
fn entry_header() -> String {
    format!("epa-store-entry v{STORE_FORMAT_VERSION}")
}

/// The store-root header content.
fn store_header() -> String {
    format!("epa-result-store v{STORE_FORMAT_VERSION}\n")
}

/// The bucket header content for `scope`.
fn bucket_header(scope: u64) -> String {
    format!("epa-store-bucket v{STORE_FORMAT_VERSION} scope={scope:016x}\n")
}

/// The serialized body of one entry. `scope` is hex text (JSON numbers are
/// f64-lossy above 2^53; a fingerprint is a full 64-bit hash).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct EntryBody {
    scope: String,
    key: String,
    digest: RunDigest,
}

/// A parsed store entry, as returned by [`decode_entry`].
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedEntry {
    /// The memoization scope the entry belongs to.
    pub scope: u64,
    /// The canonical [`FaultKey`] text.
    pub key: String,
    /// The memoized run outcome.
    pub digest: RunDigest,
}

/// Why an entry failed to decode. Every variant is handled as a cache
/// miss by [`DiskStore::load`]; the distinction matters for logging and
/// for [`DiskStore::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntryError {
    /// The entry was written by a different (or unrecognizable) format
    /// version.
    Version {
        /// The header line actually found.
        found: String,
    },
    /// The body bytes do not match the recorded checksum — a truncated or
    /// bit-flipped entry (for example, a crash mid-write).
    Checksum,
    /// The entry is structurally unparseable (missing lines, bad hex,
    /// undeserializable body).
    Malformed(String),
}

impl std::fmt::Display for EntryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EntryError::Version { found } => {
                write!(f, "version mismatch (found `{found}`, want `{}`)", entry_header())
            }
            EntryError::Checksum => write!(f, "checksum mismatch (truncated or corrupted entry)"),
            EntryError::Malformed(why) => write!(f, "malformed entry: {why}"),
        }
    }
}

/// Serializes one `(scope, key, digest)` record into the entry wire
/// format. Deterministic: equal inputs produce byte-identical text.
pub fn encode_entry(scope: u64, key: &FaultKey, digest: &RunDigest) -> String {
    let body = serde_json::to_string(&EntryBody {
        scope: format!("{scope:016x}"),
        key: key.repr().to_string(),
        digest: digest.clone(),
    })
    .expect("store entries serialize infallibly");
    format!("{}\nchecksum {:016x}\n{body}\n", entry_header(), fnv1a(body.as_bytes()))
}

/// Parses entry text back into its record, verifying the version header
/// and the body checksum.
///
/// # Errors
///
/// [`EntryError::Version`] on a foreign format version,
/// [`EntryError::Checksum`] when the body fails its checksum, and
/// [`EntryError::Malformed`] for structural damage.
pub fn decode_entry(text: &str) -> Result<DecodedEntry, EntryError> {
    let mut parts = text.splitn(3, '\n');
    let header = parts.next().unwrap_or("");
    if header != entry_header() {
        if header.starts_with("epa-store-entry v") {
            return Err(EntryError::Version {
                found: header.to_string(),
            });
        }
        return Err(EntryError::Malformed(format!("unrecognized header `{header}`")));
    }
    let checksum_line = parts
        .next()
        .ok_or_else(|| EntryError::Malformed("missing checksum line".to_string()))?;
    let recorded = checksum_line
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| EntryError::Malformed(format!("bad checksum line `{checksum_line}`")))?;
    let rest = parts
        .next()
        .ok_or_else(|| EntryError::Malformed("missing body".to_string()))?;
    let body = rest.strip_suffix('\n').unwrap_or(rest);
    if fnv1a(body.as_bytes()) != recorded {
        return Err(EntryError::Checksum);
    }
    let parsed: EntryBody =
        serde_json::from_str(body).map_err(|e| EntryError::Malformed(format!("body does not parse: {e}")))?;
    let scope = u64::from_str_radix(&parsed.scope, 16)
        .map_err(|_| EntryError::Malformed(format!("bad scope `{}`", parsed.scope)))?;
    Ok(DecodedEntry {
        scope,
        key: parsed.key,
        digest: parsed.digest,
    })
}

/// Aggregate facts about a store directory, from [`DiskStore::stats`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Readable entries on disk.
    pub entries: usize,
    /// Total entry bytes.
    pub bytes: u64,
    /// Distinct scope buckets.
    pub buckets: usize,
    /// Buckets quarantined at open time (foreign or missing bucket header).
    pub quarantined_buckets: usize,
}

/// Retention policy for [`DiskStore::prune`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneOptions {
    /// Keep at most this many entries, evicting the least recently used
    /// (reads refresh an entry's timestamp best-effort). `None` = no cap.
    pub max_entries: Option<usize>,
    /// Drop entries unused for longer than this. `None` = no TTL.
    pub ttl: Option<Duration>,
}

/// What [`DiskStore::prune`] did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PruneReport {
    /// Entries examined.
    pub examined: usize,
    /// Entries removed because their age exceeded the TTL.
    pub expired: usize,
    /// Entries evicted (least recently used first) to satisfy the cap.
    pub evicted: usize,
    /// Entries remaining after the prune.
    pub remaining: usize,
}

/// What [`DiskStore::verify`] found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VerifyReport {
    /// Entries that decoded cleanly and live where their content says.
    pub ok: usize,
    /// Per-file damage descriptions (path: reason).
    pub corrupt: Vec<String>,
    /// Buckets quarantined at open time.
    pub quarantined: Vec<String>,
}

impl VerifyReport {
    /// True when nothing is damaged or quarantined.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty() && self.quarantined.is_empty()
    }
}

/// The persistent content-addressed [`ResultStore`]. See the module docs
/// for the layout and wire format.
///
/// All filesystem failures on the hot path degrade to misses or skipped
/// writes (with a stderr note): a broken disk slows the suite down, it
/// never breaks correctness.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    /// Scope-bucket directory names refused at open time (missing or
    /// foreign bucket header). Read-only after open.
    quarantined: BTreeSet<String>,
    /// Temp-file uniquifier for rename-into-place writes.
    seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// A fresh or empty directory is initialized with the store header. An
    /// existing store is validated: the root header must carry the current
    /// format version, and every scope bucket's header is checked — buckets
    /// with a missing or foreign header are quarantined (their entries read
    /// as misses and are never written through) rather than trusted.
    ///
    /// # Errors
    ///
    /// Filesystem errors, a root header of a different version, or a
    /// non-empty directory that is not a store (refused rather than
    /// adopted: the pruner deletes files, and it must never delete a
    /// directory the user did not dedicate to the store).
    pub fn open(root: impl AsRef<Path>) -> io::Result<DiskStore> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)?;
        let header_path = root.join(STORE_HEADER_FILE);
        match std::fs::read_to_string(&header_path) {
            Ok(found) => {
                if found != store_header() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{} is a v`{}` store, this build reads {}",
                            root.display(),
                            found.trim(),
                            store_header().trim()
                        ),
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                if std::fs::read_dir(&root)?.next().is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{} is non-empty and carries no store header; refusing to adopt it",
                            root.display()
                        ),
                    ));
                }
                std::fs::write(&header_path, store_header())?;
            }
            Err(e) => return Err(e),
        }
        let mut quarantined = BTreeSet::new();
        let buckets_root = root.join(format!("v{STORE_FORMAT_VERSION}"));
        if buckets_root.is_dir() {
            for bucket in std::fs::read_dir(&buckets_root)? {
                let bucket = bucket?.path();
                if !bucket.is_dir() {
                    continue;
                }
                let name = bucket.file_name().unwrap_or_default().to_string_lossy().to_string();
                let expected = u64::from_str_radix(&name, 16).map(bucket_header);
                let found = std::fs::read_to_string(bucket.join(BUCKET_HEADER_FILE)).ok();
                if expected.ok() != found {
                    eprintln!(
                        "epa-store: bucket {} has a missing or foreign header; quarantining it (entries read as misses)",
                        bucket.display()
                    );
                    quarantined.insert(name);
                }
            }
        }
        Ok(DiskStore {
            root,
            quarantined,
            seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The bucket directory of `scope`.
    fn bucket_dir(&self, scope: u64) -> PathBuf {
        self.root
            .join(format!("v{STORE_FORMAT_VERSION}"))
            .join(format!("{scope:016x}"))
    }

    /// The entry path of `(scope, key)`: bucket, then a fanout shard on
    /// the key digest's high byte, then the digest-named entry file.
    fn entry_path(&self, scope: u64, key: &FaultKey) -> PathBuf {
        let digest = key.digest();
        self.bucket_dir(scope)
            .join(format!("{:02x}", (digest >> 56) as u8))
            .join(format!("{digest:016x}.entry"))
    }

    /// Whether `scope`'s bucket was quarantined at open time.
    fn is_quarantined(&self, scope: u64) -> bool {
        self.quarantined.contains(&format!("{scope:016x}"))
    }

    /// Writes `text` to `path` atomically: a same-directory temp file,
    /// then rename into place. Returns any filesystem error for the
    /// caller to downgrade.
    fn write_atomic(&self, path: &Path, text: &str) -> io::Result<()> {
        let parent = path.parent().expect("entry paths always have a parent");
        std::fs::create_dir_all(parent)?;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let tmp = parent.join(format!(
            ".{}.{}.{seq}.tmp",
            path.file_name().unwrap_or_default().to_string_lossy(),
            std::process::id()
        ));
        std::fs::write(&tmp, text)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Walks every entry file in non-quarantined buckets.
    fn walk_entries(&self, f: &mut dyn FnMut(&Path, &std::fs::Metadata)) {
        let buckets_root = self.root.join(format!("v{STORE_FORMAT_VERSION}"));
        let Ok(buckets) = std::fs::read_dir(&buckets_root) else {
            return;
        };
        for bucket in buckets.flatten() {
            let bucket = bucket.path();
            let name = bucket.file_name().unwrap_or_default().to_string_lossy().to_string();
            if !bucket.is_dir() || self.quarantined.contains(&name) {
                continue;
            }
            let Ok(shards) = std::fs::read_dir(&bucket) else {
                continue;
            };
            for shard in shards.flatten() {
                let shard = shard.path();
                if !shard.is_dir() {
                    continue;
                }
                let Ok(entries) = std::fs::read_dir(&shard) else {
                    continue;
                };
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "entry") {
                        if let Ok(meta) = entry.metadata() {
                            f(&path, &meta);
                        }
                    }
                }
            }
        }
    }

    /// Aggregate store facts (walks the directory).
    pub fn stats(&self) -> DiskStats {
        let mut stats = DiskStats {
            quarantined_buckets: self.quarantined.len(),
            ..DiskStats::default()
        };
        let mut buckets = BTreeSet::new();
        self.walk_entries(&mut |path, meta| {
            stats.entries += 1;
            stats.bytes += meta.len();
            if let Some(bucket) = path.parent().and_then(Path::parent) {
                buckets.insert(bucket.to_path_buf());
            }
        });
        stats.buckets = buckets.len();
        stats
    }

    /// Applies a retention policy: TTL expiry first, then LRU eviction
    /// down to the cap. Reads refresh entry timestamps (best-effort), so
    /// recently replayed entries survive.
    pub fn prune(&self, options: PruneOptions) -> PruneReport {
        let now = SystemTime::now();
        let mut entries: Vec<(PathBuf, SystemTime)> = Vec::new();
        self.walk_entries(&mut |path, meta| {
            let mtime = meta.modified().unwrap_or(now);
            entries.push((path.to_path_buf(), mtime));
        });
        let mut report = PruneReport {
            examined: entries.len(),
            ..PruneReport::default()
        };
        if let Some(ttl) = options.ttl {
            entries.retain(|(path, mtime)| {
                let expired = now.duration_since(*mtime).is_ok_and(|age| age > ttl);
                if expired && std::fs::remove_file(path).is_ok() {
                    report.expired += 1;
                    return false;
                }
                true
            });
        }
        if let Some(cap) = options.max_entries {
            if entries.len() > cap {
                // Oldest first; evict until the cap holds.
                entries.sort_by_key(|(_, mtime)| *mtime);
                let excess = entries.len() - cap;
                for (path, _) in entries.drain(..excess) {
                    if std::fs::remove_file(&path).is_ok() {
                        report.evicted += 1;
                    }
                }
            }
        }
        report.remaining = report.examined - report.expired - report.evicted;
        report
    }

    /// Decodes and cross-checks every entry: version header, checksum,
    /// and that each entry lives in the bucket and under the file name
    /// its own content addresses.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport {
            quarantined: self.quarantined.iter().cloned().collect(),
            ..VerifyReport::default()
        };
        self.walk_entries(&mut |path, _| match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| decode_entry(&text).map_err(|e| e.to_string()))
        {
            Ok(decoded) => {
                let expected = self.entry_path(decoded.scope, &FaultKey::synthetic(&decoded.key));
                if expected == path {
                    report.ok += 1;
                } else {
                    report
                        .corrupt
                        .push(format!("{}: content addresses {}", path.display(), expected.display()));
                }
            }
            Err(e) => report.corrupt.push(format!("{}: {e}", path.display())),
        });
        report
    }
}

impl ResultStore for DiskStore {
    fn load(&self, scope: u64, key: &FaultKey) -> Option<RunDigest> {
        if self.is_quarantined(scope) {
            return None;
        }
        let path = self.entry_path(scope, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(e) => {
                eprintln!("epa-store: {}: unreadable ({e}); treating as a miss", path.display());
                return None;
            }
        };
        let decoded = match decode_entry(&text) {
            Ok(d) => d,
            Err(e) => {
                // Corruption (or version skew) is logged, the entry is
                // removed so a fresh execution can heal it, and the load
                // reads as a miss — never as a wrong digest.
                eprintln!(
                    "epa-store: {}: {e}; removing entry and treating as a miss",
                    path.display()
                );
                let _ = std::fs::remove_file(&path);
                return None;
            }
        };
        if decoded.scope != scope || decoded.key != key.repr() {
            // A 64-bit digest collision: the entry belongs to a different
            // key. Leave it in place, miss conservatively.
            eprintln!(
                "epa-store: {}: key text mismatch (digest collision); treating as a miss",
                path.display()
            );
            return None;
        }
        // Best-effort LRU touch: refresh the timestamp so the pruner sees
        // this entry as recently used.
        if let Ok(file) = std::fs::File::options().write(true).open(&path) {
            let _ = file.set_modified(SystemTime::now());
        }
        Some(decoded.digest)
    }

    fn save(&self, scope: u64, key: &FaultKey, digest: &RunDigest) {
        if self.is_quarantined(scope) {
            return;
        }
        let path = self.entry_path(scope, key);
        if path.exists() {
            // Content-addressed and idempotent: an existing entry is this
            // entry (corrupt entries are removed at load time).
            return;
        }
        let bucket = self.bucket_dir(scope);
        let bucket_marker = bucket.join(BUCKET_HEADER_FILE);
        if !bucket_marker.exists() {
            if let Err(e) = self.write_atomic(&bucket_marker, &bucket_header(scope)) {
                eprintln!(
                    "epa-store: {}: bucket header write failed ({e}); skipping save",
                    bucket.display()
                );
                return;
            }
        }
        if let Err(e) = self.write_atomic(&path, &encode_entry(scope, key, digest)) {
            eprintln!("epa-store: {}: write failed ({e}); entry not persisted", path.display());
        }
    }

    fn entries(&self) -> usize {
        let mut n = 0;
        self.walk_entries(&mut |_, _| n += 1);
        n
    }

    fn kind(&self) -> &'static str {
        "disk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> (PathBuf, DiskStore) {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("epa-disk-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = DiskStore::open(&dir).expect("fresh store opens");
        (dir, store)
    }

    fn key(text: &str) -> FaultKey {
        FaultKey::synthetic(text)
    }

    fn digest(exit: i32, events: usize) -> RunDigest {
        RunDigest {
            applied: true,
            exit: Some(exit),
            crashed: None,
            audit_events: events,
            violations: Vec::new(),
        }
    }

    #[test]
    fn entries_round_trip_through_the_wire_format() {
        let k = key("site#1|-|{\"payload\":true}");
        let d = digest(3, 17);
        let text = encode_entry(0xdead_beef, &k, &d);
        let decoded = decode_entry(&text).expect("own encoding decodes");
        assert_eq!(decoded.scope, 0xdead_beef);
        assert_eq!(decoded.key, k.repr());
        assert_eq!(decoded.digest, d);
        // Deterministic: re-encoding the decoded record is byte-identical.
        assert_eq!(encode_entry(decoded.scope, &key(&decoded.key), &decoded.digest), text);
    }

    #[test]
    fn save_load_round_trips_and_misses_are_clean() {
        let (dir, store) = temp_store("roundtrip");
        let k = key("a#0|-|{}");
        assert_eq!(store.load(7, &k), None);
        store.save(7, &k, &digest(0, 2));
        assert_eq!(store.load(7, &k), Some(digest(0, 2)));
        assert_eq!(store.load(8, &k), None, "scopes are separate buckets");
        assert_eq!(store.entries(), 1);
        assert_eq!(store.kind(), "disk");
        let stats = store.stats();
        assert_eq!((stats.entries, stats.buckets), (1, 1));
        assert!(stats.bytes > 0);
        assert!(store.verify().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_second_handle_sees_the_first_handles_entries() {
        // The cross-process contract, in-process: a fresh DiskStore over
        // the same directory serves everything a dropped one wrote.
        let (dir, store) = temp_store("reopen");
        let k = key("b#0|-|{}");
        store.save(1, &k, &digest(1, 5));
        drop(store);
        let reopened = DiskStore::open(&dir).expect("existing store reopens");
        assert_eq!(reopened.load(1, &k), Some(digest(1, 5)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_detected_removed_and_miss() {
        // Simulates a crash mid-write that somehow bypassed the atomic
        // rename (e.g. a torn sector): the checksum catches it.
        let (dir, store) = temp_store("truncate");
        let k = key("c#0|-|{}");
        store.save(2, &k, &digest(0, 9));
        let path = store.entry_path(2, &k);
        let full = std::fs::read_to_string(&path).expect("entry exists");
        std::fs::write(&path, &full[..full.len() - 10]).expect("truncate");
        assert_eq!(store.load(2, &k), None, "truncation must read as a miss");
        assert!(!path.exists(), "the damaged entry is removed so re-execution heals it");
        // The next save repopulates.
        store.save(2, &k, &digest(0, 9));
        assert_eq!(store.load(2, &k), Some(digest(0, 9)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_entries_are_detected_and_miss() {
        let (dir, store) = temp_store("bitflip");
        let k = key("d#0|-|{}");
        store.save(3, &k, &digest(0, 1));
        let path = store.entry_path(3, &k);
        let mut bytes = std::fs::read(&path).expect("entry exists");
        // Flip one bit inside the JSON body (after the two header lines).
        let body_start = bytes.iter().position(|&b| b == b'{').expect("body starts");
        bytes[body_start + 10] ^= 0x01;
        std::fs::write(&path, &bytes).expect("mangle");
        assert_eq!(store.load(3, &k), None, "a flipped bit must read as a miss");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_version_entries_are_rejected_not_parsed() {
        let (dir, store) = temp_store("version");
        let k = key("e#0|-|{}");
        store.save(4, &k, &digest(0, 1));
        let path = store.entry_path(4, &k);
        let text = std::fs::read_to_string(&path).expect("entry exists");
        let forged = text.replace("epa-store-entry v1", "epa-store-entry v2");
        assert!(matches!(decode_entry(&forged), Err(EntryError::Version { .. })));
        std::fs::write(&path, forged).expect("forge");
        assert_eq!(store.load(4, &k), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn digest_collisions_miss_instead_of_replaying_the_wrong_run() {
        // Forge an entry whose file name matches the probe key's digest
        // but whose body names a different canonical key: the full-text
        // comparison must refuse it (and leave the file alone).
        let (dir, store) = temp_store("collision");
        let probe = key("f#0|-|{}");
        let other = "g#0|-|{}";
        let path = store.entry_path(5, &probe);
        let body = serde_json::to_string(&EntryBody {
            scope: format!("{:016x}", 5u64),
            key: other.to_string(),
            digest: digest(0, 1),
        })
        .expect("serializes");
        let forged = format!("{}\nchecksum {:016x}\n{body}\n", entry_header(), fnv1a(body.as_bytes()));
        std::fs::create_dir_all(path.parent().expect("parent")).expect("shard dir");
        std::fs::write(&path, forged).expect("forge");
        assert_eq!(store.load(5, &probe), None);
        assert!(path.exists(), "a collision victim is not deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_refuses_foreign_headers_and_nonstore_directories() {
        let (dir, store) = temp_store("header");
        drop(store);
        std::fs::write(dir.join(STORE_HEADER_FILE), "epa-result-store v99\n").expect("forge header");
        let err = DiskStore::open(&dir).expect_err("foreign store version must not open");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);

        // A non-empty directory without a header is not adopted.
        let plain = std::env::temp_dir().join(format!("epa-disk-nonstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&plain);
        std::fs::create_dir_all(&plain).expect("dir");
        std::fs::write(plain.join("precious.txt"), "user data").expect("file");
        let err = DiskStore::open(&plain).expect_err("must not adopt a foreign directory");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&plain);
    }

    #[test]
    fn foreign_buckets_are_quarantined_for_loads_and_saves() {
        let (dir, store) = temp_store("bucket");
        let k = key("h#0|-|{}");
        store.save(6, &k, &digest(0, 1));
        // Forge the bucket header to a foreign version and reopen.
        let marker = store.bucket_dir(6).join(BUCKET_HEADER_FILE);
        std::fs::write(&marker, "epa-store-bucket v9 scope=0000000000000006\n").expect("forge");
        drop(store);
        let reopened = DiskStore::open(&dir).expect("store reopens");
        assert_eq!(reopened.load(6, &k), None, "quarantined buckets read as misses");
        reopened.save(6, &k, &digest(0, 1));
        assert_eq!(reopened.load(6, &k), None, "quarantined buckets refuse writes");
        assert_eq!(reopened.stats().quarantined_buckets, 1);
        assert!(!reopened.verify().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prune_applies_ttl_then_lru_cap() {
        let (dir, store) = temp_store("prune");
        for i in 0..6u64 {
            store.save(9, &key(&format!("k{i}#0|-|{{}}")), &digest(0, 1));
        }
        assert_eq!(store.entries(), 6);
        // Age two entries far into the past.
        let mut aged = 0;
        store.walk_entries(&mut |path, _| {
            if aged < 2 {
                let old = SystemTime::now() - Duration::from_secs(60 * 60 * 24 * 365);
                let f = std::fs::File::options().write(true).open(path).expect("open entry");
                f.set_modified(old).expect("age entry");
                aged += 1;
            }
        });
        let report = store.prune(PruneOptions {
            max_entries: Some(3),
            ttl: Some(Duration::from_secs(60 * 60)),
        });
        assert_eq!(report.examined, 6);
        assert_eq!(report.expired, 2, "both aged entries expire");
        assert_eq!(report.evicted, 1, "one more eviction reaches the cap");
        assert_eq!(report.remaining, 3);
        assert_eq!(store.entries(), 3);
        assert!(store.verify().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
