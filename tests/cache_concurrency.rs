//! Concurrency test: one [`ResultCache`] shared by two simultaneous suites.
//!
//! Two threads execute the *same* two-campaign suite at the same time over
//! one shared cache. The claim protocol must guarantee (a) no `(setup
//! fingerprint, FaultKey)` pair is ever executed twice — across both
//! threads, the total number of executed runs equals one cold suite's —
//! and (b) every replayed record is byte-identical (minus the replay flag)
//! to the verdicts of an exhaustive cache-free run.

use epa::apps::ScriptedApp;
use epa::core::campaign::CampaignOptions;
use epa::core::corpus::{synthesize_one, DEFAULT_CORPUS_SEED};
use epa::core::engine::planner::{Claim, FaultKey, ResultCache, RunDigest};
use epa::core::engine::{Session, Suite};
use epa::core::report::CampaignReport;

/// The two corpus worlds the racing suites run (fixed indices so the test
/// is deterministic; both provoke injectable sites).
const INDICES: [usize; 2] = [3, 5];

/// Strips the replay flag so replayed and executed twins compare equal.
fn executed_view(report: &CampaignReport) -> CampaignReport {
    let mut stripped = report.clone();
    for r in &mut stripped.records {
        r.cache_hit = false;
    }
    stripped
}

/// Builds the standard racing suite: both corpus apps, sequential within
/// the thread (the race under test is *between* threads, on the cache).
fn build_suite(cache: &ResultCache) -> Suite {
    let mut suite = Suite::new().with_result_cache(cache.clone()).sequential();
    for index in INDICES {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, index);
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        suite.register_session(ScriptedApp::for_scenario(&scenario), Session::from_setup(setup));
    }
    suite
}

/// The same registrations pinned to an explicit pooled worker count —
/// what the sharded-queue determinism test drives at 1/4/8 workers.
fn build_pooled_suite(workers: usize) -> Suite {
    let mut suite = Suite::new().with_result_cache(ResultCache::new()).with_workers(workers);
    for index in INDICES {
        let scenario = synthesize_one(DEFAULT_CORPUS_SEED, index);
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        suite.register_session(ScriptedApp::for_scenario(&scenario), Session::from_setup(setup));
    }
    suite
}

#[test]
fn pinned_worker_pools_stay_byte_identical_to_sequential() {
    // The sharded executor queue must reassemble plan order regardless of
    // how many workers raced over the shards: the full report — records,
    // replay flags, verdicts — serializes byte-identically to sequential.
    let sequential = build_suite(&ResultCache::new()).execute();
    let sequential_json = serde_json::to_string(&sequential).expect("serialize");
    for workers in [1usize, 4, 8] {
        let pooled = build_pooled_suite(workers).execute();
        assert_eq!(pooled, sequential, "suite at {workers} pinned workers diverged");
        let pooled_json = serde_json::to_string(&pooled).expect("serialize");
        assert_eq!(
            pooled_json.as_bytes(),
            sequential_json.as_bytes(),
            "suite at {workers} pinned workers must serialize byte-identically to sequential"
        );
    }
}

#[test]
fn panicking_job_neither_strands_waiters_nor_poisons_the_shared_cache() {
    // Regression test for worker-panic liveness: a claimant whose job
    // panics drops its token during the unwind, which both abandons the
    // claim *and* poisons the cache's internal mutex (the token's drop
    // holds the lock while the thread is panicking). Before the cache
    // tolerated poisoning, every later suite sharing this cache died on
    // `lock().unwrap()`; before abandoned claims woke waiters, a suite
    // blocked on the same key hung forever.
    let shared = ResultCache::new();
    let key = FaultKey::synthetic("panicky-site#0|-|{}");
    const SCOPE: u64 = 7;

    let claimant = std::thread::spawn({
        let shared = shared.clone();
        let key = key.clone();
        move || {
            let Claim::Execute(_token) = shared.begin(SCOPE, &key) else {
                panic!("the first claimant must win the claim");
            };
            panic!("injected job panic (expected; the token drops mid-unwind)");
        }
    });
    assert!(claimant.join().is_err(), "the claimant thread must have panicked");

    // Liveness: the abandoned claim is immediately reclaimable, and the
    // reclaimed slot settles into a replayable digest as usual.
    let Claim::Execute(token) = shared.begin(SCOPE, &key) else {
        panic!("an abandoned claim must be reclaimable, not stuck Pending");
    };
    token.fulfill(RunDigest {
        applied: true,
        exit: Some(0),
        crashed: None,
        audit_events: 0,
        violations: Vec::new(),
    });
    assert!(
        matches!(shared.begin(SCOPE, &key), Claim::Replay(_)),
        "the rescued slot must replay"
    );

    // The poisoned cache must still drive full racing suites to
    // completion, with verdicts identical to a cold run's.
    let cold = build_suite(&ResultCache::new()).execute();
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| build_suite(&shared).execute());
        let tb = scope.spawn(|| build_suite(&shared).execute());
        (ta.join().expect("suite thread A"), tb.join().expect("suite thread B"))
    });
    for (label, report) in [("A", &a), ("B", &b)] {
        assert_eq!(report.reports.len(), cold.reports.len());
        for (got, want) in report.reports.iter().zip(&cold.reports) {
            assert_eq!(
                executed_view(got),
                executed_view(want),
                "suite {label} over the poisoned cache diverged from the cold run"
            );
        }
    }
}

#[test]
fn simultaneous_suites_share_one_cache_without_duplicate_executions() {
    // Exhaustive cache-free baseline: the verdict set every path must find.
    let exhaustive: Vec<CampaignReport> = INDICES
        .iter()
        .map(|&index| {
            let scenario = synthesize_one(DEFAULT_CORPUS_SEED, index);
            let setup = scenario.spec.materialize().unwrap();
            let session = Session::from_setup(setup).with_options(CampaignOptions {
                dedup: false,
                ..CampaignOptions::default()
            });
            session.execute(&ScriptedApp::for_scenario(&scenario))
        })
        .collect();
    let injected: usize = exhaustive.iter().map(CampaignReport::injected).sum();
    assert!(injected > 0, "the corpus worlds must provoke injectable sites");

    // Cold single-threaded suite: the canonical execution count.
    let cold = build_suite(&ResultCache::new()).execute();
    let cold_runs: usize = cold.reports.iter().map(CampaignReport::runs_executed).sum();
    assert!(cold_runs > 0);

    // The race: two identical suites, one cache, simultaneous execution.
    let shared = ResultCache::new();
    let (a, b) = std::thread::scope(|scope| {
        let ta = scope.spawn(|| build_suite(&shared).execute());
        let tb = scope.spawn(|| build_suite(&shared).execute());
        (ta.join().expect("suite thread A"), tb.join().expect("suite thread B"))
    });

    // (a) No duplicate executions: each (fingerprint, FaultKey) ran exactly
    // once across both threads, so the executed-run totals sum to one cold
    // suite's worth — the claim protocol parked the loser of every race.
    let runs_a: usize = a.reports.iter().map(CampaignReport::runs_executed).sum();
    let runs_b: usize = b.reports.iter().map(CampaignReport::runs_executed).sum();
    assert_eq!(
        runs_a + runs_b,
        cold_runs,
        "racing suites re-executed a cached run (A={runs_a}, B={runs_b}, cold={cold_runs})"
    );
    let hits: usize = a.reports.iter().chain(&b.reports).map(CampaignReport::cache_hits).sum();
    let pruned: usize = a.reports.iter().chain(&b.reports).map(CampaignReport::pruned).sum();
    assert_eq!(
        runs_a + runs_b + hits + pruned,
        2 * injected,
        "every planned run is accounted for"
    );

    // (b) Byte-identical verdicts: both racing suites reproduce the
    // exhaustive cache-free reports exactly, replay flag aside.
    for (label, report) in [("A", &a), ("B", &b)] {
        assert_eq!(report.reports.len(), exhaustive.len());
        for (got, want) in report.reports.iter().zip(&exhaustive) {
            assert_eq!(
                &executed_view(got),
                want,
                "thread {label} diverged from the exhaustive baseline"
            );
        }
    }
}
