//! Property tests: corpus generator validity and shrinker soundness — every
//! synthesized scenario must validate and materialize, re-synthesis from the
//! same seed must be byte-identical (stable fingerprints), per-index
//! synthesis must be order-insensitive, and a shrunk scenario must still
//! reproduce the failing property it was shrunk against.

use epa::apps::ScriptedApp;
use epa::core::corpus::{shrink, synthesize, synthesize_one, CorpusConfig, Scenario, DEFAULT_CORPUS_SEED};
use epa::core::engine::Session;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Generator validity over randomized corpus seeds: every synthesized
    /// world passes spec validation *and* materializes into a live
    /// [`epa::core::campaign::TestSetup`], ids are unique, and a second
    /// synthesis from the same seed reproduces byte-identical fingerprints.
    #[test]
    fn synthesized_worlds_always_validate_and_resynthesis_is_stable(
        seed in 0u64..1_000_000_000,
        count in 1usize..8,
    ) {
        let config = CorpusConfig { seed, count };
        let corpus = synthesize(&config);
        prop_assert_eq!(corpus.len(), count);

        let mut ids = std::collections::BTreeSet::new();
        for scenario in &corpus {
            prop_assert!(ids.insert(scenario.id.clone()), "duplicate scenario id {}", scenario.id);
            if let Err(e) = scenario.spec.validate() {
                panic!(
                    "scenario {} (seed {:#x}) fails validation: {e}",
                    scenario.id, scenario.seed
                );
            }
            if let Err(e) = scenario.spec.materialize() {
                panic!(
                    "scenario {} (seed {:#x}) fails to materialize: {e}",
                    scenario.id, scenario.seed
                );
            }
            prop_assert!(!scenario.script.steps.is_empty(), "scripts drive at least one step");
        }

        let again = synthesize(&config);
        for (a, b) in corpus.iter().zip(&again) {
            prop_assert_eq!(a.seed, b.seed);
            prop_assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "re-synthesis from corpus seed {:#x} index {} drifted",
                seed,
                a.id.clone()
            );
        }
    }

    /// Per-index synthesis is order-insensitive: `synthesize_one(seed, i)`
    /// equals the i-th element of a batch synthesis, so a CI failure on
    /// scenario i replays without regenerating the whole corpus.
    #[test]
    fn per_index_synthesis_matches_the_batch(seed in 0u64..1_000_000_000) {
        let config = CorpusConfig { seed, count: 6 };
        let batch = synthesize(&config);
        for (i, from_batch) in batch.iter().enumerate() {
            let alone = synthesize_one(seed, i);
            prop_assert_eq!(alone.fingerprint(), from_batch.fingerprint());
            prop_assert_eq!(&alone.id, &from_batch.id);
        }
    }
}

/// Runs a scenario's scripted behavior through one sequential campaign and
/// reports whether any fault produced a policy violation.
fn violates(scenario: &Scenario) -> bool {
    let Ok(setup) = scenario.spec.materialize() else {
        return false;
    };
    let app = ScriptedApp::for_scenario(scenario);
    Session::from_setup(setup).execute(&app).violated() > 0
}

/// Shrinker soundness against a real, engine-backed property: pick a
/// corpus scenario that provokes violations, shrink it with "still
/// violates" as the failing predicate, and the minimized world must still
/// materialize, still violate, and be no larger than the original.
#[test]
fn shrunk_scenarios_still_reproduce_the_failing_property() {
    let vulnerable = (0..24)
        .map(|i| synthesize_one(DEFAULT_CORPUS_SEED, i))
        .find(violates)
        .expect("the default corpus contains violating scenarios");

    let original_steps = vulnerable.script.steps.len();
    let original_files = vulnerable.spec.files.len();
    let result = shrink(&vulnerable, &mut |candidate| violates(candidate));

    assert!(
        violates(&result.scenario),
        "the minimized scenario no longer reproduces the violation"
    );
    assert!(result.scenario.spec.materialize().is_ok());
    assert!(result.scenario.script.steps.len() <= original_steps);
    assert!(result.scenario.spec.files.len() <= original_files);
    assert!(
        !result.diff_from_pristine.is_empty(),
        "a violating world is never the pristine (empty) world"
    );
    assert!(result.iterations >= 1, "the shrinker confirms the input first");
    // Minimality at a fixpoint: dropping any single remaining script step
    // either breaks materialization or loses the violation. (Full 1-minimality
    // over every ingredient is the shrinker's own loop; spot-check steps.)
    for i in 0..result.scenario.script.steps.len() {
        let mut probe = result.scenario.clone();
        probe.script.steps.remove(i);
        assert!(
            probe.spec.materialize().is_err() || !violates(&probe),
            "step {i} of the shrunk scenario is removable — not a fixpoint"
        );
    }
}

/// An input that never reproduced the failure comes back unshrunk: the
/// shrinker refuses to "minimize" a scenario it cannot confirm.
#[test]
fn shrinker_returns_non_reproducing_input_unchanged() {
    let scenario = synthesize_one(DEFAULT_CORPUS_SEED, 0);
    let result = shrink(&scenario, &mut |_| false);
    assert_eq!(result.scenario.fingerprint(), scenario.fingerprint());
    assert_eq!(result.removed, 0);
}
