//! `cargo bench` target that regenerates every table and figure of the
//! paper (non-criterion, `harness = false`): the reproduction output lands
//! in the bench log alongside the performance numbers.

fn main() {
    println!("==== EPA paper reproduction (all tables and figures) ====\n");
    print!("{}", epa_bench::experiments::table1());
    println!();
    print!("{}", epa_bench::experiments::table2());
    println!();
    print!("{}", epa_bench::experiments::table3());
    println!();
    print!("{}", epa_bench::experiments::table4());
    println!();
    print!("{}", epa_bench::experiments::table5());
    println!();
    print!("{}", epa_bench::experiments::table6());
    println!();
    print!("{}", epa_bench::experiments::figure1().render());
    println!();
    print!("{}", epa_bench::experiments::figure2().render());
    println!();
    print!("{}", epa_bench::experiments::lpr_34().render());
    println!();
    print!("{}", epa_bench::experiments::turnin_41().render());
    println!();
    print!("{}", epa_bench::experiments::registry_42().render());
    println!();
    print!("{}", epa_bench::experiments::comparison().render());
    println!();
    print!("{}", epa_bench::experiments::placement().render());
    println!();
    print!("{}", epa_bench::experiments::patterns().render());
}
