//! Criterion performance benches: engine overhead and substrate hot paths.
//!
//! Absolute numbers are machine-local; the benches exist so regressions in
//! the injection engine or the VFS resolver are visible. Beyond the
//! criterion groups, `main` measures copy-on-write snapshot setup against
//! the old deep-clone per-fault setup on the lpr-scale world and writes the
//! result to `BENCH_engine.json` (the start of the perf trajectory; the
//! engine redesign requires snapshot ≥ 2× faster than deep clone there),
//! then measures the suite-wide pooled executor against the retired
//! one-thread-per-application fan-out and writes `BENCH_executor.json`
//! (the executor refactor requires pooled wall-clock ≤ the old fan-out and
//! a worker ceiling of `available_parallelism`), and finally measures the
//! incremental (audit-log-subscribed) oracle against the retired post-hoc
//! batch scan over the standard suite's full injected workload and writes
//! `BENCH_oracle.json` (the oracle redesign requires the incremental path
//! to be no slower than the batch scan), and finally measures the
//! dedup+memo planner against exhaustive re-execution over a two-pass
//! suite workload and writes `BENCH_planner.json` (the planner must
//! execute strictly fewer runs with a byte-identical verdict set).

use std::time::{Duration, Instant};

use criterion::{criterion_group, BatchSize, Criterion};

use epa_apps::{worlds, Lpr, Turnin};
use epa_core::campaign::{run_once, run_once_batch_oracle, CampaignOptions, TestSetup};
use epa_core::engine::{executor, Session};
use epa_core::inject::InjectionHook;
use epa_sandbox::app::Application;
use epa_sandbox::audit::AuditLog;
use epa_sandbox::cred::{Credentials, Gid, Uid};
use epa_sandbox::mode::Mode;
use epa_sandbox::os::Os;
use epa_sandbox::policy::detectors::{
    CustomDetector, DisclosureDetector, IntegrityDeleteDetector, IntegrityWriteDetector, MemoryCorruptionDetector,
    SpoofedActionDetector, TaintedPrivilegedOpDetector, UntrustedExecDetector,
};
use epa_sandbox::policy::OracleSet;
use epa_sandbox::syscall::Interceptor;

fn bench_campaigns(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(20);
    let lpr = Session::from_setup(worlds::lpr_world());
    g.bench_function("lpr_full_campaign", |b| b.iter(|| lpr.execute(&Lpr)));
    let turnin = Session::from_setup(worlds::turnin_world());
    g.bench_function("turnin_full_campaign", |b| b.iter(|| turnin.execute(&Turnin)));
    let turnin_parallel = turnin.clone().with_options(CampaignOptions {
        parallel: true,
        ..Default::default()
    });
    g.bench_function("turnin_full_campaign_parallel", |b| {
        b.iter(|| turnin_parallel.execute(&Turnin));
    });
    let suite = epa_apps::standard_suite().expect("valid specs");
    g.bench_function("standard_suite_all_eight_apps", |b| b.iter(|| suite.execute()));
    g.finish();
}

fn bench_setup(c: &mut Criterion) {
    let mut g = c.benchmark_group("setup");
    let setup = worlds::lpr_world();
    g.bench_function("lpr_world_snapshot_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.clone(), BatchSize::SmallInput);
    });
    g.bench_function("lpr_world_deep_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.deep_clone(), BatchSize::SmallInput);
    });
    g.finish();
}

fn bench_single_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("run");
    let setup = worlds::turnin_world();
    g.bench_function("turnin_clean_run", |b| b.iter(|| run_once(&setup, &Turnin, None)));
    g.bench_function("world_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.clone(), BatchSize::SmallInput);
    });
    g.finish();
}

fn bench_vfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfs");
    let mut fs = epa_sandbox::fs::Vfs::new();
    for d in 0..50 {
        for f in 0..10 {
            fs.put_file(
                &format!("/srv/data/dir{d}/file{f}"),
                "content",
                Uid::ROOT,
                Gid::ROOT,
                Mode::new(0o644),
            )
            .unwrap();
        }
    }
    fs.god_symlink("/srv/link", "/srv/data/dir25").unwrap();
    let cred = Credentials::user(Uid(1001), Gid(100));
    g.bench_function("resolve_deep_path", |b| {
        b.iter(|| fs.walk("/srv/data/dir25/file5", true, Some(&cred)).unwrap());
    });
    g.bench_function("resolve_through_symlink", |b| {
        b.iter(|| fs.walk("/srv/link/file5", true, Some(&cred)).unwrap());
    });
    g.bench_function("stat", |b| b.iter(|| fs.stat("/srv/data/dir10/file1", None).unwrap()));
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("vulndb");
    let db = epa_vulndb::entries();
    g.bench_function("classify_195_entries", |b| b.iter(|| epa_vulndb::compute(&db)));
    g.finish();
}

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> u128 {
    let _ = std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_nanos()
}

/// Measures snapshot-vs-deep-clone per-fault world setup on the lpr-scale
/// world and writes `BENCH_engine.json` next to the workspace root.
fn emit_bench_json() {
    let setup = worlds::lpr_world();
    let samples = 200;
    let snapshot_ns = median_ns(samples, || setup.world.clone());
    let deep_ns = median_ns(samples, || setup.world.deep_clone());
    let session = Session::from_setup(worlds::lpr_world());
    let campaign_ns = median_ns(20, || session.execute(&Lpr));
    let speedup = deep_ns as f64 / snapshot_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"world\": \"lpr\",\n  \"samples\": {samples},\n  \
         \"snapshot_clone_ns\": {snapshot_ns},\n  \"deep_clone_ns\": {deep_ns},\n  \
         \"snapshot_speedup\": {speedup:.2},\n  \"lpr_full_campaign_ns\": {campaign_ns}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "\nwrote {} (snapshot speedup over deep clone: {speedup:.1}x)",
            path.display()
        ),
        Err(e) => eprintln!("\nBENCH_engine.json not written: {e}"),
    }
    assert!(
        speedup >= 2.0,
        "copy-on-write snapshot setup must beat deep clone by >= 2x on the lpr world, got {speedup:.2}x"
    );
}

/// The pre-executor suite runner, reimplemented for comparison: one scoped
/// thread per registered application, each running its whole campaign
/// sequentially — `apps × campaign` threads regardless of the hardware.
fn per_app_fanout(cases: &[(&dyn Application, Session)]) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .iter()
            .map(|(app, session)| scope.spawn(move || session.execute(*app).injected()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("campaign thread")).sum()
    })
}

/// Measures the suite-wide pooled executor against the retired per-app
/// thread fan-out on the full eight-application suite, asserts the worker
/// ceiling and the no-regression bound, and writes `BENCH_executor.json`.
fn emit_executor_bench_json() {
    let cases: Vec<(&dyn Application, Session)> = vec![
        (&epa_apps::Lpr, Session::from_setup(worlds::lpr_world())),
        (&epa_apps::Turnin, Session::from_setup(worlds::turnin_world())),
        (&epa_apps::FontPurge, Session::from_setup(worlds::fontpurge_world())),
        (&epa_apps::NtLogon, Session::from_setup(worlds::ntlogon_world())),
        (&epa_apps::Fingerd, Session::from_setup(worlds::fingerd_world())),
        (&epa_apps::Authd, Session::from_setup(worlds::authd_world())),
        (&epa_apps::MailNotify, Session::from_setup(worlds::mailnotify_world())),
        (&epa_apps::Backupd, Session::from_setup(worlds::backupd_world())),
    ];
    let suite = epa_apps::standard_suite().expect("valid specs");
    let samples = 15;

    executor::reset_peak_live_workers();
    let mut pooled_injected = 0usize;
    let pooled_ns = median_ns(samples, || {
        pooled_injected = suite.execute().total_injected();
    });
    let available = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let peak_workers = executor::peak_live_workers();
    assert!(
        peak_workers <= available,
        "pooled suite must never exceed available_parallelism={available} workers, saw {peak_workers}"
    );

    let mut fanout_injected = 0usize;
    let fanout_ns = median_ns(samples, || {
        fanout_injected = per_app_fanout(&cases);
    });
    // Same workloads: both runners must inject the identical fault count.
    assert_eq!(pooled_injected, fanout_injected);
    let speedup = fanout_ns as f64 / pooled_ns.max(1) as f64;

    // The default path above sizes the pool from `available_parallelism`;
    // with one CPU that is the inline no-thread path and the high-water
    // gauge legitimately reads 0. Re-run at pinned multi-worker counts so
    // the gauge is exercised (and recorded non-zero) on any hardware.
    let overridden: Vec<(usize, usize)> = [4usize, 8]
        .iter()
        .map(|&w| {
            executor::reset_peak_live_workers();
            let suite_w = epa_apps::standard_suite().expect("valid specs").with_workers(w);
            assert_eq!(suite_w.execute().total_injected(), pooled_injected);
            let peak = executor::peak_live_workers();
            assert!(
                (1..=w).contains(&peak),
                "suite pinned to {w} workers must record a 1..={w} high-water, saw {peak}"
            );
            (w, peak)
        })
        .collect();
    let overridden_json = overridden
        .iter()
        .map(|(w, peak)| format!("    {{\"workers\": {w}, \"peak_live_workers\": {peak}}}"))
        .collect::<Vec<_>>()
        .join(",\n");

    let json = format!(
        "{{\n  \"bench\": \"executor\",\n  \"suite_apps\": {},\n  \"samples\": {samples},\n  \
         \"pooled_suite_ns\": {pooled_ns},\n  \"per_app_fanout_ns\": {fanout_ns},\n  \
         \"fanout_over_pooled\": {speedup:.2},\n  \"available_parallelism\": {available},\n  \
         \"peak_live_workers\": {peak_workers},\n  \"workers_override\": [\n{overridden_json}\n  ]\n}}\n",
        cases.len()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_executor.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (pooled suite vs per-app fan-out: {speedup:.2}x, peak workers {peak_workers}/{available})",
            path.display()
        ),
        Err(e) => eprintln!("BENCH_executor.json not written: {e}"),
    }
    // Medians on a machine with >= 8 cores can land near-equal (both paths
    // then reach full parallelism); a 5% margin keeps scheduler noise from
    // failing the no-regression gate without hiding a real slowdown.
    assert!(
        pooled_ns as f64 <= fanout_ns as f64 * 1.05,
        "pooled suite wall-clock must not exceed the old per-app fan-out \
         (pooled {pooled_ns}ns > fanout {fanout_ns}ns + 5% margin)"
    );
}

/// Which oracle evaluation the driver times.
#[derive(Clone, Copy, PartialEq)]
enum OracleMode {
    /// The production path: the set is subscribed to the audit log and
    /// observes events as they are pushed ([`run_once`]).
    Incremental,
    /// The retired monolith's shape: the run executes unobserved, then one
    /// fused pass over the completed log dispatches all rule families
    /// ([`run_once_batch_oracle`] — what `PolicyEngine::evaluate` did).
    BatchScan,
    /// The fully decomposed post-hoc worst case: each rule family
    /// independently re-scans the completed log — literal O(rules × events)
    /// passes; reported for context, not gated on.
    PerFamilyRescan,
}

/// Each rule family independently re-scans the completed log — see
/// [`OracleMode::PerFamilyRescan`]. Standard families only: no standard
/// suite world declares spec invariants (asserted against the fused scan
/// below would otherwise undercount).
fn per_family_rescan(log: &AuditLog) -> usize {
    let families: [OracleSet; 8] = [
        OracleSet::empty().with(Box::new(IntegrityWriteDetector::default())),
        OracleSet::empty().with(Box::new(IntegrityDeleteDetector::default())),
        OracleSet::empty().with(Box::new(DisclosureDetector::default())),
        OracleSet::empty().with(Box::new(UntrustedExecDetector::default())),
        OracleSet::empty().with(Box::new(TaintedPrivilegedOpDetector::default())),
        OracleSet::empty().with(Box::new(SpoofedActionDetector::default())),
        OracleSet::empty().with(Box::new(MemoryCorruptionDetector::default())),
        OracleSet::empty().with(Box::new(CustomDetector::default())),
    ];
    families.into_iter().map(|set| set.evaluate_log(log).len()).sum()
}

/// One application run with no oracle attached (the retired engine's run
/// phase; judgment happens afterwards in [`per_family_rescan`]).
fn run_unjudged(setup: &TestSetup, app: &dyn Application, hook: Option<Box<dyn Interceptor>>) -> Os {
    let mut os = setup.world.clone();
    if let Some(h) = hook {
        os.set_interceptor(h);
    }
    let Ok(pid) = os.spawn(
        setup.invoker,
        setup.program.as_deref(),
        setup.args.clone(),
        setup.env.clone(),
        &setup.cwd,
    ) else {
        return os;
    };
    if let Ok(code) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| app.run(&mut os, pid))) {
        os.set_exit(pid, code);
    }
    os
}

/// Runs the standard suite's whole injected workload — clean run plus every
/// planned `(site, occurrence, fault)` job of every application — through
/// the chosen oracle mode, returning the total verdict count.
fn drive_oracle(
    cases: &[(&dyn Application, Session, Vec<epa_core::inject::InjectionPlan>)],
    mode: OracleMode,
) -> usize {
    let mut verdicts = 0usize;
    for (app, session, jobs) in cases {
        let hooks = std::iter::once(None).chain(
            jobs.iter()
                .map(|job| Some(Box::new(InjectionHook::new(job.clone()).0) as Box<dyn Interceptor>)),
        );
        for hook in hooks {
            verdicts += match mode {
                OracleMode::Incremental => run_once(session.setup(), *app, hook).violations.len(),
                OracleMode::BatchScan => run_once_batch_oracle(session.setup(), *app, hook).violations.len(),
                OracleMode::PerFamilyRescan => per_family_rescan(&run_unjudged(session.setup(), *app, hook).audit),
            };
        }
    }
    verdicts
}

/// Measures the incremental (subscription) oracle against the retired
/// batch re-scan over the standard suite's full injected workload, asserts
/// verdict-count equality and the no-regression bound, and writes
/// `BENCH_oracle.json`.
fn emit_oracle_bench_json() {
    let cases: Vec<(&dyn Application, Session, Vec<epa_core::inject::InjectionPlan>)> = vec![
        (&epa_apps::Lpr, Session::from_setup(worlds::lpr_world()), Vec::new()),
        (
            &epa_apps::Turnin,
            Session::from_setup(worlds::turnin_world()),
            Vec::new(),
        ),
        (
            &epa_apps::FontPurge,
            Session::from_setup(worlds::fontpurge_world()),
            Vec::new(),
        ),
        (
            &epa_apps::NtLogon,
            Session::from_setup(worlds::ntlogon_world()),
            Vec::new(),
        ),
        (
            &epa_apps::Fingerd,
            Session::from_setup(worlds::fingerd_world()),
            Vec::new(),
        ),
        (&epa_apps::Authd, Session::from_setup(worlds::authd_world()), Vec::new()),
        (
            &epa_apps::MailNotify,
            Session::from_setup(worlds::mailnotify_world()),
            Vec::new(),
        ),
        (
            &epa_apps::Backupd,
            Session::from_setup(worlds::backupd_world()),
            Vec::new(),
        ),
    ];
    // Plan once, outside the timed region: both paths replay the identical
    // job list, so the measurement isolates oracle evaluation + run cost.
    let cases: Vec<_> = cases
        .into_iter()
        .map(|(app, session, _)| {
            let jobs = session.plan(app).jobs();
            (app, session, jobs)
        })
        .collect();
    let samples = 15;

    let mut incremental_verdicts = 0usize;
    let incremental_ns = median_ns(samples, || {
        incremental_verdicts = drive_oracle(&cases, OracleMode::Incremental);
    });
    let mut batch_verdicts = 0usize;
    let batch_ns = median_ns(samples, || {
        batch_verdicts = drive_oracle(&cases, OracleMode::BatchScan);
    });
    let rescan_ns = median_ns(samples, || {
        drive_oracle(&cases, OracleMode::PerFamilyRescan);
    });
    // Same workload, same rules: both judged paths must report identical
    // verdicts (the per-family rescan runs standard families only and is
    // timed for context, not counted).
    assert_eq!(incremental_verdicts, batch_verdicts);
    let ratio = batch_ns as f64 / incremental_ns.max(1) as f64;
    let rescan_ratio = rescan_ns as f64 / incremental_ns.max(1) as f64;

    // Suite wall-clock is dominated by the application runs themselves, so
    // the comparison above resolves "no regression", not the oracle itself.
    // Amplify the oracle-only cost on one big log — the suite's combined
    // event stream, replicated — where the single streamed pass (what the
    // subscription does during the run) is measurably distinguishable from
    // the retired O(rules × events) per-family re-scan.
    let mut big = AuditLog::new();
    while big.len() < 50_000 {
        for (app, session, jobs) in &cases {
            let os = run_unjudged(session.setup(), *app, None);
            for (_, ev) in os.audit.iter() {
                big.push(ev.clone());
            }
            if let Some(job) = jobs.first() {
                let (hook, _) = InjectionHook::new(job.clone());
                let os = run_unjudged(session.setup(), *app, Some(Box::new(hook)));
                for (_, ev) in os.audit.iter() {
                    big.push(ev.clone());
                }
            }
        }
    }
    let mut stream_verdicts = 0usize;
    let stream_ns = median_ns(samples, || {
        let mut set = OracleSet::standard();
        set.observe_log(&big);
        stream_verdicts = set.finish().len();
    });
    let mut family_verdicts = 0usize;
    let family_ns = median_ns(samples, || {
        family_verdicts = per_family_rescan(&big);
    });
    assert_eq!(stream_verdicts, family_verdicts);
    let oracle_ratio = family_ns as f64 / stream_ns.max(1) as f64;

    let total_jobs: usize = cases.iter().map(|(_, _, jobs)| jobs.len() + 1).sum();
    let json = format!(
        "{{\n  \"bench\": \"oracle\",\n  \"suite_apps\": {},\n  \"runs_per_sample\": {total_jobs},\n  \
         \"samples\": {samples},\n  \"incremental_ns\": {incremental_ns},\n  \"batch_scan_ns\": {batch_ns},\n  \
         \"per_family_rescan_ns\": {rescan_ns},\n  \"batch_over_incremental\": {ratio:.2},\n  \
         \"rescan_over_incremental\": {rescan_ratio:.2},\n  \"verdicts\": {incremental_verdicts},\n  \
         \"oracle_only_events\": {},\n  \"oracle_single_pass_ns\": {stream_ns},\n  \
         \"oracle_per_family_rescan_ns\": {family_ns},\n  \"per_family_over_single_pass\": {oracle_ratio:.2}\n}}\n",
        cases.len(),
        big.len()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_oracle.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (suite: batch/incremental {ratio:.2}x; oracle-only on {} events: \
             per-family/single-pass {oracle_ratio:.2}x; {incremental_verdicts} verdicts)",
            path.display(),
            big.len()
        ),
        Err(e) => eprintln!("BENCH_oracle.json not written: {e}"),
    }
    // Two gates. (1) End to end, the subscription must not slow the suite
    // down relative to the retired fused post-run scan. Oracle evaluation is
    // noise next to the shared run cost, so the two arms are equal-cost by
    // design (measured ~1.00x) — a 10% margin keeps scheduler jitter from
    // failing the gate while still catching any real per-event overhead,
    // which the oracle-only gate below bounds far more tightly.
    assert!(
        incremental_ns as f64 <= batch_ns as f64 * 1.10,
        "incremental oracle must not be slower than the retired batch scan \
         (incremental {incremental_ns}ns > batch {batch_ns}ns + 10% margin)"
    );
    // (2) At oracle-only granularity, the single streamed pass must beat
    // the O(rules × events) per-family re-scan it replaced.
    assert!(
        stream_ns as f64 <= family_ns as f64 * 1.05,
        "single-pass oracle must not be slower than the per-family re-scan \
         (single {stream_ns}ns > per-family {family_ns}ns + 5% margin)"
    );
}

/// One comparable line per record: identity plus the serialized verdicts.
/// Two suite reports with equal digests found exactly the same violations
/// on exactly the same jobs — the planner's no-lost-detections criterion.
fn verdict_set(report: &epa_core::engine::suite::SuiteReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for r in &report.reports {
        for rec in &r.records {
            let verdicts = serde_json::to_string(&rec.violations).expect("verdicts serialize");
            let _ = writeln!(
                out,
                "{}|{}|{}|{}|{verdicts}",
                r.app, rec.site, rec.occurrence, rec.fault_id
            );
        }
    }
    out
}

/// Measures the dedup+memo planner against exhaustive re-execution over a
/// cross-run workload — the eight-application standard suite executed
/// twice, a regression re-run's shape. The exhaustive baseline (dedup off,
/// a cold cache per pass) re-executes every `(site, occurrence, fault)`
/// job both times; the planner suite keeps its suite-scoped `ResultCache`
/// across the passes, so the second pass replays entirely from memo.
/// Asserts strictly fewer runs executed, byte-identical verdict sets, and
/// unchanged suite totals, then writes `BENCH_planner.json`.
fn emit_planner_bench_json() {
    let exhaustive_options = CampaignOptions {
        dedup: false,
        ..Default::default()
    };
    let fresh_exhaustive = || epa_apps::standard_suite_with_options(exhaustive_options.clone()).expect("valid specs");

    // Deterministic counts, outside the timed region.
    let planner_suite = epa_apps::standard_suite().expect("valid specs");
    let p1 = planner_suite.execute();
    let p2 = planner_suite.execute();
    let e1 = fresh_exhaustive().execute();
    let e2 = fresh_exhaustive().execute();

    // The planner must not change a single number the paper reports…
    assert_eq!(p1.total_injected(), e1.total_injected());
    assert_eq!(p1.total_violated(), e1.total_violated());
    assert_eq!(p2.total_injected(), e2.total_injected());
    assert_eq!(p2.total_violated(), e2.total_violated());
    // …and must find the exact verdict set of exhaustive execution.
    assert_eq!(
        verdict_set(&p1),
        verdict_set(&e1),
        "pass 1 verdicts must be byte-identical"
    );
    assert_eq!(
        verdict_set(&p2),
        verdict_set(&e2),
        "pass 2 verdicts must be byte-identical"
    );

    let exhaustive_runs = e1.total_runs_executed() + e2.total_runs_executed();
    let planner_runs = p1.total_runs_executed() + p2.total_runs_executed();
    let planner_hits = p1.total_cache_hits() + p2.total_cache_hits();
    assert_eq!(
        p2.total_runs_executed(),
        0,
        "the second memoized pass must replay entirely from cache"
    );
    assert!(
        planner_runs < exhaustive_runs,
        "dedup+memo must execute strictly fewer runs ({planner_runs} vs {exhaustive_runs})"
    );

    let samples = 9;
    let planner_ns = median_ns(samples, || {
        let suite = epa_apps::standard_suite().expect("valid specs");
        let _ = suite.execute();
        suite.execute().total_runs_executed()
    });
    let exhaustive_ns = median_ns(samples, || {
        let _ = fresh_exhaustive().execute();
        fresh_exhaustive().execute().total_runs_executed()
    });
    let speedup = exhaustive_ns as f64 / planner_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"planner\",\n  \"suite_apps\": {},\n  \"passes\": 2,\n  \"samples\": {samples},\n  \
         \"exhaustive_runs_executed\": {exhaustive_runs},\n  \"planner_runs_executed\": {planner_runs},\n  \
         \"planner_cache_hits\": {planner_hits},\n  \"verdicts\": {},\n  \
         \"verdict_sets_identical\": true,\n  \"exhaustive_ns\": {exhaustive_ns},\n  \
         \"planner_ns\": {planner_ns},\n  \"exhaustive_over_planner\": {speedup:.2}\n}}\n",
        p1.reports.len(),
        p1.total_violated() + p2.total_violated()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_planner.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (planner {planner_runs} runs vs exhaustive {exhaustive_runs}; \
             {planner_hits} replays; {speedup:.2}x wall-clock)",
            path.display()
        ),
        Err(e) => eprintln!("BENCH_planner.json not written: {e}"),
    }
    // The two-pass wall-clock gate: replaying a pass must not be slower
    // than re-executing it (5% margin for scheduler noise, as elsewhere).
    assert!(
        planner_ns as f64 <= exhaustive_ns as f64 * 1.05,
        "memoized two-pass suite must not be slower than exhaustive \
         (planner {planner_ns}ns > exhaustive {exhaustive_ns}ns + 5% margin)"
    );
}

criterion_group!(
    benches,
    bench_campaigns,
    bench_setup,
    bench_single_run,
    bench_vfs,
    bench_classifier
);

// A hand-rolled `main` instead of `criterion_main!`: the criterion groups
// run first, then the snapshot-vs-deep-clone measurement is written to
// BENCH_engine.json, the pooled-executor-vs-fanout measurement to
// BENCH_executor.json, the incremental-vs-batch oracle measurement to
// BENCH_oracle.json, and the dedup+memo planner measurement to
// BENCH_planner.json.
fn main() {
    benches();
    emit_bench_json();
    emit_executor_bench_json();
    emit_oracle_bench_json();
    emit_planner_bench_json();
}
