//! Quickstart: test a 15-line SUID program for environment-fault tolerance.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program is a minimal spool writer with the classic naive-`creat`
//! flaw. The campaign traces its interaction points, injects the paper's
//! Table 5/6 faults, and reports coverage plus every violation found.

use epa::core::engine::{Session, WorldSpec};
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::os::{Os, ScenarioMeta};
use epa::sandbox::process::Pid;
use epa::sandbox::trace::InputSemantic;

/// A tiny SUID-root program: read a message, spool it.
struct SpoolIt;

impl Application for SpoolIt {
    fn name(&self) -> &'static str {
        "spoolit"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(msg) = os.sys_arg(pid, "spoolit:arg", 0, InputSemantic::UserFileName) else {
            return 2;
        };
        // The flaw: create-or-truncate with no O_EXCL and no lstat.
        match os.sys_write_file(pid, "spoolit:create", "/var/spool/msg", msg, 0o660) {
            Ok(()) => 0,
            Err(_) => 1,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Declare the world as data: users, a spool directory, protected
    //    system files, the SUID program file, and how it is invoked.
    let scenario = ScenarioMeta::default();
    let spec = WorldSpec::builder()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
        .dir("/var/spool", Uid::ROOT, Gid::ROOT, 0o755)
        .root_file("/etc/passwd", "root:x:0:0:", 0o644)
        .root_file("/etc/shadow", "root:HASH", 0o600)
        .suid_root_program("/usr/bin/spoolit")
        .args(["hello world"])
        .build();

    // 2. Freeze it into a session: the spec is validated once, and every
    //    run starts from a copy-on-write snapshot of the pristine world.
    let session = Session::new(&spec)?;

    // 3. Run the environment-perturbation campaign (paper §3.3).
    let report = session.execute(&SpoolIt);

    // 4. Read the verdict.
    println!("{}", report.render_text());
    println!(
        "`spoolit` tolerated {} of {} injected environment faults.",
        report.injected() - report.violated(),
        report.injected()
    );
    Ok(())
}
