//! Errno-style error type returned by every sandbox syscall.
//!
//! The sandbox mirrors the POSIX convention that system calls fail with a
//! small closed set of error numbers plus human-readable context. Model
//! applications are written exactly like their real counterparts: they
//! inspect the [`Errno`] and take an error-handling path (print a message,
//! clean up, exit). Environment perturbations frequently manifest as one of
//! these errors, so the *shape* of the error surface is part of the fidelity
//! of the reproduction.

use std::fmt;

use serde::{Deserialize, Serialize};

/// POSIX-like error numbers understood by the sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Errno {
    /// No such file or directory.
    Enoent,
    /// Permission denied.
    Eacces,
    /// Operation not permitted (ownership / privilege checks).
    Eperm,
    /// File exists (e.g. `O_CREAT | O_EXCL` on an existing path).
    Eexist,
    /// A path component was not a directory.
    Enotdir,
    /// Target is a directory (e.g. writing to a directory inode).
    Eisdir,
    /// Too many levels of symbolic links.
    Eloop,
    /// Invalid argument.
    Einval,
    /// Directory not empty.
    Enotempty,
    /// Bad file descriptor / stale handle.
    Ebadf,
    /// Connection refused by the remote service.
    Econnrefused,
    /// No route to host (DNS failure, network partition).
    Ehostunreach,
    /// Resource temporarily unavailable (used for exhausted run budgets).
    Eagain,
    /// Function not implemented.
    Enosys,
    /// File name too long.
    Enametoolong,
    /// No message of the desired type (empty IPC queue).
    Enomsg,
}

impl Errno {
    /// The conventional symbolic name, e.g. `ENOENT`.
    pub fn symbol(self) -> &'static str {
        match self {
            Errno::Enoent => "ENOENT",
            Errno::Eacces => "EACCES",
            Errno::Eperm => "EPERM",
            Errno::Eexist => "EEXIST",
            Errno::Enotdir => "ENOTDIR",
            Errno::Eisdir => "EISDIR",
            Errno::Eloop => "ELOOP",
            Errno::Einval => "EINVAL",
            Errno::Enotempty => "ENOTEMPTY",
            Errno::Ebadf => "EBADF",
            Errno::Econnrefused => "ECONNREFUSED",
            Errno::Ehostunreach => "EHOSTUNREACH",
            Errno::Eagain => "EAGAIN",
            Errno::Enosys => "ENOSYS",
            Errno::Enametoolong => "ENAMETOOLONG",
            Errno::Enomsg => "ENOMSG",
        }
    }

    /// The classic `strerror` message.
    pub fn message(self) -> &'static str {
        match self {
            Errno::Enoent => "no such file or directory",
            Errno::Eacces => "permission denied",
            Errno::Eperm => "operation not permitted",
            Errno::Eexist => "file exists",
            Errno::Enotdir => "not a directory",
            Errno::Eisdir => "is a directory",
            Errno::Eloop => "too many levels of symbolic links",
            Errno::Einval => "invalid argument",
            Errno::Enotempty => "directory not empty",
            Errno::Ebadf => "bad file descriptor",
            Errno::Econnrefused => "connection refused",
            Errno::Ehostunreach => "no route to host",
            Errno::Eagain => "resource temporarily unavailable",
            Errno::Enosys => "function not implemented",
            Errno::Enametoolong => "file name too long",
            Errno::Enomsg => "no message of desired type",
        }
    }
}

impl fmt::Display for Errno {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.symbol(), self.message())
    }
}

/// Error type carried by every fallible sandbox operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SysError {
    /// The error number.
    pub errno: Errno,
    /// Free-form context, usually the offending path or object.
    pub context: String,
}

impl SysError {
    /// Creates an error with context.
    ///
    /// # Examples
    ///
    /// ```
    /// use epa_sandbox::error::{Errno, SysError};
    /// let e = SysError::new(Errno::Enoent, "/etc/nothing");
    /// assert_eq!(e.errno, Errno::Enoent);
    /// ```
    pub fn new(errno: Errno, context: impl Into<String>) -> Self {
        SysError {
            errno,
            context: context.into(),
        }
    }

    /// True when the error is `ENOENT`.
    pub fn is_not_found(&self) -> bool {
        self.errno == Errno::Enoent
    }

    /// True when the error is a permission failure (`EACCES` or `EPERM`).
    pub fn is_permission(&self) -> bool {
        matches!(self.errno, Errno::Eacces | Errno::Eperm)
    }
}

impl fmt::Display for SysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.context.is_empty() {
            write!(f, "{}", self.errno)
        } else {
            write!(f, "{}: {}", self.context, self.errno)
        }
    }
}

impl std::error::Error for SysError {}

/// Result alias used across the sandbox.
pub type SysResult<T> = Result<T, SysError>;

/// Shorthand constructor: `syserr!(Enoent, "/path/{}", x)`.
#[macro_export]
macro_rules! syserr {
    ($errno:ident, $($arg:tt)*) => {
        $crate::error::SysError::new($crate::error::Errno::$errno, format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context_and_symbol() {
        let e = SysError::new(Errno::Eacces, "/etc/shadow");
        let s = e.to_string();
        assert!(s.contains("/etc/shadow"));
        assert!(s.contains("EACCES"));
    }

    #[test]
    fn display_without_context() {
        let e = SysError::new(Errno::Eloop, "");
        assert!(e.to_string().starts_with("ELOOP"));
    }

    #[test]
    fn predicates() {
        assert!(SysError::new(Errno::Enoent, "x").is_not_found());
        assert!(SysError::new(Errno::Eacces, "x").is_permission());
        assert!(SysError::new(Errno::Eperm, "x").is_permission());
        assert!(!SysError::new(Errno::Eexist, "x").is_permission());
    }

    #[test]
    fn macro_builds_error() {
        let e = syserr!(Enotdir, "bad component in {}", "/a/b");
        assert_eq!(e.errno, Errno::Enotdir);
        assert!(e.context.contains("/a/b"));
    }

    #[test]
    fn every_errno_has_distinct_symbol() {
        let all = [
            Errno::Enoent,
            Errno::Eacces,
            Errno::Eperm,
            Errno::Eexist,
            Errno::Enotdir,
            Errno::Eisdir,
            Errno::Eloop,
            Errno::Einval,
            Errno::Enotempty,
            Errno::Ebadf,
            Errno::Econnrefused,
            Errno::Ehostunreach,
            Errno::Eagain,
            Errno::Enosys,
            Errno::Enametoolong,
            Errno::Enomsg,
        ];
        let mut symbols: Vec<_> = all.iter().map(|e| e.symbol()).collect();
        symbols.sort();
        symbols.dedup();
        assert_eq!(symbols.len(), all.len());
    }
}
