//! Scenario-declared invariants as *data*.
//!
//! An [`InvariantSpec`] is a serializable description of a custom oracle
//! check. Where applications previously could only signal scenario
//! invariants from inside their own code (via
//! [`crate::os::Os::emit_custom`], an opaque in-code check), a world spec
//! now *declares* its invariants next to its files and users: the spec
//! rides along in the serialized `WorldSpec`, survives round-trips, and is
//! compiled into a [`Detector`] registered on the run's
//! [`super::OracleSet`].

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::audit::AuditEvent;
use crate::intern::{self, PathSym};

use super::{Detector, Evidence, Verdict, Violation, ViolationKind};

/// One declarative custom invariant. Compile it with
/// [`InvariantSpec::detector`]; verdicts surface as
/// [`ViolationKind::Custom`] with rule `invariant:<label>`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantSpec {
    /// The named path must not be written or deleted during the run.
    FilePristine {
        /// Absolute physical path that must stay untouched.
        path: String,
    },
    /// No program under the given path prefix may be executed.
    ForbidExec {
        /// Absolute path prefix (`/tmp` forbids `/tmp/...` binaries).
        prefix: String,
    },
    /// The named in-application check (a `Custom` audit event with this
    /// rule id) must run at least once — a run that never reaches the check
    /// is itself a violation (e.g. "authentication must happen").
    RequireRule {
        /// The `Custom` event rule id that must appear.
        rule: String,
    },
}

impl InvariantSpec {
    /// Declares that `path` must stay untouched.
    pub fn file_pristine(path: impl Into<String>) -> Self {
        InvariantSpec::FilePristine { path: path.into() }
    }

    /// Declares that nothing under `prefix` may be executed.
    pub fn forbid_exec(prefix: impl Into<String>) -> Self {
        InvariantSpec::ForbidExec { prefix: prefix.into() }
    }

    /// Declares that the in-application check `rule` must run.
    pub fn require_rule(rule: impl Into<String>) -> Self {
        InvariantSpec::RequireRule { rule: rule.into() }
    }

    /// Stable label, used in the verdict's rule id (`invariant:<label>`).
    pub fn label(&self) -> String {
        match self {
            InvariantSpec::FilePristine { path } => format!("file-pristine:{path}"),
            InvariantSpec::ForbidExec { prefix } => format!("forbid-exec:{prefix}"),
            InvariantSpec::RequireRule { rule } => format!("require-rule:{rule}"),
        }
    }

    /// The path the spec constrains, when it names one (used by spec
    /// validation to require absolute paths).
    pub fn constrained_path(&self) -> Option<&str> {
        match self {
            InvariantSpec::FilePristine { path } => Some(path),
            InvariantSpec::ForbidExec { prefix } => Some(prefix),
            InvariantSpec::RequireRule { .. } => None,
        }
    }

    /// Compiles the spec into a detector for one run. The watched path or
    /// prefix is resolved to interned symbols *here*, once — the per-event
    /// [`Detector::observe`] path is then allocation-free on non-matching
    /// events (symbol compares and a precomputed prefix probe).
    pub fn detector(&self) -> Box<dyn Detector> {
        let (watched, exec_prefix) = match self {
            InvariantSpec::FilePristine { path } => (Some(intern::intern(path)), None),
            InvariantSpec::ForbidExec { prefix } => (
                Some(intern::intern(prefix)),
                Some(format!("{}/", prefix.trim_end_matches('/'))),
            ),
            InvariantSpec::RequireRule { .. } => (None, None),
        };
        Box::new(InvariantDetector {
            spec: self.clone(),
            watched,
            exec_prefix,
            satisfied: false,
            events_seen: 0,
            found: Vec::new(),
        })
    }
}

impl fmt::Display for InvariantSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The runtime form of one [`InvariantSpec`].
struct InvariantDetector {
    spec: InvariantSpec,
    /// The constrained path/prefix, interned once at compile time so the
    /// hot `observe` compares symbols instead of strings.
    watched: Option<PathSym>,
    /// For [`InvariantSpec::ForbidExec`]: the `"<prefix>/"` probe string,
    /// built once instead of per `Exec` event.
    exec_prefix: Option<String>,
    /// For [`InvariantSpec::RequireRule`]: whether the check ran.
    satisfied: bool,
    /// Events observed so far (= the audit-log length at finish time, used
    /// to anchor finish-time verdicts past every real event index).
    events_seen: usize,
    found: Vec<Verdict>,
}

impl InvariantDetector {
    fn fire(&mut self, description: String, idx: usize, event: &AuditEvent) {
        self.found.push(Verdict::new(
            Violation::new(
                ViolationKind::Custom,
                format!("invariant:{}", self.spec.label()),
                description,
                idx,
            ),
            "invariant",
            Evidence::single(idx, event),
        ));
    }
}

impl Detector for InvariantDetector {
    fn name(&self) -> &'static str {
        "invariant"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        self.events_seen = self.events_seen.max(idx + 1);
        match (&self.spec, event) {
            (InvariantSpec::FilePristine { path }, AuditEvent::FileWrite(w)) if Some(w.path) == self.watched => {
                self.fire(format!("declared-pristine file {path} was written"), idx, event);
            }
            (InvariantSpec::FilePristine { path }, AuditEvent::FileDelete { path: deleted, .. })
                if Some(*deleted) == self.watched =>
            {
                self.fire(format!("declared-pristine file {path} was deleted"), idx, event);
            }
            (InvariantSpec::ForbidExec { prefix }, AuditEvent::Exec { resolved, .. })
                if Some(*resolved) == self.watched
                    || self.exec_prefix.as_deref().is_some_and(|pre| resolved.starts_with(pre)) =>
            {
                self.fire(format!("forbidden exec of {resolved} (under {prefix})"), idx, event);
            }
            (InvariantSpec::RequireRule { rule }, AuditEvent::Custom { rule: seen, .. }) if seen == rule => {
                self.satisfied = true;
            }
            _ => {}
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        if let InvariantSpec::RequireRule { rule } = &self.spec {
            if !self.satisfied {
                // No triggering event exists: the violation is the absence
                // of one, so the evidence chain is empty and the verdict
                // sorts after every event-anchored one. `event_index` is
                // anchored one past the last observed event (the log length)
                // so it never implicates a real, unrelated event.
                self.found.push(Verdict::new(
                    Violation::new(
                        ViolationKind::Custom,
                        format!("invariant:{}", self.spec.label()),
                        format!("required check `{rule}` never ran"),
                        self.events_seen,
                    ),
                    "invariant",
                    Evidence::none(),
                ));
            }
            self.satisfied = false;
        }
        std::mem::take(&mut self.found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::WriteInfo;
    use crate::cred::{Credentials, Uid};
    use crate::policy::OracleSet;
    use std::collections::BTreeSet;

    fn write_to(path: &str) -> AuditEvent {
        AuditEvent::FileWrite(WriteInfo {
            path: path.into(),
            existed_before: true,
            owner_before: Some(Uid::ROOT),
            invoker_could_write: true,
            target_tags: BTreeSet::new(),
            parent_tags: BTreeSet::new(),
            invoker_could_write_parent: true,
            invoker_could_read_after: false,
            created_by_self: false,
            path_taint: BTreeSet::new(),
            data_labels: BTreeSet::new(),
            by: Credentials::root(),
        })
    }

    #[test]
    fn file_pristine_fires_on_write_and_delete() {
        let spec = InvariantSpec::file_pristine("/etc/motd");
        let mut d = spec.detector();
        d.observe(0, &write_to("/etc/other"));
        d.observe(1, &write_to("/etc/motd"));
        let v = d.finish();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Custom);
        assert_eq!(v[0].rule, "invariant:file-pristine:/etc/motd");
        assert_eq!(v[0].evidence.first_index(), Some(1));
    }

    #[test]
    fn forbid_exec_matches_prefix_not_siblings() {
        let spec = InvariantSpec::forbid_exec("/tmp");
        let mut d = spec.detector();
        let exec = |resolved: &str| AuditEvent::Exec {
            requested: "x".into(),
            resolved: resolved.into(),
            owner: Uid::ROOT,
            world_writable: false,
            dir_untrusted: false,
            path_taint: BTreeSet::new(),
            arg_labels: BTreeSet::new(),
            by: Credentials::root(),
        };
        d.observe(0, &exec("/tmpfiles/tool"));
        d.observe(1, &exec("/tmp/evil"));
        let v = d.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].description.contains("/tmp/evil"));
    }

    #[test]
    fn require_rule_fires_only_when_the_check_never_ran() {
        let spec = InvariantSpec::require_rule("auth");
        let mut silent = spec.detector();
        let v = silent.finish();
        assert_eq!(v.len(), 1);
        assert!(v[0].evidence.is_empty());
        assert!(v[0].description.contains("never ran"));

        let mut ran = spec.detector();
        ran.observe(
            0,
            &AuditEvent::Custom {
                rule: "auth".into(),
                violated: false,
                detail: String::new(),
            },
        );
        assert!(ran.finish().is_empty());
    }

    #[test]
    fn specs_serialize_round_trip() {
        for spec in [
            InvariantSpec::file_pristine("/etc/motd"),
            InvariantSpec::forbid_exec("/tmp"),
            InvariantSpec::require_rule("auth"),
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: InvariantSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn invariants_compose_with_the_standard_set() {
        let mut set = OracleSet::standard().with(InvariantSpec::file_pristine("/etc/motd").detector());
        set.observe(0, &write_to("/etc/motd"));
        let v = set.finish();
        assert!(v.iter().any(|x| x.detector == "invariant"));
    }
}
