//! # epa-vulndb — the vulnerability database behind paper Tables 1–4
//!
//! A 195-entry database in the spirit of the CERIAS collection the paper
//! analyzed (§2.4), with an EAI classifier that derives each entry's
//! category from structured *mechanism evidence*, the four frequency
//! tables the paper reports, and the oracle linkage that classifies live
//! campaign verdicts (policy family × fault category) into the same
//! taxonomy ([`classify_violation`], [`suite_class_rollup`]).
//!
//! The original database is proprietary; entries here are synthetic
//! recreations modeled on era advisories, calibrated so the classification
//! totals match the paper exactly (81 indirect / 48 direct / 13 other of
//! 142 classifiable; see `DESIGN.md` for the substitution rationale).
//!
//! ```
//! let db = epa_vulndb::entries();
//! let tables = epa_vulndb::compute(&db);
//! assert_eq!(tables.table1.total(), 142);
//! assert_eq!(tables.table2.user_input, 51);
//! println!("{}", tables.table1.render());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod classify;
pub mod data;
pub mod entry;
pub mod tables;

pub use classify::{
    classify, classify_mechanism, classify_violation, mechanism_for_violation, render_class_rollup, suite_class_rollup,
    violation_class, ClassRollup, Classification, Exclusion,
};
pub use data::entries;
pub use entry::{AttributeFault, InputFlaw, InputSource, Mechanism, OsFamily, PlainFault, VulnEntry};
pub use tables::{compute, Table1, Table2, Table3, Table4, Tables};
