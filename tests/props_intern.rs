//! Property tests: the path interner's load-bearing invariants.
//!
//! The hot loop replaced owned path `String`s with interned [`PathSym`]
//! handles on the strength of two claims, pinned here over arbitrary
//! messy path text: a symbol's text is exactly the [`path::clean`] of its
//! input (round trip), and symbol equality coincides exactly with clean
//! equality — including the PR 5 rule that `..` is *preserved* by
//! cleaning (physical resolution happens in the VFS walk, never here).

use epa::sandbox::intern::{intern, PathSym};
use epa::sandbox::path;
use proptest::prelude::*;

/// Messy path text: repeated slashes, `.` and `..` segments, short
/// names, relative and absolute shapes.
fn raw_path_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("/?((\\.|\\.\\.|[a-z]{1,4})/{1,3}){0,6}(\\.|\\.\\.|[a-z]{1,4})?").expect("regex")
}

/// Number of literal `..` components in a path.
fn dotdot_components(p: &str) -> usize {
    p.split('/').filter(|c| *c == "..").count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: a symbol's text is the cleaned input, and re-interning
    /// a symbol's own text is a fixpoint yielding the same symbol.
    #[test]
    fn intern_round_trips_through_clean(p in raw_path_strategy()) {
        let sym = intern(&p);
        prop_assert_eq!(sym.as_str(), path::clean(&p).as_str());
        prop_assert_eq!(intern(sym.as_str()), sym);
        prop_assert_eq!(PathSym::from(p.as_str()), sym);
    }

    /// Symbol equality ≡ clean equality: two texts intern to the same
    /// symbol exactly when they clean to the same text.
    #[test]
    fn symbol_equality_is_clean_equality(a in raw_path_strategy(), b in raw_path_strategy()) {
        let same_symbol = intern(&a) == intern(&b);
        let same_clean = path::clean(&a) == path::clean(&b);
        prop_assert_eq!(
            same_symbol, same_clean,
            "intern({:?}) vs intern({:?}): symbol equality {} but clean equality {}",
            a, b, same_symbol, same_clean
        );
    }

    /// The PR 5 rule: cleaning collapses `//` and `.` but preserves every
    /// `..` component for the physical walk, so interning never conflates
    /// `/a/b/../c` with `/a/c` (the walk may cross a symlink at `b`).
    #[test]
    fn dotdot_survives_interning(p in raw_path_strategy()) {
        let sym = intern(&p);
        prop_assert_eq!(dotdot_components(sym.as_str()), dotdot_components(&p));
    }

    /// Join agrees with the lexical join: extending a symbol by one
    /// component is the same symbol as interning the joined text (the
    /// `(dir, name)` cache may serve it, but never changes the answer).
    #[test]
    fn join_matches_lexical_join(p in raw_path_strategy(), name in "[a-z]{1,6}") {
        let dir = intern(&p);
        prop_assert_eq!(dir.join(&name), intern(&path::join(dir.as_str(), &name)));
    }

    /// Content order and content hash stay consistent with equality:
    /// equal symbols compare equal, unequal symbols order by text.
    #[test]
    fn ordering_is_by_symbol_text(a in raw_path_strategy(), b in raw_path_strategy()) {
        let (sa, sb) = (intern(&a), intern(&b));
        prop_assert_eq!(sa.cmp(&sb), sa.as_str().cmp(sb.as_str()));
        prop_assert_eq!(sa == sb, sa.as_str() == sb.as_str());
    }
}
