//! The BSD `lpr` fragment of paper §3.4.
//!
//! `lpr` is set-UID root. It reads the user's file name, reads the job
//! content, and spools it with `creat(n, 0660)` followed by `write` — the
//! exact code the paper quotes. The vulnerable version performs no
//! existence/ownership/symlink checks before `creat`, so all four
//! applicable Table 6 file perturbations defeat it; [`LprFixed`] uses the
//! exclusive-create idiom and survives all of them.

use epa_sandbox::app::Application;
use epa_sandbox::data::PathArg;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// Spool file path used by the model printer daemon.
pub const SPOOL_FILE: &str = "/var/spool/lpd/cfA100";

/// The `lpr` world of paper §3.4, declared as data: SUID-root printer
/// client, world-writable spool protocol, an unprivileged student invoker.
pub fn spec() -> epa_core::engine::WorldSpec {
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::os::ScenarioMeta;
    let scenario = ScenarioMeta::default();
    crate::worlds::base_unix_builder()
        .dir("/var/spool/lpd", Uid::ROOT, Gid::ROOT, 0o755)
        .file(
            "/home/student/report.txt",
            "quarterly report\n",
            scenario.invoker,
            scenario.invoker_gid,
            0o644,
        )
        .suid_root_program("/usr/bin/lpr")
        .args(["report.txt"])
        .cwd("/home/student")
        .build()
}

/// The vulnerable `lpr` of paper §3.4.
#[derive(Debug, Clone, Copy, Default)]
pub struct Lpr;

impl Application for Lpr {
    fn name(&self) -> &'static str {
        "lpr"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // Which file does the user want printed?
        let Ok(job_name) = os.sys_arg(pid, "lpr:read_args", 0, InputSemantic::UserFileName) else {
            let _ = os.sys_print(pid, "lpr:usage", "usage: lpr file\n");
            return 2;
        };
        // Read the job content.
        let job = match os.sys_read_file(pid, "lpr:read_input", PathArg::from(&job_name)) {
            Ok(d) => d,
            Err(e) => {
                let _ = os.sys_print(pid, "lpr:err", format!("lpr: {}: cannot open\n", job_name.text()));
                let _ = e;
                return 1;
            }
        };
        // f = creat(n, 0660); ... write(f, buf, i)
        // No O_EXCL, no lstat: the paper's flaw, verbatim.
        if os
            .sys_write_file(pid, "lpr:create_spool", SPOOL_FILE, job, 0o660)
            .is_err()
        {
            let _ = os.sys_print(pid, "lpr:err", "lpr: cannot create spool file\n");
            return 1;
        }
        let _ = os.sys_print(pid, "lpr:done", "lpr: job queued\n");
        0
    }
}

/// The patched `lpr`: exclusive creation, refusing pre-existing spool
/// entries of any kind (including symlinks).
#[derive(Debug, Clone, Copy, Default)]
pub struct LprFixed;

impl Application for LprFixed {
    fn name(&self) -> &'static str {
        "lpr-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(job_name) = os.sys_arg(pid, "lpr:read_args", 0, InputSemantic::UserFileName) else {
            let _ = os.sys_print(pid, "lpr:usage", "usage: lpr file\n");
            return 2;
        };
        // Fix: the access(2) pattern — the *real* uid must be able to read
        // the job file; the SUID program must not become a read oracle.
        let me = os.procs.get(pid).map(|p| p.cred).expect("own credentials");
        match os.sys_stat(pid, "lpr:read_input", PathArg::from(&job_name)) {
            Ok(st) => {
                if !st
                    .mode
                    .grants(st.owner, st.group, &me.invoker(), epa_sandbox::mode::Access::Read)
                {
                    let _ = os.sys_print(pid, "lpr:err", format!("lpr: {}: permission denied\n", job_name.text()));
                    return 1;
                }
            }
            Err(_) => {
                let _ = os.sys_print(pid, "lpr:err", format!("lpr: {}: cannot open\n", job_name.text()));
                return 1;
            }
        }
        let Ok(job) = os.sys_read_file(pid, "lpr:read_input", PathArg::from(&job_name)) else {
            let _ = os.sys_print(pid, "lpr:err", format!("lpr: {}: cannot open\n", job_name.text()));
            return 1;
        };
        // open(n, O_CREAT|O_EXCL|O_WRONLY, 0660): refuses anything that
        // already occupies the name, dangling symlinks included.
        if os.sys_create_excl(pid, "lpr:create_spool", SPOOL_FILE, 0o660).is_err() {
            let _ = os.sys_print(pid, "lpr:err", "lpr: spool name taken, try again\n");
            return 1;
        }
        if os.sys_append(pid, "lpr:create_spool", SPOOL_FILE, job, 0o660).is_err() {
            let _ = os.sys_print(pid, "lpr:err", "lpr: temp file write error\n");
            return 1;
        }
        let _ = os.sys_print(pid, "lpr:done", "lpr: job queued\n");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;

    #[test]
    fn vulnerable_lpr_queues_cleanly() {
        let setup = worlds::lpr_world();
        let out = run_once(&setup, &Lpr, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.os.fs.exists(SPOOL_FILE));
    }

    #[test]
    fn fixed_lpr_queues_cleanly() {
        let setup = worlds::lpr_world();
        let out = run_once(&setup, &LprFixed, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn symlink_swap_defeats_vulnerable_but_not_fixed() {
        let mut setup = worlds::lpr_world();
        setup.world.fs.god_symlink(SPOOL_FILE, "/etc/passwd").unwrap();
        let vuln = run_once(&setup, &Lpr, None);
        assert!(
            !vuln.violations.is_empty(),
            "vulnerable lpr must clobber the passwd file"
        );
        let fixed = run_once(&setup, &LprFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
        assert_eq!(fixed.exit, Some(1), "fixed lpr refuses and reports");
    }

    #[test]
    fn symlink_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::lpr_world();
        setup.world.fs.god_symlink(SPOOL_FILE, "/etc/passwd").unwrap();
        let out = run_once(&setup, &Lpr, None);
        crate::assert_evidence_in_bounds(&out);
        assert!(out.violations[0].evidence.items[0].summary.contains("/etc/passwd"));
    }
}
