//! Offline stand-in for `serde`.
//!
//! Provides `Serialize`/`Deserialize` traits over a small self-describing
//! [`Value`] data model, plus impls for the primitives and std collections
//! the `epa` workspace uses. The `derive` feature re-exports the
//! `serde_derive` stand-in macros. See `crates/compat/README.md`.

#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (a superset-free JSON-like AST).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX`).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, insertion-ordered.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries if this value is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the sequence elements if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Deserialization error: what was expected, and in which type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    /// Human-readable description of the mismatch.
    pub message: String,
}

impl DeError {
    /// Builds an "expected X while deserializing Y" error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            message: format!("expected {what} while deserializing {context}"),
        }
    }

    /// Builds an error from a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn ser(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the data model.
    fn de(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a required field in a map value (derive-macro helper).
pub fn field<'v>(map: &'v [(String, Value)], name: &str, ty: &str) -> Result<&'v Value, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}` while deserializing {ty}")))
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool")),
        }
    }
}

macro_rules! int_impls {
    (@ser_signed $t:ty) => {
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    };
    (@ser_unsigned $t:ty) => {
        impl Serialize for $t {
            fn ser(&self) -> Value {
                if *self as u64 <= i64::MAX as u64 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
    };
    ($($kind:tt $t:ty),*) => {$(
        int_impls!(@$kind $t);
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::custom(format!("{u} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

int_impls!(
    ser_unsigned u8, ser_unsigned u16, ser_unsigned u32, ser_unsigned u64, ser_unsigned usize,
    ser_signed i8, ser_signed i16, ser_signed i32, ser_signed i64, ser_signed isize
);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    // Non-finite floats serialize as null (JSON has no NaN).
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("len checked")),
            _ => Err(DeError::expected("single-char string", "char")),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn ser(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            _ => Err(DeError::expected("null", "()")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        T::de(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        T::de(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        T::de(v).map(Rc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(t) => t.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::de).collect(),
            _ => Err(DeError::expected("sequence", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::de).collect(),
            _ => Err(DeError::expected("sequence", "VecDeque")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser(&self) -> Value {
                Value::Seq(vec![$(self.$n.ser()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn de(v: &Value) -> Result<Self, DeError> {
                let s = v.as_seq().ok_or_else(|| DeError::expected("sequence", "tuple"))?;
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                if s.len() != LEN {
                    return Err(DeError::custom(format!("expected tuple of {LEN}, got {}", s.len())));
                }
                Ok(($($t::de(&s[$n])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.ser(), v.ser()])).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence of pairs", "BTreeMap"))?;
        s.iter()
            .map(|pair| {
                let p = pair
                    .as_seq()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| DeError::expected("pair", "BTreeMap"))?;
                Ok((K::de(&p[0])?, V::de(&p[1])?))
            })
            .collect()
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(|(k, v)| Value::Seq(vec![k.ser(), v.ser()])).collect())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn de(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_seq()
            .ok_or_else(|| DeError::expected("sequence of pairs", "HashMap"))?;
        s.iter()
            .map(|pair| {
                let p = pair
                    .as_seq()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| DeError::expected("pair", "HashMap"))?;
                Ok((K::de(&p[0])?, V::de(&p[1])?))
            })
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::de).collect(),
            _ => Err(DeError::expected("sequence", "BTreeSet")),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn de(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(s) => s.iter().map(T::de).collect(),
            _ => Err(DeError::expected("sequence", "HashSet")),
        }
    }
}
