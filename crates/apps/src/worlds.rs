//! World builders: the initial environments of the paper's case studies.
//!
//! Since the engine redesign the worlds are **declared as data**: every app
//! module exports a [`WorldSpec`] (`epa_apps::lpr::spec()`, …) composed
//! from the shared base builders in this module, and campaigns consume the
//! specs through `epa_core::engine::{Session, Suite}`. The `*_world()`
//! functions remain as thin materializing shims for the pre-engine
//! [`TestSetup`]-based API; they build byte-identical worlds.

use epa_core::campaign::TestSetup;
use epa_core::engine::{ScenarioBuilder, WorldSpec};
use epa_sandbox::cred::{Gid, Uid};
use epa_sandbox::os::ScenarioMeta;

/// The teaching assistant's uid in the turnin world.
pub const TA_UID: Uid = Uid(1000);
/// The student/invoker uid used across UNIX worlds.
pub const STUDENT_UID: Uid = Uid(1001);
/// The attacker uid used across worlds.
pub const ATTACKER_UID: Uid = Uid(6666);

/// Number of unprotected (world-writable) registry keys in the NT world,
/// matching the paper's inventory.
pub const NT_UNPROTECTED_KEYS: usize = 29;

fn materialize(spec: &WorldSpec, app: &str) -> TestSetup {
    spec.materialize()
        .unwrap_or_else(|e| panic!("{app} world spec must be valid: {e}"))
}

/// The shared UNIX base: root/student/attacker accounts, `/tmp`, the
/// password and shadow files, the system config, and the attacker's
/// prepared directory.
pub fn base_unix_builder() -> ScenarioBuilder {
    let scenario = ScenarioMeta::default();
    let (invoker, invoker_gid) = (scenario.invoker, scenario.invoker_gid);
    let (attacker, attacker_gid) = (scenario.attacker, scenario.attacker_gid);
    ScenarioBuilder::new()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", invoker, invoker_gid, "/home/student")
        .user("evil", attacker, attacker_gid, "/home/evil")
        .dir("/tmp", Uid::ROOT, Gid::ROOT, 0o1777)
        .dir("/etc/cron.d", Uid::ROOT, Gid::ROOT, 0o755)
        .dir("/home/student", invoker, invoker_gid, 0o755)
        .dir("/home/evil/bin", attacker, attacker_gid, 0o755)
        .root_file(
            "/etc/passwd",
            "root:x:0:0:/root\nstudent:x:1001:100:/home/student\n",
            0o644,
        )
        .root_file("/etc/shadow", "root:HASH0x7f:12000\nstudent:HASH0x11:12000\n", 0o600)
        .root_file("/etc/system.conf", "kernel.paranoid=1\n", 0o644)
}

/// Scenario metadata shared by the Windows NT worlds (§4.2).
pub fn nt_scenario(invoker: Uid) -> ScenarioMeta {
    ScenarioMeta {
        invoker,
        invoker_gid: Gid(100),
        attacker: ATTACKER_UID,
        attacker_gid: Gid(666),
        attacker_home: "/users/evil".to_string(),
        untrusted_dir: "/users/evil/bin".to_string(),
        secret_target: "/winnt/repair/sam".to_string(),
        integrity_target: "/winnt/win.ini".to_string(),
        protected_dir: "/winnt/system32".to_string(),
        critical_target: "/winnt/system.ini".to_string(),
        trusted_host: "dc.corp.example.com".to_string(),
        attacker_host: "evil.example.net".to_string(),
    }
}

/// The shared Windows NT base: Administrator/user/attacker accounts, the
/// `/winnt` tree, and the paper's 29 unprotected registry keys (5 font
/// caches + 4 logon keys consumed by modeled modules, 20 speculation-set
/// extras no module reads).
pub fn base_nt_builder(invoker: Uid) -> ScenarioBuilder {
    let mut b = ScenarioBuilder::with_scenario(nt_scenario(invoker))
        .user("Administrator", Uid::ROOT, Gid::ROOT, "/users/administrator")
        .user("user1001", Uid(1001), Gid(100), "/users/user1001")
        .user("evil", ATTACKER_UID, Gid(666), "/users/evil")
        .dir("/winnt/system32", Uid::ROOT, Gid::ROOT, 0o755)
        .dir("/users/evil/bin", ATTACKER_UID, Gid(666), 0o755)
        .root_file("/winnt/system.ini", "[boot]\nshell=explorer\n", 0o644)
        .root_file("/winnt/win.ini", "[fonts]\n", 0o644)
        .root_file("/winnt/repair/sam", "SAM{admin:NTHASH}\n", 0o600);
    // Five font-cache files named by unprotected registry keys.
    for i in 0..5 {
        b = b
            .root_file(format!("/winnt/fonts/cache{i}.fon"), "FONTDATA", 0o644)
            .registry_key(format!("HKLM/Software/Fonts/Cache{i}"), true)
            .registry_value("Path", format!("/winnt/fonts/cache{i}.fon"));
    }
    // Four logon keys, also unprotected.
    let logon: [(&str, &str); 4] = [
        ("ProfileDir", "/profiles/user1001"),
        ("Script", "/winnt/scripts/logon.cmd"),
        ("Shell", "/winnt/system32/cmd.exe"),
        ("HelpFile", "/winnt/help/welcome.txt"),
    ];
    for (name, value) in logon {
        b = b
            .registry_key(format!("HKLM/Software/Logon/{name}"), true)
            .registry_value("Path", value);
    }
    // Twenty further unprotected keys no modeled module consumes — the
    // paper's "other 20 unprotected keys" it could only speculate about.
    for i in 0..20 {
        b = b
            .registry_key(format!("HKLM/Software/Extras/Key{i:02}"), true)
            .registry_value("Value", format!("opaque-{i}"));
    }
    // Logon world objects and the attacker's prepared profile directory.
    b.root_file(
        "/profiles/user1001/profile.cfg",
        "shell=/winnt/system32/csh.exe\n",
        0o644,
    )
    .root_file("/winnt/system32/csh.exe", "#!csh", 0o755)
    .root_file("/winnt/scripts/logon.cmd", "@echo on\n", 0o755)
    .root_file("/winnt/system32/cmd.exe", "#!cmd", 0o755)
    .root_file("/winnt/help/welcome.txt", "welcome to the domain\n", 0o644)
    .file(
        "/users/evil/profile.cfg",
        "shell=/users/evil/rootkit.exe\n",
        ATTACKER_UID,
        Gid(666),
        0o644,
    )
    .file("/users/evil/rootkit.exe", "#!rootkit", ATTACKER_UID, Gid(666), 0o755)
}

/// The `lpr` world of paper §3.4 (see [`crate::lpr::spec`]).
pub fn lpr_world() -> TestSetup {
    materialize(&crate::lpr::spec(), "lpr")
}

/// The `turnin` world of paper §4.1 (see [`crate::turnin::spec`]).
pub fn turnin_world() -> TestSetup {
    materialize(&crate::turnin::spec(), "turnin")
}

/// The NT font-cache purge world (see [`crate::fontpurge::spec`]).
pub fn fontpurge_world() -> TestSetup {
    materialize(&crate::fontpurge::spec(), "fontpurge")
}

/// The NT logon world (see [`crate::ntlogon::spec`]).
pub fn ntlogon_world() -> TestSetup {
    materialize(&crate::ntlogon::spec(), "ntlogon")
}

/// The `fingerd` world (see [`crate::fingerd::spec`]).
pub fn fingerd_world() -> TestSetup {
    materialize(&crate::fingerd::spec(), "fingerd")
}

/// The `authd` world (see [`crate::authd::spec`]).
pub fn authd_world() -> TestSetup {
    materialize(&crate::authd::spec(), "authd")
}

/// The `backupd` world (see [`crate::backupd::spec`]).
pub fn backupd_world() -> TestSetup {
    materialize(&crate::backupd::spec(), "backupd")
}

/// The `mailnotify` world (see [`crate::mailnotify::spec`]).
pub fn mailnotify_world() -> TestSetup {
    materialize(&crate::mailnotify::spec(), "mailnotify")
}

/// Every case study's world spec, keyed by application name, in the
/// paper's presentation order.
pub fn all_specs() -> Vec<(&'static str, WorldSpec)> {
    vec![
        ("lpr", crate::lpr::spec()),
        ("turnin", crate::turnin::spec()),
        ("fontpurge", crate::fontpurge::spec()),
        ("ntlogon", crate::ntlogon::spec()),
        ("fingerd", crate::fingerd::spec()),
        ("authd", crate::authd::spec()),
        ("mailnotify", crate::mailnotify::spec()),
        ("backupd", crate::backupd::spec()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_world_has_29_unprotected_keys() {
        let setup = fontpurge_world();
        assert_eq!(setup.world.registry.unprotected_keys().len(), NT_UNPROTECTED_KEYS);
    }

    #[test]
    fn every_spec_validates() {
        for (name, spec) in all_specs() {
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn worlds_pass_fs_invariants() {
        for (name, spec) in all_specs() {
            let setup = spec.materialize().unwrap_or_else(|e| panic!("{name}: {e}"));
            setup.world.fs.check_invariants().unwrap();
        }
    }

    #[test]
    fn standard_targets_are_tagged() {
        let setup = turnin_world();
        let st = setup.world.fs.stat("/etc/shadow", None).unwrap();
        assert!(st.tags.contains(&epa_sandbox::fs::FileTag::Secret));
        let st = setup.world.fs.stat("/etc/passwd", None).unwrap();
        assert!(st.tags.contains(&epa_sandbox::fs::FileTag::Protected));
    }

    #[test]
    fn specs_are_deterministic_data() {
        for (name, spec) in all_specs() {
            assert_eq!(spec, {
                let again = all_specs();
                again.into_iter().find(|(n, _)| *n == name).unwrap().1
            });
        }
    }
}
