//! `mailnotify`: a SUID-root biff-style notifier exercising the paper's
//! process-input and environment-variable fault classes.
//!
//! The mail daemon hands it a message over IPC; it appends the notification
//! to the invoking user's mailbox and runs the `mail` helper to refresh the
//! user's mail summary. Seeded flaws in the vulnerable version:
//!
//! * the mailbox is appended to blindly (no ownership/symlink check) — the
//!   classic biff/comsat attack surface;
//! * the relayed content is whatever the IPC peer claims (authenticity);
//! * the `mail` helper is found through the user-controlled `PATH`;
//! * an unchecked copy of the message into a fixed buffer.

use epa_sandbox::app::Application;
use epa_sandbox::buffer::{CopyDiscipline, FixedBuf};
use epa_sandbox::data::Data;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// The invoking user's mailbox.
pub const MAILBOX: &str = "/var/mail/student";
/// The IPC channel the mail daemon delivers on.
pub const CHANNEL: &str = "maild";

/// The `mailnotify` world, declared as data: a SUID-root biff-style
/// notifier fed by the mail daemon over IPC.
pub fn spec() -> epa_core::engine::WorldSpec {
    use epa_sandbox::os::ScenarioMeta;
    let scenario = ScenarioMeta::default();
    crate::worlds::base_unix_builder()
        .file(
            "/var/mail/student",
            "From: old\n",
            scenario.invoker,
            scenario.invoker_gid,
            0o600,
        )
        .root_file("/usr/bin/mail", "#!mail", 0o755)
        .suid_root_program("/usr/local/bin/mailnotify")
        // Attacker's prepared PATH payload.
        .file(
            "/home/evil/bin/mail",
            "#!evil-mail",
            scenario.attacker,
            scenario.attacker_gid,
            0o755,
        )
        .ipc_message(CHANNEL, "maild", "From: alice\nSubject: lunch?\n")
        .env("PATH", "/usr/bin:/bin")
        .cwd("/home/student")
        .build()
}

/// The vulnerable notifier.
#[derive(Debug, Clone, Copy, Default)]
pub struct MailNotify;

impl Application for MailNotify {
    fn name(&self) -> &'static str {
        "mailnotify"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let path_list = os
            .sys_getenv(pid, "mailnotify:getenv_path", "PATH", InputSemantic::EnvPathList)
            .unwrap_or_else(|_| Data::from("/usr/bin:/bin"));

        let Ok(msg) = os.sys_proc_recv(pid, "mailnotify:recv", CHANNEL, InputSemantic::ProcMessage) else {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: no mail\n");
            return 0;
        };
        // Flaw: unchecked copy of the daemon's message.
        let mut headbuf = FixedBuf::new("headbuf", 1024);
        os.mem_copy(pid, &mut headbuf, &msg.data, CopyDiscipline::Unchecked);

        // Flaw: append whatever arrived, wherever the mailbox points.
        let mut entry = Data::from("--- new mail ---\n");
        entry.append(&msg.data);
        entry.push_str("\n");
        if os
            .sys_append(pid, "mailnotify:append_box", MAILBOX, entry, 0o600)
            .is_err()
        {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: cannot update mailbox\n");
            return 1;
        }

        // Flaw: helper resolved through the invoker's PATH while euid=root.
        if os
            .sys_exec(
                pid,
                "mailnotify:exec_mail",
                "mail",
                vec![Data::from("-s")],
                Some(path_list),
            )
            .is_err()
        {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: mail helper failed\n");
        }
        let _ = os.sys_print(pid, "mailnotify:done", "You have new mail.\n");
        0
    }
}

/// The patched notifier: verified mailbox, no relayed content, absolute
/// trusted helper, checked copies.
#[derive(Debug, Clone, Copy, Default)]
pub struct MailNotifyFixed;

impl Application for MailNotifyFixed {
    fn name(&self) -> &'static str {
        "mailnotify-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // PATH is read but never used for resolution.
        let _ = os.sys_getenv(pid, "mailnotify:getenv_path", "PATH", InputSemantic::EnvPathList);

        let Ok(msg) = os.sys_proc_recv(pid, "mailnotify:recv", CHANNEL, InputSemantic::ProcMessage) else {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: no mail\n");
            return 0;
        };
        let mut headbuf = FixedBuf::new("headbuf", 1024);
        os.mem_copy(pid, &mut headbuf, &msg.data, CopyDiscipline::Checked);

        // Fix: the mailbox must be a regular file owned by the invoker.
        let expected_owner = os.scenario.invoker;
        let ok = os
            .sys_lstat(pid, "mailnotify:append_box", MAILBOX)
            .is_ok_and(|st| st.file_type == epa_sandbox::fs::FileType::Regular && st.owner == expected_owner);
        if !ok {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: mailbox not trusted, skipping\n");
            return 1;
        }
        // Fix: never relay unauthenticated content — a static marker only.
        if os
            .sys_append(
                pid,
                "mailnotify:append_box",
                MAILBOX,
                "--- new mail (see spool) ---\n",
                0o600,
            )
            .is_err()
        {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: cannot update mailbox\n");
            return 1;
        }

        // Fix: absolute, verified helper.
        let helper = "/usr/bin/mail";
        let trusted = os.sys_lstat(pid, "mailnotify:exec_mail", helper).is_ok_and(|st| {
            st.file_type == epa_sandbox::fs::FileType::Regular && st.owner.is_root() && !st.mode.world_writable()
        });
        if trusted {
            let _ = os.sys_exec(pid, "mailnotify:exec_mail", helper, vec![Data::from("-s")], None);
        } else {
            let _ = os.sys_print(pid, "mailnotify:warn", "mailnotify: mail helper not trusted\n");
        }
        let _ = os.sys_print(pid, "mailnotify:done", "You have new mail.\n");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;
    use epa_sandbox::policy::ViolationKind;

    #[test]
    fn clean_notification_is_violation_free() {
        let setup = worlds::mailnotify_world();
        let out = run_once(&setup, &MailNotify, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let b = out.os.fs.god_read(MAILBOX).unwrap();
        assert!(b.text().contains("lunch?"));
    }

    #[test]
    fn symlinked_mailbox_clobbers_the_password_file() {
        let mut setup = worlds::mailnotify_world();
        setup.world.fs.god_symlink(MAILBOX, "/etc/passwd").unwrap();
        let out = run_once(&setup, &MailNotify, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::IntegrityWrite),
            "{:?}",
            out.violations
        );
        let fixed = run_once(&setup, &MailNotifyFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    #[test]
    fn spoofed_ipc_message_is_a_spoofed_action() {
        let mut setup = worlds::mailnotify_world();
        setup.world.net.spoof_next_ipc(CHANNEL, "intruder-process");
        let out = run_once(&setup, &MailNotify, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::SpoofedAction),
            "{:?}",
            out.violations
        );
        let fixed = run_once(&setup, &MailNotifyFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    #[test]
    fn perturbed_path_runs_the_attacker_helper() {
        let mut setup = worlds::mailnotify_world();
        setup.env.insert("PATH".into(), "/home/evil/bin:/usr/bin:/bin".into());
        let out = run_once(&setup, &MailNotify, None);
        assert!(
            out.violations.iter().any(|v| v.kind == ViolationKind::UntrustedExec),
            "{:?}",
            out.violations
        );
        let fixed = run_once(&setup, &MailNotifyFixed, None);
        assert!(fixed.violations.is_empty(), "{:?}", fixed.violations);
    }

    #[test]
    fn spoofed_ipc_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::mailnotify_world();
        setup.world.net.spoof_next_ipc(CHANNEL, "intruder-process");
        let out = run_once(&setup, &MailNotify, None);
        crate::assert_evidence_in_bounds(&out);
        assert!(out.violations.iter().any(|v| v.detector == "spoofed-action"));
    }
}
