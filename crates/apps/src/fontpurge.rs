//! The NT font-cache purge module of paper §4.2.
//!
//! The paper: *"One of the keys in the registry directory specifies a file
//! name for a font. It seems pretty safe to give everybody the right to
//! modify this registry key until we have found a module in the system that
//! invokes a function call to actually delete this file."*
//!
//! `fontpurge` walks the five `HKLM/Software/Fonts/Cache*` keys — all
//! world-writable in the NT world — and deletes the stale cache file each
//! names. Because anyone may rewrite those keys, a value perturbation that
//! points one at `system.ini` (or the SAM) makes the administrator's next
//! purge delete a security-critical file.

use epa_sandbox::app::Application;
use epa_sandbox::data::PathArg;
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// Number of font-cache registry keys the module consumes.
pub const FONT_KEYS: usize = 5;

/// The NT font-cache purge world of paper §4.2, declared as data: an
/// administrator runs the module over the shared NT base.
pub fn spec() -> epa_core::engine::WorldSpec {
    use epa_sandbox::cred::Uid;
    crate::worlds::base_nt_builder(Uid::ROOT)
        .invoker(Uid::ROOT)
        .cwd("/")
        .build()
}

/// Registry key path for cache slot `i`.
pub fn font_key(i: usize) -> String {
    format!("HKLM/Software/Fonts/Cache{i}")
}

/// The vulnerable font-cache purge module.
#[derive(Debug, Clone, Copy, Default)]
pub struct FontPurge;

impl Application for FontPurge {
    fn name(&self) -> &'static str {
        "fontpurge"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let mut purged = 0;
        for i in 0..FONT_KEYS {
            let key = font_key(i);
            let read_site = format!("fontpurge:read_key{i}");
            let purge_site = format!("fontpurge:purge{i}");
            let Ok(path) = os.sys_reg_read(pid, &read_site, &key, "Path", InputSemantic::FsFileName) else {
                let _ = os.sys_print(pid, "fontpurge:warn", format!("fontpurge: {key} missing\n"));
                continue;
            };
            // Flaw: the file named by an anyone-writable key is deleted with
            // no check of what it actually is.
            match os.sys_unlink(pid, &purge_site, PathArg::from(&path)) {
                Ok(()) => purged += 1,
                Err(_) => {
                    let _ = os.sys_print(
                        pid,
                        "fontpurge:warn",
                        format!("fontpurge: cannot purge {}\n", path.text()),
                    );
                }
            }
        }
        let _ = os.sys_print(
            pid,
            "fontpurge:done",
            format!("fontpurge: {purged} cache files purged\n"),
        );
        0
    }
}

/// The patched module: only deletes regular files inside the font
/// directory, never elsewhere.
#[derive(Debug, Clone, Copy, Default)]
pub struct FontPurgeFixed;

impl Application for FontPurgeFixed {
    fn name(&self) -> &'static str {
        "fontpurge-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let mut purged = 0;
        for i in 0..FONT_KEYS {
            let key = font_key(i);
            let read_site = format!("fontpurge:read_key{i}");
            let purge_site = format!("fontpurge:purge{i}");
            let Ok(path) = os.sys_reg_read(pid, &read_site, &key, "Path", InputSemantic::FsFileName) else {
                continue;
            };
            let text = path.text();
            // Fix: confine deletions to the font directory, refuse
            // traversal and symlinks.
            if !text.starts_with("/winnt/fonts/") || text.contains("..") {
                let _ = os.sys_print(pid, "fontpurge:warn", format!("fontpurge: refusing {text}\n"));
                continue;
            }
            match os.sys_lstat(pid, &purge_site, PathArg::from(&path)) {
                Ok(st) if st.file_type == epa_sandbox::fs::FileType::Regular => {}
                _ => {
                    let _ = os.sys_print(pid, "fontpurge:warn", format!("fontpurge: refusing {text}\n"));
                    continue;
                }
            }
            if os.sys_unlink(pid, &purge_site, PathArg::from(&path)).is_ok() {
                purged += 1;
            }
        }
        let _ = os.sys_print(
            pid,
            "fontpurge:done",
            format!("fontpurge: {purged} cache files purged\n"),
        );
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;

    #[test]
    fn clean_purge_is_violation_free() {
        let setup = worlds::fontpurge_world();
        let out = run_once(&setup, &FontPurge, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(!out.os.fs.exists("/winnt/fonts/cache0.fon"), "caches really purged");
    }

    #[test]
    fn planted_value_deletes_system_ini() {
        let mut setup = worlds::fontpurge_world();
        // The attack an unprotected key invites: anyone rewrites the value.
        setup
            .world
            .registry
            .god_set_value(&font_key(2), "Path", "/winnt/system.ini");
        let out = run_once(&setup, &FontPurge, None);
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == epa_sandbox::policy::ViolationKind::TaintedPrivilegedOp),
            "{:?}",
            out.violations
        );
        assert!(
            !out.os.fs.exists("/winnt/system.ini"),
            "the critical file really is gone"
        );
    }

    #[test]
    fn fixed_module_refuses_the_attack() {
        let mut setup = worlds::fontpurge_world();
        setup
            .world
            .registry
            .god_set_value(&font_key(2), "Path", "/winnt/system.ini");
        let out = run_once(&setup, &FontPurgeFixed, None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.os.fs.exists("/winnt/system.ini"));
    }

    #[test]
    fn tainted_delete_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::fontpurge_world();
        setup
            .world
            .registry
            .god_set_value(&font_key(2), "Path", "/winnt/system.ini");
        let out = run_once(&setup, &FontPurge, None);
        crate::assert_evidence_in_bounds(&out);
        assert!(out
            .violations
            .iter()
            .any(|v| v.evidence.items[0].summary.contains("/winnt/system.ini")));
    }
}
