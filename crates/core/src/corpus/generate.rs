//! Seed-reproducible scenario synthesis on the in-tree proptest strategies.
//!
//! [`synthesize`] derives one independent RNG per scenario index from the
//! corpus seed (a splitmix64-style mix), so scenario `i` is identical no
//! matter how many scenarios surround it, and the whole corpus is
//! reproducible from `(seed, count)` alone. Drafting runs in two stages:
//! proptest [`Strategy`] draws build an intermediate draft, and an
//! assembly pass resolves the draft against a fixed, always-valid base world
//! — every synthesized [`WorldSpec`] passes [`WorldSpec::validate`] and
//! [`WorldSpec::materialize`] by construction.
//!
//! The draw distribution is deliberately biased toward the shapes the paper
//! found fruitful: re-read (occurrence-heavy, TOCTTOU) file sites,
//! privileged SUID-root programs, symlink chains, and registry/network
//! interaction mixes.

use proptest::collection;
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;

use epa_sandbox::cred::{Gid, Uid};
use epa_sandbox::os::ScenarioMeta;
use epa_sandbox::policy::InvariantSpec;

use super::behavior::{BehaviorScript, BehaviorStep};
use super::Scenario;
use crate::engine::spec::{ScenarioBuilder, WorldSpec};

/// Default corpus seed (`"EPA0"` as bytes), used when none is given.
pub const DEFAULT_CORPUS_SEED: u64 = 0x4550_4130;

/// Parameters of one corpus synthesis run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Master seed every per-scenario RNG derives from.
    pub seed: u64,
    /// Number of scenarios to synthesize.
    pub count: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: DEFAULT_CORPUS_SEED,
            count: 120,
        }
    }
}

/// splitmix64 finalizer: derives the per-scenario seed from `(seed, index)`
/// so each scenario owns an independent, order-insensitive RNG stream.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How privileged the program under test is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgramKind {
    /// SUID-root (the paper's high-stakes case; drawn most often).
    SuidRoot,
    /// Root-owned, invoked by root.
    Root,
    /// Unprivileged.
    Plain,
}

/// Raw strategy draws, before resolution against the base world.
#[derive(Debug, Clone)]
struct Draft {
    program_kind: ProgramKind,
    /// `(name, content, mode_pick, owner_pick)` per data file.
    files: Vec<(String, String, u8, u8)>,
    /// Symlink chain length under `/tmp` (0 disables).
    chain_len: u8,
    /// What the chain ultimately points at.
    chain_target: u8,
    /// `(key_suffix, world_writable_pick, value_name, value_data)`.
    regs: Vec<(String, u8, String, String)>,
    /// `(host_pick, port, trusted_pick)` per remote service.
    services: Vec<(u8, u16, u8)>,
    /// Inbound network message `(enable_pick, port_pick, payload)`.
    inbound: (u8, u16, String),
    /// IPC message `(enable_pick, payload)`.
    ipc: (u8, String),
    /// `(NAME_suffix, value)` env vars.
    envs: Vec<(String, String)>,
    /// Extra argv entries after the fixed first argument.
    extra_args: Vec<String>,
    /// Which oracle invariant (if any) to declare.
    invariant_pick: u8,
    /// `(kind, selector, aux)` per scripted step.
    steps: Vec<(u8, u8, u8)>,
}

/// Draws a [`Draft`] from `rng`. Field-by-field `generate` calls on one RNG
/// keep this a single deterministic stream per scenario.
fn draft(rng: &mut TestRng) -> Draft {
    Draft {
        // 4-in-6 SUID-root: privileged spawns are where perturbation pays.
        program_kind: match (0u8..6).generate(rng) {
            0..=3 => ProgramKind::SuidRoot,
            4 => ProgramKind::Root,
            _ => ProgramKind::Plain,
        },
        files: collection::vec(("[a-z]{2,6}", "[a-z0-9 ]{0,16}", 0u8..4, 0u8..3), 0..4).generate(rng),
        chain_len: (0u8..3).generate(rng),
        chain_target: (0u8..3).generate(rng),
        regs: collection::vec(("[A-Za-z]{2,8}", 0u8..2, "[a-z]{2,6}", "[a-z0-9/.]{1,12}"), 0..3).generate(rng),
        services: collection::vec((0u8..3, 1024u16..9000, 0u8..2), 0..3).generate(rng),
        inbound: (
            (0u8..2).generate(rng),
            (1024u16..9000).generate(rng),
            "[a-z ]{1,12}".generate(rng),
        ),
        ipc: ((0u8..2).generate(rng), "[a-z ]{1,12}".generate(rng)),
        envs: collection::vec(("[A-Z]{2,5}", "[a-z0-9/:]{1,12}"), 0..3).generate(rng),
        extra_args: collection::vec("[a-z]{1,8}", 0..2).generate(rng),
        invariant_pick: (0u8..3).generate(rng),
        steps: collection::vec((0u8..12, 0u8..8, 0u8..8), 3..10).generate(rng),
    }
}

/// The modes data files may carry (index by the draft's `mode_pick`).
const FILE_MODES: [u16; 4] = [0o644, 0o600, 0o666, 0o444];

/// Resolves a draft against the fixed base world into a valid spec plus the
/// script that exercises it. `index` suffixes every generated path/name so
/// fingerprints differ across scenario slots even for identical draws.
fn assemble(index: usize, draft: &Draft) -> (WorldSpec, BehaviorScript) {
    let meta = ScenarioMeta::default();
    let invoker = meta.invoker;
    let invoker_gid = meta.invoker_gid;
    let attacker = meta.attacker;
    let attacker_gid = meta.attacker_gid;

    let mut b = ScenarioBuilder::new()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", invoker, invoker_gid, "/home/student")
        .user("evil", attacker, attacker_gid, "/home/evil")
        .dir("/tmp", Uid::ROOT, Gid::ROOT, 0o1777)
        .dir("/home/evil", attacker, attacker_gid, 0o755)
        .dir("/home/evil/bin", attacker, attacker_gid, 0o755)
        .dir("/var/spool/gen", Uid::ROOT, Gid::ROOT, 0o777)
        .dir("/data", Uid::ROOT, Gid::ROOT, 0o777)
        .dir("/etc/cron.d", Uid::ROOT, Gid::ROOT, 0o755)
        .root_file("/etc/passwd", "root:0:0:", 0o644)
        .root_file("/etc/shadow", "root:HASH", 0o600)
        .root_file("/etc/system.conf", "mods=core", 0o644)
        .root_file("/usr/bin/helper", "", 0o755)
        .cwd("/tmp");

    // Program under test.
    let program = format!("/usr/bin/genapp{index}");
    b = match draft.program_kind {
        ProgramKind::SuidRoot => b.suid_root_program(&program),
        ProgramKind::Root => b.root_program(&program).invoker(Uid::ROOT),
        ProgramKind::Plain => b.file(&program, "", invoker, invoker_gid, 0o755).program(&program),
    };

    // Data files — unique, index-suffixed paths.
    let mut file_paths = Vec::new();
    for (j, (name, content, mode_pick, owner_pick)) in draft.files.iter().enumerate() {
        let path = format!("/data/f{index}-{j}-{name}");
        let (owner, group) = match owner_pick {
            0 => (Uid::ROOT, Gid::ROOT),
            1 => (invoker, invoker_gid),
            _ => (attacker, attacker_gid),
        };
        b = b.file(
            &path,
            content.as_str(),
            owner,
            group,
            FILE_MODES[*mode_pick as usize % 4],
        );
        file_paths.push(path);
    }

    // Symlink chain: /tmp/gen{index}-link0 -> ... -> target.
    let chain_target = match draft.chain_target {
        0 => file_paths.first().cloned().unwrap_or_else(|| "/etc/passwd".to_string()),
        1 => "/etc/passwd".to_string(),
        _ => "/etc/shadow".to_string(),
    };
    let mut chain_head: Option<String> = None;
    let mut prev = chain_target;
    for k in 0..draft.chain_len {
        let link = format!("/tmp/gen{index}-link{k}");
        b = b.symlink(&link, &prev);
        prev = link.clone();
        chain_head = Some(link);
    }

    // Registry keys (+ one value each).
    let mut reg_entries = Vec::new();
    for (j, (suffix, ww, value_name, value_data)) in draft.regs.iter().enumerate() {
        let key = format!("Software/Gen{index}-{j}-{suffix}");
        b = b
            .registry_key(&key, *ww == 1)
            .registry_value(value_name.as_str(), value_data.as_str());
        reg_entries.push((key, value_name.clone()));
    }

    // Remote services, each resolvable via DNS.
    let mut service_endpoints = Vec::new();
    for (j, (host_pick, port, trusted_pick)) in draft.services.iter().enumerate() {
        let host = match host_pick {
            0 => meta.trusted_host.clone(),
            1 => meta.attacker_host.clone(),
            _ => format!("svc{index}-{j}.example.org"),
        };
        if !service_endpoints.iter().any(|(h, _)| *h == host) {
            b = b
                .dns(&host, format!("10.0.{}.{j}", index % 250))
                .service(&host, *port, *trusted_pick == 1);
            service_endpoints.push((host, *port));
        }
    }

    // Optional genuine inbound traffic.
    let inbound_port = (draft.inbound.0 == 1).then(|| {
        b = b
            .clone()
            .inbound_message(draft.inbound.1, &meta.trusted_host, draft.inbound.2.as_str());
        draft.inbound.1
    });
    let ipc_channel = (draft.ipc.0 == 1).then(|| {
        let channel = format!("gen{index}-chan");
        b = b.clone().ipc_message(&channel, "peerd", draft.ipc.1.as_str());
        channel
    });

    // Environment and argv.
    let mut env_names = Vec::new();
    for (suffix, value) in &draft.envs {
        let name = format!("GEN_{suffix}");
        if !env_names.contains(&name) {
            b = b.env(&name, value.as_str());
            env_names.push(name);
        }
    }
    let mut args = vec![format!("input{index}.txt")];
    args.extend(draft.extra_args.iter().cloned());
    b = b.args(args);

    b = match draft.invariant_pick {
        0 => b.invariant(InvariantSpec::file_pristine("/etc/shadow")),
        1 => b.invariant(InvariantSpec::forbid_exec("/home/evil")),
        _ => b,
    };

    let spec = b.build();

    // Script: fixed prologue guarantees at least one perturbable site of
    // each of the arg/check-then-use families, then the drawn step mix.
    let mut steps = vec![
        BehaviorStep::ReadArg { index: 0 },
        BehaviorStep::StatThenWrite {
            path: format!("/var/spool/gen/out{index}"),
            content: "result".to_string(),
            mode: 0o644,
        },
    ];
    let read_target = |sel: u8| -> String {
        if let Some(head) = &chain_head {
            if sel.is_multiple_of(3) {
                return head.clone();
            }
        }
        file_paths
            .get(sel as usize % file_paths.len().max(1))
            .cloned()
            .unwrap_or_else(|| "/etc/passwd".to_string())
    };
    for (j, (kind, sel, aux)) in draft.steps.iter().enumerate() {
        let step = match kind {
            // Re-read bias: kinds 0 and 1 both read, often more than once,
            // through a single site — the occurrence-sensitive shape.
            0 | 1 => BehaviorStep::ReadFile {
                path: read_target(*sel),
                times: 1 + (*aux as usize % 3),
            },
            2 => BehaviorStep::ReadEnv {
                name: env_names
                    .get(*sel as usize % env_names.len().max(1))
                    .cloned()
                    .unwrap_or_else(|| "PATH".to_string()),
            },
            3 => BehaviorStep::StatThenWrite {
                path: format!("/data/gen{index}-tmp{j}"),
                content: "staged".to_string(),
                mode: 0o644,
            },
            4 => BehaviorStep::CreateExclusive {
                path: format!("/tmp/gen{index}-excl{j}"),
                mode: 0o600,
            },
            5 => BehaviorStep::Append {
                path: read_target(*sel),
                content: "log entry".to_string(),
            },
            6 => match &chain_head {
                Some(head) => BehaviorStep::ReadLink { path: head.clone() },
                None => BehaviorStep::Stat {
                    path: "/etc/passwd".to_string(),
                },
            },
            7 => BehaviorStep::ListDir {
                path: "/data".to_string(),
            },
            8 => BehaviorStep::Exec {
                path: "/usr/bin/helper".to_string(),
            },
            9 => match reg_entries.get(*sel as usize % reg_entries.len().max(1)) {
                Some((key, value)) if *aux % 2 == 0 => BehaviorStep::RegRead {
                    key: key.clone(),
                    value: value.clone(),
                },
                Some((key, value)) => BehaviorStep::RegWrite {
                    key: key.clone(),
                    value: value.clone(),
                    data: "updated".to_string(),
                },
                None => BehaviorStep::ReadFile {
                    path: "/etc/passwd".to_string(),
                    times: 2,
                },
            },
            10 => match service_endpoints.get(*sel as usize % service_endpoints.len().max(1)) {
                Some((host, port)) if *aux % 2 == 0 => BehaviorStep::NetExchange {
                    host: host.clone(),
                    port: *port,
                    payload: "hello".to_string(),
                },
                Some((host, _)) => BehaviorStep::DnsLookup { host: host.clone() },
                None => BehaviorStep::DnsLookup {
                    host: meta.trusted_host.clone(),
                },
            },
            _ => match (inbound_port, &ipc_channel) {
                (Some(port), _) if *aux % 2 == 0 => BehaviorStep::NetReceive { port },
                (_, Some(channel)) => BehaviorStep::IpcReceive {
                    channel: channel.clone(),
                },
                (Some(port), None) => BehaviorStep::NetReceive { port },
                (None, None) => BehaviorStep::ReadEnv {
                    name: "PATH".to_string(),
                },
            },
        };
        steps.push(step);
    }
    steps.push(BehaviorStep::Print {
        text: format!("done{index}"),
    });

    (spec, BehaviorScript::new(steps))
}

/// Synthesizes the scenario at `index` of the corpus seeded with `seed`.
///
/// Deterministic and order-insensitive: the same `(seed, index)` always
/// yields the same scenario, regardless of the surrounding corpus size.
pub fn synthesize_one(seed: u64, index: usize) -> Scenario {
    let scenario_seed = mix(seed, index as u64);
    let mut rng = TestRng::from_seed(scenario_seed);
    let d = draft(&mut rng);
    let (spec, script) = assemble(index, &d);
    debug_assert!(spec.validate().is_ok(), "generated spec must validate");
    Scenario {
        id: format!("gen-{seed:016x}-{index:04}"),
        seed: scenario_seed,
        spec,
        script,
    }
}

/// Synthesizes the full corpus described by `config`.
pub fn synthesize(config: &CorpusConfig) -> Vec<Scenario> {
    (0..config.count).map(|i| synthesize_one(config.seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesis_is_deterministic_and_valid() {
        let config = CorpusConfig { seed: 42, count: 24 };
        let a = synthesize(&config);
        let b = synthesize(&config);
        assert_eq!(a.len(), 24);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fingerprint(), y.fingerprint());
            x.spec.validate().expect("generated spec validates");
            x.spec.materialize().expect("generated spec materializes");
        }
    }

    #[test]
    fn scenarios_are_order_insensitive() {
        let lone = synthesize_one(7, 5);
        let in_corpus = synthesize(&CorpusConfig { seed: 7, count: 10 });
        assert_eq!(lone.fingerprint(), in_corpus[5].fingerprint());
    }

    #[test]
    fn corpus_mixes_interaction_families() {
        use std::collections::BTreeSet;
        let corpus = synthesize(&CorpusConfig { seed: 1, count: 40 });
        let mut tags = BTreeSet::new();
        let mut suid = 0;
        for s in &corpus {
            if s.spec.files.iter().any(|f| f.mode & 0o4000 != 0) {
                suid += 1;
            }
            for step in &s.script.steps {
                tags.insert(format!("{step:?}").split(' ').next().unwrap_or("").to_string());
            }
        }
        // Privileged spawns dominate, and the step mix spans many families.
        assert!(suid > 20, "SUID bias missing: {suid}/40");
        assert!(tags.len() >= 10, "step diversity too low: {tags:?}");
    }
}
