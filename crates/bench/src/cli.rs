//! The `reproduce` command-line surface: one table of subcommands, one
//! dispatcher.
//!
//! Every subcommand the binary accepts lives in [`SUBCOMMANDS`] — name,
//! argument syntax, one-line description, and the function that runs it —
//! so the help text, the `all` sweep, and the dispatch can never drift
//! apart: a subcommand that is missing from the table simply does not
//! exist. The binary itself only parses flags and calls [`run`].

use crate::experiments;

/// Options shared by the experiments that take values.
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Also write the machine-readable artifact next to the workspace root.
    pub json: bool,
    /// Corpus RNG seed override (`--seed`).
    pub seed: Option<u64>,
    /// Corpus scenario-count override (`--count`).
    pub count: Option<usize>,
    /// Persistent result-store directory (`--store`; `EPA_CACHE_DIR` when
    /// absent). Validated by [`epa_core::store::resolve_store_dir`].
    pub store: Option<String>,
    /// The `store` subcommand's operation (`stats`, `prune`, `verify`).
    pub store_op: Option<String>,
    /// TTL in seconds for `store prune` (`--ttl`).
    pub ttl: Option<u64>,
}

/// One `reproduce` subcommand: its name, extra-argument syntax, one-line
/// description, and runner.
pub struct Subcommand {
    /// The name given on the command line.
    pub name: &'static str,
    /// Extra flags the subcommand honors (empty when none).
    pub args: &'static str,
    /// One-line description for the help table.
    pub about: &'static str,
    /// Executes the subcommand.
    pub run: fn(RunOptions) -> Result<(), String>,
}

/// Every subcommand of the `reproduce` binary, in `all`-sweep order.
pub const SUBCOMMANDS: &[Subcommand] = &[
    Subcommand {
        name: "table1",
        args: "",
        about: "vulnerability database by security consequence",
        run: |_| print_ok(experiments::table1()),
    },
    Subcommand {
        name: "table2",
        args: "",
        about: "vulnerability database by intrusion technique",
        run: |_| print_ok(experiments::table2()),
    },
    Subcommand {
        name: "table3",
        args: "",
        about: "vulnerability database by environment dependency",
        run: |_| print_ok(experiments::table3()),
    },
    Subcommand {
        name: "table4",
        args: "",
        about: "environment-object attributes the faults perturb",
        run: |_| print_ok(experiments::table4()),
    },
    Subcommand {
        name: "table5",
        args: "",
        about: "direct fault-injection operators",
        run: |_| print_ok(experiments::table5()),
    },
    Subcommand {
        name: "table6",
        args: "",
        about: "indirect fault-injection operators",
        run: |_| print_ok(experiments::table6()),
    },
    Subcommand {
        name: "figure1",
        args: "",
        about: "fault/failure model of the paper's Figure 1",
        run: |_| print_ok(experiments::figure1().render()),
    },
    Subcommand {
        name: "figure2",
        args: "",
        about: "adequacy regions of the paper's Figure 2",
        run: |_| print_ok(experiments::figure2().render()),
    },
    Subcommand {
        name: "lpr",
        args: "",
        about: "§3.4 lpr spool-file case study",
        run: |_| print_ok(experiments::lpr_34().render()),
    },
    Subcommand {
        name: "turnin",
        args: "",
        about: "§4.1 turnin case study (flawed vs fixed)",
        run: |_| print_ok(experiments::turnin_41().render()),
    },
    Subcommand {
        name: "registry",
        args: "",
        about: "§4.2 registry/profile case studies",
        run: |_| print_ok(experiments::registry_42().render()),
    },
    Subcommand {
        name: "comparison",
        args: "",
        about: "perturbation vs ava/fuzz baseline comparison",
        run: |_| print_ok(experiments::comparison().render()),
    },
    Subcommand {
        name: "placement",
        args: "",
        about: "EAI-site placement sensitivity ablation",
        run: |_| print_ok(experiments::placement().render()),
    },
    Subcommand {
        name: "patterns",
        args: "",
        about: "cross-application vulnerability patterns",
        run: |_| print_ok(experiments::patterns().render()),
    },
    Subcommand {
        name: "suite",
        args: "[--json] [--store DIR]",
        about: "eight-application standard suite + class rollup",
        run: run_suite,
    },
    Subcommand {
        name: "store",
        args: "[stats|prune|verify] [--store DIR] [--count N] [--ttl SECS]",
        about: "persistent result-store maintenance (default: stats)",
        run: run_store,
    },
    Subcommand {
        name: "corpus",
        args: "[--json] [--seed N] [--count N]",
        about: "differential corpus sweep (fails on divergence)",
        run: run_corpus,
    },
    Subcommand {
        name: "lint",
        args: "[--json]",
        about: "static world lint + fault relevance (fails on errors)",
        run: run_lint,
    },
    Subcommand {
        name: "clean",
        args: "",
        about: "clean-run baseline (violations without faults)",
        run: run_clean,
    },
];

/// Prints a pre-rendered experiment and succeeds.
#[allow(clippy::unnecessary_wraps)]
fn print_ok(text: String) -> Result<(), String> {
    print!("{text}");
    Ok(())
}

/// Where machine-readable artifacts land: the workspace root, next to
/// `BENCH_engine.json`.
pub fn workspace_artifact(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

/// Serializes `value` to `name` at the workspace root when `--json` is on.
fn write_artifact<T: serde::Serialize>(json: bool, name: &str, value: &T) -> Result<(), String> {
    if !json {
        return Ok(());
    }
    let path = workspace_artifact(name);
    let text = serde_json::to_string_pretty(value).map_err(|e| format!("serializing {name}: {e}"))?;
    std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn run_suite(opts: RunOptions) -> Result<(), String> {
    // A persistent store (from `--store` or `EPA_CACHE_DIR`) turns the
    // suite into a warm-replayable run: every executed digest is written
    // through, and the lockfile manifest pins the plan's store keys.
    // Validation failures warn and fall back to in-memory memoization —
    // they never fail the experiment (the `EPA_WORKERS` contract).
    let resolution = epa_core::store::resolve_store_dir_env(opts.store.as_deref());
    if let Some(warning) = &resolution.warning {
        eprintln!("reproduce: {warning}");
    }
    let persistent = resolution
        .dir
        .and_then(|dir| match epa_core::engine::ResultCache::persistent(&dir) {
            Ok(cache) => Some((dir, cache)),
            Err(e) => {
                eprintln!(
                    "reproduce: store at {}: {e}; falling back to in-memory memoization",
                    dir.display()
                );
                None
            }
        });
    let report = match &persistent {
        Some((dir, cache)) => {
            let (report, manifest) = experiments::suite_with_cache(cache.clone());
            let path = manifest
                .write_to(dir)
                .map_err(|e| format!("suite: writing manifest: {e}"))?;
            let stats = cache.stats();
            println!(
                "store: {} ({} warm replays from disk this run)",
                dir.display(),
                stats.store_hits
            );
            println!("manifest: {} ({} store keys)", path.display(), manifest.store_keys());
            report
        }
        None => experiments::suite(),
    };
    print!("{}", report.render_text());
    // Roll the verdict stream up by vulnerability class: each verdict's
    // policy family crossed with its fault's EAI category, classified
    // against the epa-vulndb taxonomy.
    print!(
        "{}",
        epa_vulndb::render_class_rollup(&epa_vulndb::suite_class_rollup(&report))
    );
    write_artifact(opts.json, "SUITE_report.json", &report)
}

/// The `store` subcommand: maintenance operations on a persistent result
/// store. Without a configured directory every operation is a no-op with a
/// note (so the `all` sweep stays green on machines without a store).
fn run_store(opts: RunOptions) -> Result<(), String> {
    use epa_core::store::{DiskStore, PruneOptions, SuiteManifest};
    let op = opts.store_op.as_deref().unwrap_or("stats");
    let resolution = epa_core::store::resolve_store_dir_env(opts.store.as_deref());
    if let Some(warning) = &resolution.warning {
        eprintln!("reproduce: {warning}");
    }
    let Some(dir) = resolution.dir else {
        println!("store: no store directory configured (pass --store DIR or set EPA_CACHE_DIR); nothing to {op}");
        return Ok(());
    };
    let store = DiskStore::open(&dir).map_err(|e| format!("store: {e}"))?;
    match op {
        "stats" => {
            let stats = store.stats();
            println!("store: {}", dir.display());
            println!(
                "  entries: {}   bytes: {}   buckets: {}   quarantined buckets: {}",
                stats.entries, stats.bytes, stats.buckets, stats.quarantined_buckets
            );
            match SuiteManifest::load_from(&dir).map_err(|e| format!("store: {e}"))? {
                Some(manifest) => println!(
                    "  manifest: {} application(s), {} store keys",
                    manifest.apps.len(),
                    manifest.store_keys()
                ),
                None => println!("  manifest: none (run `suite --store {}` to write one)", dir.display()),
            }
            Ok(())
        }
        "prune" => {
            // Defaults: keep 4096 entries, expire after 30 days unused.
            let options = PruneOptions {
                max_entries: Some(opts.count.unwrap_or(4096)),
                ttl: Some(std::time::Duration::from_secs(opts.ttl.unwrap_or(30 * 24 * 60 * 60))),
            };
            let report = store.prune(options);
            println!(
                "store: pruned {} — examined {}, expired {}, evicted {}, remaining {}",
                dir.display(),
                report.examined,
                report.expired,
                report.evicted,
                report.remaining
            );
            Ok(())
        }
        "verify" => {
            let report = store.verify();
            println!(
                "store: verify {} — {} entr{} ok, {} corrupt, {} quarantined bucket(s)",
                dir.display(),
                report.ok,
                if report.ok == 1 { "y" } else { "ies" },
                report.corrupt.len(),
                report.quarantined.len()
            );
            for line in &report.corrupt {
                println!("  corrupt: {line}");
            }
            for bucket in &report.quarantined {
                println!("  quarantined: {bucket}");
            }
            let mut failures = Vec::new();
            if !report.is_clean() {
                failures.push(format!(
                    "{} corrupt entr(ies), {} quarantined bucket(s)",
                    report.corrupt.len(),
                    report.quarantined.len()
                ));
            }
            match SuiteManifest::load_from(&dir).map_err(|e| format!("store: {e}"))? {
                Some(manifest) => {
                    let check = manifest.verify(&store);
                    println!(
                        "  manifest: {} key(s) present, {} missing",
                        check.present,
                        check.missing.len()
                    );
                    for (app, digest) in &check.missing {
                        println!("  missing: {app} {digest}");
                    }
                    if !check.is_complete() {
                        failures.push(format!(
                            "{} manifest key(s) missing from the store",
                            check.missing.len()
                        ));
                    }
                }
                None => println!("  manifest: none"),
            }
            if failures.is_empty() {
                Ok(())
            } else {
                Err(format!("store: verify failed: {}", failures.join("; ")))
            }
        }
        other => Err(format!(
            "store: unknown operation `{other}` (expected stats, prune or verify)"
        )),
    }
}

fn run_corpus(opts: RunOptions) -> Result<(), String> {
    let seed = opts.seed.unwrap_or(epa_core::corpus::DEFAULT_CORPUS_SEED);
    let count = opts.count.unwrap_or(120);
    let report = experiments::corpus(seed, count);
    print!("{}", report.render_text());
    write_artifact(opts.json, "CORPUS_report.json", &report)?;
    if report.divergences > 0 {
        return Err(format!(
            "corpus: {} scenario(s) diverged across execution paths (seeds are in the dashboard above)",
            report.divergences
        ));
    }
    Ok(())
}

fn run_lint(opts: RunOptions) -> Result<(), String> {
    let summaries = experiments::lint();
    for summary in &summaries {
        print!("{}", summary.render());
    }
    let errors: usize = summaries
        .iter()
        .map(|s| s.report.count(epa_core::Severity::Error))
        .sum();
    let warnings: usize = summaries
        .iter()
        .map(|s| s.report.count(epa_core::Severity::Warning))
        .sum();
    println!(
        "lint: {} world(s), {errors} error(s), {warnings} warning(s)",
        summaries.len()
    );
    write_artifact(opts.json, "LINT_report.json", &summaries)?;
    if errors > 0 {
        return Err(format!("lint: {errors} error-severity diagnostic(s)"));
    }
    Ok(())
}

#[allow(clippy::unnecessary_wraps)]
fn run_clean(_opts: RunOptions) -> Result<(), String> {
    println!("Clean-run baseline (violations in unperturbed runs):");
    for (app, n) in experiments::clean_baseline() {
        println!("  {app:<16} {n}");
    }
    Ok(())
}

/// Looks a subcommand up by name.
pub fn find(name: &str) -> Option<&'static Subcommand> {
    SUBCOMMANDS.iter().find(|s| s.name == name)
}

/// Runs one subcommand by name (`Err` for unknown names or failures).
pub fn run(name: &str, opts: RunOptions) -> Result<(), String> {
    let sub = find(name).ok_or_else(|| format!("unknown experiment `{name}`"))?;
    (sub.run)(opts)?;
    println!();
    Ok(())
}

/// Renders the one help table every usage message draws from.
pub fn usage() -> String {
    let width = SUBCOMMANDS
        .iter()
        .map(|s| s.name.len() + if s.args.is_empty() { 0 } else { s.args.len() + 1 })
        .max()
        .unwrap_or(0);
    let mut out = String::from("usage: reproduce -- [SUBCOMMAND...] (default: all)\n\nsubcommands:\n");
    for s in SUBCOMMANDS {
        let invocation = if s.args.is_empty() {
            s.name.to_string()
        } else {
            format!("{} {}", s.name, s.args)
        };
        out.push_str(&format!("  {invocation:<width$}  {}\n", s.about));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The table is the single source of truth: every subcommand has a
    /// unique name, a non-empty description, and appears in the rendered
    /// help — including the newer `lint` and `corpus` entries.
    #[test]
    fn every_subcommand_is_listed_exactly_once() {
        let mut names = std::collections::BTreeSet::new();
        let help = usage();
        for sub in SUBCOMMANDS {
            assert!(names.insert(sub.name), "duplicate subcommand `{}`", sub.name);
            assert!(!sub.about.is_empty(), "`{}` has no description", sub.name);
            assert!(help.contains(sub.name), "`{}` missing from usage()", sub.name);
            if !sub.args.is_empty() {
                assert!(help.contains(sub.args), "`{}` args missing from usage()", sub.name);
            }
        }
        for expected in ["lint", "corpus", "suite", "store", "clean", "table1", "figure2"] {
            assert!(find(expected).is_some(), "`{expected}` not in SUBCOMMANDS");
        }
    }

    /// `store` without a configured directory is a no-op note, not a
    /// failure — the `all` sweep must stay green on storeless machines.
    /// Unknown operations are rejected with the operation menu.
    #[test]
    fn store_subcommand_is_vacuous_without_a_directory_and_rejects_bad_ops() {
        // The environment is not consulted when an explicit blank wins.
        let vacuous = RunOptions {
            store: Some("   ".to_string()),
            store_op: Some("verify".to_string()),
            ..RunOptions::default()
        };
        assert_eq!(run("store", vacuous), Ok(()));
        let dir = std::env::temp_dir().join(format!("epa-cli-store-{}", std::process::id()));
        let bad = RunOptions {
            store: Some(dir.to_string_lossy().to_string()),
            store_op: Some("defragment".to_string()),
            ..RunOptions::default()
        };
        let err = run("store", bad).unwrap_err();
        assert!(err.contains("unknown operation"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Unknown names fail with the canonical error, so the binary's exit
    /// path is exercised without running any experiment.
    #[test]
    fn unknown_subcommands_are_rejected() {
        let err = run("no-such-experiment", RunOptions::default()).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
    }
}
