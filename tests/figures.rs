//! Integration: Figures 1 and 2.

use epa::core::coverage::{AdequacyPoint, AdequacyRegion, AdequacyThresholds};
use epa_bench::{figure1, figure2};

#[test]
fn figure1_splits_violations_by_propagation_path() {
    let f = figure1();
    assert_eq!(f.injected, 41);
    assert_eq!(
        f.via_internal_entity, 2,
        "dotdot + PATH insertion travel through internal entities"
    );
    assert_eq!(f.via_environment_entity, 7, "the file-attribute faults act directly");
    assert_eq!(f.via_internal_entity + f.via_environment_entity, 9);
}

#[test]
fn figure2_reproduces_the_four_regions() {
    let f = figure2();
    assert_eq!(f.points.len(), 4);
    assert_eq!(
        f.points[0].region,
        AdequacyRegion::Inadequate,
        "point 1: {:?}",
        f.points[0]
    );
    assert_eq!(
        f.points[1].region,
        AdequacyRegion::InadequateNarrow,
        "point 2: {:?}",
        f.points[1]
    );
    assert_eq!(
        f.points[2].region,
        AdequacyRegion::Insecure,
        "point 3: {:?}",
        f.points[2]
    );
    assert_eq!(f.points[3].region, AdequacyRegion::Safe, "point 4: {:?}", f.points[3]);
}

#[test]
fn figure2_full_campaigns_have_full_interaction_coverage() {
    let f = figure2();
    assert!((f.points[2].point.interaction - 1.0).abs() < 1e-9);
    assert!((f.points[3].point.interaction - 1.0).abs() < 1e-9);
    assert!(
        (f.points[3].point.fault - 1.0).abs() < 1e-9,
        "the fixed program tolerates everything"
    );
    // The vulnerable full campaign's fault coverage is 32/41.
    assert!((f.points[2].point.fault - 32.0 / 41.0).abs() < 1e-9);
}

#[test]
fn region_classification_is_threshold_driven() {
    let lax = AdequacyThresholds {
        interaction_high: 0.3,
        fault_high: 0.5,
    };
    let p = AdequacyPoint::new(0.38, 0.83);
    assert_eq!(p.region(lax), AdequacyRegion::Safe);
    assert_eq!(p.region(AdequacyThresholds::default()), AdequacyRegion::Inadequate);
}
