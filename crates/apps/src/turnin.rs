//! The Purdue `turnin` program of paper §4.1.
//!
//! `turnin` is set-UID root: students run it to copy project files into the
//! teaching assistant's protected `submit` directory. The model reproduces
//! the paper's experiment surface — **8 interaction points, 41 injected
//! perturbations, 9 security violations** — including both published
//! exploits:
//!
//! * the `Projlist` trust flaw (the program relays the content of a file
//!   the student could not read — symlink it to `/etc/shadow` and it prints
//!   the shadow file);
//! * the `../` member-name flaw (a submitted file named `../x` lands in the
//!   TA's home directory instead of the submit directory).
//!
//! One deliberate consolidation (documented in `EXPERIMENTS.md`): the paper
//! drove `turnin` with several test cases (`-l` listing and `-p` submission);
//! here the submission flow also emits the project listing, so a single
//! traced run covers the union of the paper's eight interaction points.
//!
//! The invocation is `turnin -c <course> -p <project> <file>`.

use epa_sandbox::app::Application;
use epa_sandbox::data::{Data, PathArg};
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// Path of the course configuration file.
pub const CONFIG_FILE: &str = "/usr/local/lib/turnin.cf";

/// The `turnin` world of paper §4.1, declared as data: course account,
/// protected submit tree, a student invoker, and the attacker's prepared
/// `tar` lookalike.
pub fn spec() -> epa_core::engine::WorldSpec {
    use crate::worlds::TA_UID;
    use epa_sandbox::cred::Gid;
    use epa_sandbox::fs::FileTag;
    use epa_sandbox::os::ScenarioMeta;
    let scenario = ScenarioMeta::default();
    crate::worlds::base_unix_builder()
        .user("ta", TA_UID, Gid(1000), "/home/ta")
        .dir("/home/ta/submit", TA_UID, Gid(1000), 0o755)
        .file("/home/ta/.login", "setenv SHELL /bin/csh\n", TA_UID, Gid(1000), 0o644)
        .file("/home/ta/submit/Projlist", "proj1\nproj2\n", TA_UID, Gid(1000), 0o644)
        .root_file(CONFIG_FILE, "cs390:ta:1000\ncs503:ta:1000\n", 0o644)
        .root_file("/usr/local/bin/tar", "#!tar", 0o755)
        .suid_root_program("/usr/local/bin/turnin")
        .file(
            "/home/student/hw1.c",
            "int main(){}\n",
            scenario.invoker,
            scenario.invoker_gid,
            0o644,
        )
        // The attacker's prepared PATH payload.
        .file(
            "/home/evil/bin/tar",
            "#!evil-tar",
            scenario.attacker,
            scenario.attacker_gid,
            0o755,
        )
        // The TA's home is the victim's territory: planting files there on
        // the student's behalf is an integrity violation.
        .tag("/home/ta", FileTag::Protected)
        .args(["-c", "cs390", "-p", "proj1", "hw1.c"])
        .env("PATH", "/usr/local/bin:/usr/bin:/bin")
        .env("USER", "student")
        .cwd("/home/student")
        .build()
}

const S_ARGS: &str = "turnin:read_args";
const S_PATH: &str = "turnin:getenv_path";
const S_CONFIG: &str = "turnin:read_config";
const S_PROJLIST: &str = "turnin:read_projlist";
const S_CHDIR: &str = "turnin:chdir_submit";
const S_TEMP: &str = "turnin:mktemp";
const S_TAR: &str = "turnin:exec_tar";
const S_DEST: &str = "turnin:copy_dest";

/// Parsed command line.
struct Invocation {
    course: Data,
    project: Data,
    file_name: Data,
}

/// Reads `-c <course> -p <project> <file>` at the argv interaction point.
fn read_args(os: &mut Os, pid: Pid) -> Result<Invocation, i32> {
    let usage = |os: &mut Os| {
        let _ = os.sys_print(pid, "turnin:usage", "usage: turnin -c course -p project file\n");
        2
    };
    let flag_c = os
        .sys_arg(pid, S_ARGS, 0, InputSemantic::Opaque)
        .map_err(|_| usage(os))?;
    let course = os
        .sys_arg(pid, S_ARGS, 1, InputSemantic::Opaque)
        .map_err(|_| usage(os))?;
    let flag_p = os
        .sys_arg(pid, S_ARGS, 2, InputSemantic::Opaque)
        .map_err(|_| usage(os))?;
    let project = os
        .sys_arg(pid, S_ARGS, 3, InputSemantic::Opaque)
        .map_err(|_| usage(os))?;
    let file_name = os
        .sys_arg(pid, S_ARGS, 4, InputSemantic::UserFileName)
        .map_err(|_| usage(os))?;
    if flag_c.text() != "-c" || flag_p.text() != "-p" {
        return Err(usage(os));
    }
    Ok(Invocation {
        course,
        project,
        file_name,
    })
}

/// Looks up the course account in the already-read configuration content.
/// Lines are `course:account:uid`.
fn find_account(cf: &Data, course: &str) -> Option<(Data, Option<u32>)> {
    for line in cf.lines() {
        let text = line.text();
        let mut parts = text.splitn(3, ':');
        let c = parts.next()?;
        if c != course {
            continue;
        }
        let account = parts.next()?;
        let uid = parts.next().and_then(|u| u.trim().parse().ok());
        let mut d = Data::from(account);
        d.taint_from(&line);
        return Some((d, uid));
    }
    None
}

/// The vulnerable `turnin` of paper §4.1.
#[derive(Debug, Clone, Copy, Default)]
pub struct Turnin;

impl Application for Turnin {
    fn name(&self) -> &'static str {
        "turnin"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // ---- interaction point 1: argv --------------------------------
        let inv = match read_args(os, pid) {
            Ok(i) => i,
            Err(code) => return code,
        };
        // The paper notes turnin "does a good job in forbidding the `/`
        // character" (leading), but misses `../`.
        if inv.file_name.text().starts_with('/') {
            let _ = os.sys_print(pid, "turnin:error", "turnin: absolute file names not allowed\n");
            return 2;
        }

        // ---- interaction point 2: PATH --------------------------------
        let path_list = os
            .sys_getenv(pid, S_PATH, "PATH", InputSemantic::EnvPathList)
            .unwrap_or_else(|_| Data::from("/usr/bin:/bin"));

        // ---- interaction point 3: the configuration file ---------------
        let Ok(cf) = os.sys_read_file(pid, S_CONFIG, CONFIG_FILE) else {
            let _ = os.sys_print(pid, "turnin:error", "turnin: cannot open turnin.cf\n");
            return 1;
        };
        let Some((account_raw, _uid)) = find_account(&cf, &inv.course.text()) else {
            // Flaw: the error message echoes the raw configuration —
            // harmless for a malformed config, catastrophic when the
            // config has been swapped for a secret file.
            let mut msg = Data::from("turnin: course not found; config was:\n");
            msg.append(&cf);
            let _ = os.sys_print(pid, "turnin:error", msg);
            return 1;
        };
        // The parsed account name initializes an internal entity.
        let Ok(account) = os.sys_bind(pid, S_CONFIG, "account", InputSemantic::FsFileName, account_raw) else {
            return 1;
        };
        let mut submit = Data::from("/home/");
        submit.append(&account);
        submit.push_str("/submit");
        let submit_dir = PathArg::from(&submit);

        // ---- interaction point 4: the project list ---------------------
        let projlist_path = submit_dir.join(&PathArg::clean("Projlist"));
        let Ok(listing) = os.sys_read_file(pid, S_PROJLIST, &projlist_path) else {
            let _ = os.sys_print(pid, "turnin:error", "turnin: can not find project list file\n");
            return 9;
        };
        // Flaw: relays the file content to the student without asking
        // whether the student could have read it (the paper's first
        // exploit: Projlist -> /etc/shadow).
        let mut banner = Data::from("turnin: projects for ");
        banner.append(&inv.course);
        banner.push_str(":\n");
        banner.append(&listing);
        let _ = os.sys_print(pid, "turnin:print_listing", banner);
        if !listing.text().lines().any(|l| l.trim() == inv.project.text()) {
            let _ = os.sys_print(pid, "turnin:error", "turnin: no such project\n");
            return 9;
        }

        // ---- interaction point 5: enter the submit directory -----------
        if os.sys_chdir(pid, S_CHDIR, &submit_dir).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: cannot enter submit directory\n");
            return 1;
        }

        // ---- interaction point 6: the temporary archive ----------------
        let temp = format!("/tmp/turnin.{}", pid.0);
        if os.sys_create_excl(pid, S_TEMP, temp.as_str(), 0o600).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: temp file error\n");
            return 1;
        }

        // ---- interaction point 7: pack the submission ------------------
        // execve(acTar, nargv, environ) — resolved through PATH.
        let tar_args = vec![Data::from("cf"), Data::from(temp.clone()), inv.file_name.clone()];
        if os.sys_exec(pid, S_TAR, "tar", tar_args, Some(path_list)).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: cannot run tar\n");
            let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
            return 1;
        }
        let mut archive = Data::from(format!("TAR-ARCHIVE({})\n", inv.file_name.text()));
        archive.taint_from(&inv.file_name);
        if os
            .sys_append(pid, S_TEMP, temp.as_str(), archive.clone(), 0o600)
            .is_err()
        {
            let _ = os.sys_print(pid, "turnin:error", "turnin: temp file write error\n");
            return 1;
        }

        // ---- interaction point 8: install into the submit directory ----
        // Flaw: the destination keeps the student-supplied member name.
        // "hw1.c" is fine; "../hw1.c" escapes into the TA's home.
        let dest = PathArg::from(&inv.file_name);
        if os.sys_lstat(pid, S_DEST, &dest).is_ok() {
            // Resubmission: replace the previous entry (lstat + unlink, so a
            // planted symlink is removed, not followed).
            let _ = os.sys_unlink(pid, S_DEST, &dest);
        }
        if os.sys_write_file(pid, S_DEST, &dest, archive, 0o644).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: copy failed\n");
            let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
            return 1;
        }
        let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
        let _ = os.sys_print(pid, "turnin:done", "turnin: submission complete\n");
        0
    }
}

/// The patched `turnin`: validates member names, refuses symlinked or
/// untrusted configuration objects, and execs its helper by absolute path.
#[derive(Debug, Clone, Copy, Default)]
pub struct TurninFixed;

impl TurninFixed {
    fn valid_member_name(name: &str) -> bool {
        !name.is_empty() && name.len() <= 255 && !name.contains('/') && name != ".." && name != "."
    }

    fn valid_account(account: &str) -> bool {
        !account.is_empty()
            && account.len() <= 32
            && account
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    }
}

impl Application for TurninFixed {
    fn name(&self) -> &'static str {
        "turnin-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let inv = match read_args(os, pid) {
            Ok(i) => i,
            Err(code) => return code,
        };
        // Fix: reject `/` anywhere and `..` components, not just a leading `/`.
        if !Self::valid_member_name(&inv.file_name.text()) {
            let _ = os.sys_print(pid, "turnin:error", "turnin: invalid file name\n");
            return 2;
        }

        // PATH is read (to build a sanitized child environment) but never
        // used for binary resolution.
        let _path_list = os
            .sys_getenv(pid, S_PATH, "PATH", InputSemantic::EnvPathList)
            .unwrap_or_else(|_| Data::from("/usr/bin:/bin"));

        // Fix: refuse a symlinked or non-root-owned configuration file, and
        // never echo its content.
        match os.sys_lstat(pid, S_CONFIG, CONFIG_FILE) {
            Ok(st) => {
                if st.file_type == epa_sandbox::fs::FileType::Symlink || !st.owner.is_root() || st.mode.world_writable()
                {
                    let _ = os.sys_print(pid, "turnin:error", "turnin: config not trusted\n");
                    return 1;
                }
            }
            Err(_) => {
                let _ = os.sys_print(pid, "turnin:error", "turnin: cannot open turnin.cf\n");
                return 1;
            }
        }
        let Ok(cf) = os.sys_read_file(pid, S_CONFIG, CONFIG_FILE) else {
            let _ = os.sys_print(pid, "turnin:error", "turnin: cannot open turnin.cf\n");
            return 1;
        };
        let Some((account_raw, account_uid)) = find_account(&cf, &inv.course.text()) else {
            let _ = os.sys_print(pid, "turnin:error", "turnin: course not found\n");
            return 1;
        };
        let Ok(account) = os.sys_bind(pid, S_CONFIG, "account", InputSemantic::FsFileName, account_raw) else {
            return 1;
        };
        // Fix: validate the parsed account before using it in a path.
        if !Self::valid_account(&account.text()) {
            let _ = os.sys_print(pid, "turnin:error", "turnin: malformed account name\n");
            return 1;
        }
        let mut submit = Data::from("/home/");
        submit.append(&account);
        submit.push_str("/submit");
        let submit_dir = PathArg::from(&submit);

        // Fix: refuse a symlinked project list; echo it only when the
        // student could have read it directly.
        let projlist_path = submit_dir.join(&PathArg::clean("Projlist"));
        let printable = match os.sys_lstat(pid, S_PROJLIST, &projlist_path) {
            Ok(st) => {
                if st.file_type == epa_sandbox::fs::FileType::Symlink {
                    let _ = os.sys_print(pid, "turnin:error", "turnin: project list not trusted\n");
                    return 1;
                }
                st.mode.other_allows(epa_sandbox::mode::Access::Read)
            }
            Err(_) => {
                let _ = os.sys_print(pid, "turnin:error", "turnin: can not find project list file\n");
                return 9;
            }
        };
        let Ok(listing) = os.sys_read_file(pid, S_PROJLIST, &projlist_path) else {
            let _ = os.sys_print(pid, "turnin:error", "turnin: can not find project list file\n");
            return 9;
        };
        if printable {
            let mut banner = Data::from("turnin: projects for ");
            banner.append(&inv.course);
            banner.push_str(":\n");
            banner.append(&listing);
            let _ = os.sys_print(pid, "turnin:print_listing", banner);
        }
        if !listing.text().lines().any(|l| l.trim() == inv.project.text()) {
            let _ = os.sys_print(pid, "turnin:error", "turnin: no such project\n");
            return 9;
        }

        // Fix: refuse a symlinked submit directory, and verify it belongs to
        // the course account named in the (trusted) config.
        match os.sys_lstat(pid, S_CHDIR, &submit_dir) {
            Ok(st) => {
                if st.file_type == epa_sandbox::fs::FileType::Symlink {
                    let _ = os.sys_print(pid, "turnin:error", "turnin: submit directory not trusted\n");
                    return 1;
                }
                if let Some(uid) = account_uid {
                    if st.owner.0 != uid {
                        let _ = os.sys_print(pid, "turnin:error", "turnin: submit directory has wrong owner\n");
                        return 1;
                    }
                }
            }
            Err(_) => {
                let _ = os.sys_print(pid, "turnin:error", "turnin: cannot enter submit directory\n");
                return 1;
            }
        }
        if os.sys_chdir(pid, S_CHDIR, &submit_dir).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: cannot enter submit directory\n");
            return 1;
        }

        let temp = format!("/tmp/turnin.{}", pid.0);
        if os.sys_create_excl(pid, S_TEMP, temp.as_str(), 0o600).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: temp file error\n");
            return 1;
        }

        // Fix: absolute helper path, verified root-owned and not a symlink.
        let tar_path = "/usr/local/bin/tar";
        match os.sys_lstat(pid, S_TAR, tar_path) {
            Ok(st) => {
                if st.file_type == epa_sandbox::fs::FileType::Symlink || !st.owner.is_root() || st.mode.world_writable()
                {
                    let _ = os.sys_print(pid, "turnin:error", "turnin: tar binary not trusted\n");
                    let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
                    return 1;
                }
            }
            Err(_) => {
                let _ = os.sys_print(pid, "turnin:error", "turnin: cannot run tar\n");
                let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
                return 1;
            }
        }
        let tar_args = vec![Data::from("cf"), Data::from(temp.clone()), inv.file_name.clone()];
        if os.sys_exec(pid, S_TAR, tar_path, tar_args, None).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: cannot run tar\n");
            let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
            return 1;
        }
        let mut archive = Data::from(format!("TAR-ARCHIVE({})\n", inv.file_name.text()));
        archive.taint_from(&inv.file_name);
        if os
            .sys_append(pid, S_TEMP, temp.as_str(), archive.clone(), 0o600)
            .is_err()
        {
            let _ = os.sys_print(pid, "turnin:error", "turnin: temp file write error\n");
            return 1;
        }

        let dest = PathArg::from(&inv.file_name);
        if os.sys_lstat(pid, S_DEST, &dest).is_ok() {
            let _ = os.sys_unlink(pid, S_DEST, &dest);
        }
        if os.sys_write_file(pid, S_DEST, &dest, archive, 0o644).is_err() {
            let _ = os.sys_print(pid, "turnin:error", "turnin: copy failed\n");
            let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
            return 1;
        }
        let _ = os.sys_unlink(pid, S_TEMP, temp.as_str());
        let _ = os.sys_print(pid, "turnin:done", "turnin: submission complete\n");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;
    use epa_core::engine::Session;

    #[test]
    fn clean_submission_succeeds() {
        let setup = worlds::turnin_world();
        let out = run_once(&setup, &Turnin, None);
        assert_eq!(out.exit, Some(0), "stdout: {}", out.os.stdout_text(out.pid.unwrap()));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.os.fs.exists("/home/ta/submit/hw1.c"));
        // Temp file cleaned up.
        assert!(!out.os.fs.exists("/tmp/turnin.100"));
    }

    #[test]
    fn clean_fixed_submission_succeeds() {
        let setup = worlds::turnin_world();
        let out = run_once(&setup, &TurninFixed, None);
        assert_eq!(out.exit, Some(0), "stdout: {}", out.os.stdout_text(out.pid.unwrap()));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn traces_eight_interaction_points() {
        let setup = worlds::turnin_world();
        let plan = Session::from_setup(setup).plan(&Turnin);
        let perturbable: Vec<_> = plan
            .sites
            .iter()
            .filter(|s| !s.faults.is_empty())
            .map(|s| s.summary.site.to_string())
            .collect();
        assert_eq!(perturbable.len(), 8, "{perturbable:?}");
        assert_eq!(
            plan.total_faults(),
            41,
            "per-site: {:?}",
            plan.sites
                .iter()
                .map(|s| (s.summary.site.to_string(), s.faults.len()))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn projlist_symlink_discloses_shadow() {
        // Replays the paper's first exploit by hand.
        let mut setup = worlds::turnin_world();
        setup
            .world
            .fs
            .god_symlink("/home/ta/submit/Projlist", "/etc/shadow")
            .unwrap();
        let out = run_once(&setup, &Turnin, None);
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == epa_sandbox::policy::ViolationKind::Disclosure),
            "{:?}",
            out.violations
        );
        let stdout = out.os.stdout_text(out.pid.unwrap());
        assert!(
            stdout.contains("root:HASH"),
            "the shadow content really is printed: {stdout}"
        );
    }

    #[test]
    fn dotdot_member_name_escapes_submit_dir() {
        // Replays the paper's second exploit by hand.
        let mut setup = worlds::turnin_world();
        setup.args = vec![
            "-c".into(),
            "cs390".into(),
            "-p".into(),
            "proj1".into(),
            "../.login".into(),
        ];
        let out = run_once(&setup, &Turnin, None);
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == epa_sandbox::policy::ViolationKind::IntegrityWrite),
            "{:?}",
            out.violations
        );
        // The TA's .login really was replaced.
        let login = out.os.fs.god_read("/home/ta/.login").unwrap();
        assert!(login.text().contains("TAR-ARCHIVE"), "{}", login.text());
    }

    #[test]
    fn fixed_rejects_both_exploits() {
        let mut setup = worlds::turnin_world();
        setup
            .world
            .fs
            .god_symlink("/home/ta/submit/Projlist", "/etc/shadow")
            .unwrap();
        let out = run_once(&setup, &TurninFixed, None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);

        let mut setup2 = worlds::turnin_world();
        setup2.args = vec![
            "-c".into(),
            "cs390".into(),
            "-p".into(),
            "proj1".into(),
            "../.login".into(),
        ];
        let out2 = run_once(&setup2, &TurninFixed, None);
        assert!(out2.violations.is_empty(), "{:?}", out2.violations);
        assert_eq!(out2.exit, Some(2), "invalid member name rejected");
    }

    #[test]
    fn disclosure_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::turnin_world();
        setup
            .world
            .fs
            .god_symlink("/home/ta/submit/Projlist", "/etc/shadow")
            .unwrap();
        let out = run_once(&setup, &Turnin, None);
        crate::assert_evidence_in_bounds(&out);
        let disclosure = out
            .violations
            .iter()
            .find(|v| v.kind == epa_sandbox::policy::ViolationKind::Disclosure)
            .expect("shadow disclosure detected");
        assert_eq!(disclosure.detector, "disclosure");
    }
}
