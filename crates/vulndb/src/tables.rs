//! Tables 1–4 of the paper, computed from the database.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use epa_core::model::{DirectKind, EaiCategory, IndirectKind};

use crate::classify::{classify, Classification, Exclusion};
use crate::entry::VulnEntry;

fn pct(n: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        n as f64 * 100.0 / total as f64
    }
}

/// Paper Table 1: high-level classification of the classifiable entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1 {
    /// Indirect environment faults.
    pub indirect: usize,
    /// Direct environment faults.
    pub direct: usize,
    /// Code faults without environmental trigger.
    pub other: usize,
    /// Entries excluded: insufficient information.
    pub excluded_insufficient: usize,
    /// Entries excluded: design errors.
    pub excluded_design: usize,
    /// Entries excluded: configuration errors.
    pub excluded_config: usize,
}

impl Table1 {
    /// Classifiable total (the paper's 142).
    pub fn total(&self) -> usize {
        self.indirect + self.direct + self.other
    }

    /// Database total (the paper's 195).
    pub fn database_total(&self) -> usize {
        self.total() + self.excluded_insufficient + self.excluded_design + self.excluded_config
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let t = self.total();
        let mut s = String::new();
        let _ = writeln!(s, "Table 1: high-level classification (total {t})");
        let _ = writeln!(
            s,
            "{:<28} {:>8} {:>8} {:>8}",
            "Categories", "Indirect", "Direct", "Others"
        );
        let _ = writeln!(
            s,
            "{:<28} {:>8} {:>8} {:>8}",
            "number", self.indirect, self.direct, self.other
        );
        let _ = writeln!(
            s,
            "{:<28} {:>7.1}% {:>7.1}% {:>7.1}%",
            "percent",
            pct(self.indirect, t),
            pct(self.direct, t),
            pct(self.other, t)
        );
        let _ = writeln!(
            s,
            "(database {} = {} classifiable + {} insufficient + {} design + {} configuration)",
            self.database_total(),
            t,
            self.excluded_insufficient,
            self.excluded_design,
            self.excluded_config
        );
        s
    }
}

/// Paper Table 2: indirect faults by input origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2 {
    /// User input.
    pub user_input: usize,
    /// Environment variables.
    pub env_variable: usize,
    /// File-system input.
    pub fs_input: usize,
    /// Network input.
    pub network_input: usize,
    /// Process input.
    pub process_input: usize,
}

impl Table2 {
    /// Total indirect entries (the paper's 81).
    pub fn total(&self) -> usize {
        self.user_input + self.env_variable + self.fs_input + self.network_input + self.process_input
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let t = self.total();
        let mut s = String::new();
        let _ = writeln!(s, "Table 2: indirect environment faults (total {t})");
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "Categories", "UserInput", "EnvVar", "FsInput", "NetInput", "ProcInput"
        );
        let _ = writeln!(
            s,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "Number", self.user_input, self.env_variable, self.fs_input, self.network_input, self.process_input
        );
        let _ = writeln!(
            s,
            "{:<12} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            "Percent",
            pct(self.user_input, t),
            pct(self.env_variable, t),
            pct(self.fs_input, t),
            pct(self.network_input, t),
            pct(self.process_input, t)
        );
        s
    }
}

/// Paper Table 3: direct faults by environment entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table3 {
    /// File-system entity.
    pub file_system: usize,
    /// Network entity.
    pub network: usize,
    /// Process entity.
    pub process: usize,
}

impl Table3 {
    /// Total direct entries (the paper's 48).
    pub fn total(&self) -> usize {
        self.file_system + self.network + self.process
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let t = self.total();
        let mut s = String::new();
        let _ = writeln!(s, "Table 3: direct environment faults (total {t})");
        let _ = writeln!(
            s,
            "{:<12} {:>12} {:>10} {:>10}",
            "Categories", "FileSystem", "Network", "Process"
        );
        let _ = writeln!(
            s,
            "{:<12} {:>12} {:>10} {:>10}",
            "Number", self.file_system, self.network, self.process
        );
        let _ = writeln!(
            s,
            "{:<12} {:>11.1}% {:>9.1}% {:>9.1}%",
            "Percent",
            pct(self.file_system, t),
            pct(self.network, t),
            pct(self.process, t)
        );
        s
    }
}

/// Paper Table 4: file-system direct faults by attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table4 {
    /// File existence.
    pub existence: usize,
    /// Symbolic link.
    pub symlink: usize,
    /// Permission.
    pub permission: usize,
    /// Ownership.
    pub ownership: usize,
    /// File invariance (content + name).
    pub invariance: usize,
    /// Working directory.
    pub working_directory: usize,
}

impl Table4 {
    /// Total file-system direct entries (the paper's 42).
    pub fn total(&self) -> usize {
        self.existence + self.symlink + self.permission + self.ownership + self.invariance + self.working_directory
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let t = self.total();
        let mut s = String::new();
        let _ = writeln!(s, "Table 4: file system environment faults (total {t})");
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>9} {:>11} {:>10} {:>11} {:>9}",
            "Category", "existence", "symlink", "permission", "ownership", "invariance", "workdir"
        );
        let _ = writeln!(
            s,
            "{:<10} {:>10} {:>9} {:>11} {:>10} {:>11} {:>9}",
            "Number",
            self.existence,
            self.symlink,
            self.permission,
            self.ownership,
            self.invariance,
            self.working_directory
        );
        let _ = writeln!(
            s,
            "{:<10} {:>9.1}% {:>8.1}% {:>10.1}% {:>9.1}% {:>10.1}% {:>8.1}%",
            "Percent",
            pct(self.existence, t),
            pct(self.symlink, t),
            pct(self.permission, t),
            pct(self.ownership, t),
            pct(self.invariance, t),
            pct(self.working_directory, t)
        );
        s
    }
}

/// All four tables computed in one pass over the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tables {
    /// Table 1.
    pub table1: Table1,
    /// Table 2.
    pub table2: Table2,
    /// Table 3.
    pub table3: Table3,
    /// Table 4.
    pub table4: Table4,
}

/// Computes Tables 1–4 from a set of entries.
pub fn compute(entries: &[VulnEntry]) -> Tables {
    let mut t1 = Table1 {
        indirect: 0,
        direct: 0,
        other: 0,
        excluded_insufficient: 0,
        excluded_design: 0,
        excluded_config: 0,
    };
    let mut t2 = Table2 {
        user_input: 0,
        env_variable: 0,
        fs_input: 0,
        network_input: 0,
        process_input: 0,
    };
    let mut t3 = Table3 {
        file_system: 0,
        network: 0,
        process: 0,
    };
    let mut t4 = Table4 {
        existence: 0,
        symlink: 0,
        permission: 0,
        ownership: 0,
        invariance: 0,
        working_directory: 0,
    };
    for e in entries {
        match classify(e) {
            Classification::Excluded(Exclusion::InsufficientInformation) => t1.excluded_insufficient += 1,
            Classification::Excluded(Exclusion::Design) => t1.excluded_design += 1,
            Classification::Excluded(Exclusion::Configuration) => t1.excluded_config += 1,
            Classification::Eai(EaiCategory::Other) => t1.other += 1,
            Classification::Eai(EaiCategory::Indirect(kind)) => {
                t1.indirect += 1;
                match kind {
                    IndirectKind::UserInput => t2.user_input += 1,
                    IndirectKind::EnvironmentVariable => t2.env_variable += 1,
                    IndirectKind::FileSystemInput => t2.fs_input += 1,
                    IndirectKind::NetworkInput => t2.network_input += 1,
                    IndirectKind::ProcessInput => t2.process_input += 1,
                }
            }
            Classification::Eai(EaiCategory::Direct(kind)) => {
                t1.direct += 1;
                match kind {
                    DirectKind::FileSystem(attr) => {
                        t3.file_system += 1;
                        match attr.table4_column() {
                            "file existence" => t4.existence += 1,
                            "symbolic link" => t4.symlink += 1,
                            "permission" => t4.permission += 1,
                            "ownership" => t4.ownership += 1,
                            "file invariance" => t4.invariance += 1,
                            _ => t4.working_directory += 1,
                        }
                    }
                    DirectKind::Registry(_) => t3.file_system += 1,
                    DirectKind::Network(_) => t3.network += 1,
                    DirectKind::Process(_) => t3.process += 1,
                }
            }
        }
    }
    Tables {
        table1: t1,
        table2: t2,
        table3: t3,
        table4: t4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::entries;

    #[test]
    fn tables_match_the_paper_exactly() {
        let t = compute(&entries());
        // Table 1 (paper: 81 / 48 / 13 of 142; 26 + 22 + 5 excluded of 195).
        assert_eq!(t.table1.indirect, 81);
        assert_eq!(t.table1.direct, 48);
        assert_eq!(t.table1.other, 13);
        assert_eq!(t.table1.total(), 142);
        assert_eq!(t.table1.excluded_insufficient, 26);
        assert_eq!(t.table1.excluded_design, 22);
        assert_eq!(t.table1.excluded_config, 5);
        assert_eq!(t.table1.database_total(), 195);
        // Table 2 (paper: 51 / 17 / 5 / 8 / 0 of 81).
        assert_eq!(
            (
                t.table2.user_input,
                t.table2.env_variable,
                t.table2.fs_input,
                t.table2.network_input,
                t.table2.process_input
            ),
            (51, 17, 5, 8, 0)
        );
        assert_eq!(t.table2.total(), 81);
        // Table 3 (paper: 42 / 5 / 1 of 48).
        assert_eq!((t.table3.file_system, t.table3.network, t.table3.process), (42, 5, 1));
        // Table 4 (paper: 20 / 6 / 6 / 3 / 6 / 1 of 42).
        assert_eq!(
            (
                t.table4.existence,
                t.table4.symlink,
                t.table4.permission,
                t.table4.ownership,
                t.table4.invariance,
                t.table4.working_directory
            ),
            (20, 6, 6, 3, 6, 1)
        );
        assert_eq!(t.table4.total(), 42);
    }

    #[test]
    fn renders_mention_totals() {
        let t = compute(&entries());
        assert!(t.table1.render().contains("total 142"));
        assert!(t.table2.render().contains("total 81"));
        assert!(t.table3.render().contains("total 48"));
        assert!(t.table4.render().contains("total 42"));
    }

    #[test]
    fn totals_are_shuffle_invariant() {
        let mut db = entries();
        db.reverse();
        let t = compute(&db);
        assert_eq!(t.table1.total(), 142);
        assert_eq!(t.table4.total(), 42);
    }
}
