//! The standard detector units: one named [`Detector`] per policy family.
//!
//! Each unit owns exactly one rule family of the retired monolithic
//! `PolicyEngine::check_event` dispatch; [`super::OracleSet::standard`]
//! registers all eight. Every verdict carries an [`Evidence`] chain
//! snapshotting the implicated audit event, so reports can point back at
//! the exact syscall effects that prove the violation.

use crate::audit::AuditEvent;
use crate::fs::FileTag;

use super::{Detector, Evidence, Verdict, Violation, ViolationKind};

/// Builds the single-event verdict every standard unit emits.
fn verdict(
    detector: &'static str,
    kind: ViolationKind,
    rule: &str,
    description: String,
    idx: usize,
    event: &AuditEvent,
) -> Verdict {
    Verdict::new(
        Violation::new(kind, rule, description, idx),
        detector,
        Evidence::single(idx, event),
    )
}

/// R1: a privileged process modified an object its invoker could not write
/// — overwrote foreign state or planted a file inside a protected directory.
#[derive(Debug, Default)]
pub struct IntegrityWriteDetector {
    found: Vec<Verdict>,
}

impl Detector for IntegrityWriteDetector {
    fn name(&self) -> &'static str {
        "integrity-write"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        let AuditEvent::FileWrite(w) = event else { return };
        if !w.by.is_elevated() {
            return;
        }
        let overwrote_foreign = w.existed_before && !w.invoker_could_write && !w.created_by_self;
        let planted_in_protected =
            !w.existed_before && w.parent_tags.contains(&FileTag::Protected) && !w.invoker_could_write_parent;
        if overwrote_foreign || planted_in_protected {
            let what = if overwrote_foreign {
                format!("overwrote {} which the invoker could not write", w.path)
            } else {
                format!("planted {} inside a protected directory", w.path)
            };
            self.found.push(verdict(
                self.name(),
                ViolationKind::IntegrityWrite,
                "R1-integrity-write",
                what,
                idx,
                event,
            ));
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// R3: a privileged process deleted a protected/critical/secret object the
/// invoker could not have removed.
#[derive(Debug, Default)]
pub struct IntegrityDeleteDetector {
    found: Vec<Verdict>,
}

impl Detector for IntegrityDeleteDetector {
    fn name(&self) -> &'static str {
        "integrity-delete"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        let AuditEvent::FileDelete {
            path,
            tags,
            invoker_could_delete,
            by,
            ..
        } = event
        else {
            return;
        };
        let sensitive =
            tags.contains(&FileTag::Protected) || tags.contains(&FileTag::Critical) || tags.contains(&FileTag::Secret);
        if by.is_elevated() && sensitive && !invoker_could_delete {
            self.found.push(verdict(
                self.name(),
                ViolationKind::IntegrityDelete,
                "R3-integrity-delete",
                format!("privileged deletion of protected object {path}"),
                idx,
                event,
            ));
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// R2: secret bytes the invoker may not read reached an invoker-visible
/// sink — an emit to stdout/network, or a file the invoker can read back.
#[derive(Debug, Default)]
pub struct DisclosureDetector {
    found: Vec<Verdict>,
}

impl Detector for DisclosureDetector {
    fn name(&self) -> &'static str {
        "disclosure"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        match event {
            AuditEvent::Emit { sink, labels, .. } => {
                for label in labels {
                    if label.is_protected_secret() {
                        self.found.push(verdict(
                            self.name(),
                            ViolationKind::Disclosure,
                            "R2-confidentiality",
                            format!("{label} disclosed to {sink}"),
                            idx,
                            event,
                        ));
                    }
                }
            }
            AuditEvent::FileWrite(w) if w.invoker_could_read_after => {
                for label in &w.data_labels {
                    if label.is_protected_secret() {
                        self.found.push(verdict(
                            self.name(),
                            ViolationKind::Disclosure,
                            "R2-confidentiality",
                            format!("{label} disclosed to file {}", w.path),
                            idx,
                            event,
                        ));
                    }
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// R6: a privileged process executed an attacker-controllable program — a
/// binary that is neither root's nor the effective user's, world-writable,
/// or found in an untrusted directory.
#[derive(Debug, Default)]
pub struct UntrustedExecDetector {
    found: Vec<Verdict>,
}

impl Detector for UntrustedExecDetector {
    fn name(&self) -> &'static str {
        "untrusted-exec"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        let AuditEvent::Exec {
            requested,
            resolved,
            owner,
            world_writable,
            dir_untrusted,
            by,
            ..
        } = event
        else {
            return;
        };
        if !(by.is_elevated() || by.is_privileged()) {
            return;
        }
        // The binary itself must be attacker-controllable; a root-owned
        // binary reached via tainted input is the program's (dangerous but
        // distinct) design decision and is caught by the write/delete rules
        // when it matters.
        let untrusted_binary = (!owner.is_root() && *owner != by.ruid) || *world_writable || *dir_untrusted;
        if untrusted_binary {
            self.found.push(verdict(
                self.name(),
                ViolationKind::UntrustedExec,
                "R6-untrusted-exec",
                format!("privileged exec of {resolved} (requested `{requested}`): attacker-controllable binary"),
                idx,
                event,
            ));
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// R5: the target of a privileged operation (write, delete, registry
/// delete) was named by untrusted input. Deleting attacker-named but
/// harmless objects is the normal job of cleanup tools and does not fire;
/// the delete rules require a *sensitive* target — the NT font-key case
/// study.
#[derive(Debug, Default)]
pub struct TaintedPrivilegedOpDetector {
    found: Vec<Verdict>,
}

impl Detector for TaintedPrivilegedOpDetector {
    fn name(&self) -> &'static str {
        "tainted-privileged-op"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        match event {
            AuditEvent::FileWrite(w)
                if w.by.is_privileged() && w.path_taint.iter().any(super::super::data::Label::is_untrusted) =>
            {
                self.found.push(verdict(
                    self.name(),
                    ViolationKind::TaintedPrivilegedOp,
                    "R5-tainted-write",
                    format!("privileged write to attacker-named path {}", w.path),
                    idx,
                    event,
                ));
            }
            AuditEvent::FileDelete {
                path,
                tags,
                path_taint,
                by,
                ..
            } => {
                let sensitive = tags.contains(&FileTag::Protected)
                    || tags.contains(&FileTag::Critical)
                    || tags.contains(&FileTag::Secret);
                if by.is_privileged() && sensitive && path_taint.iter().any(super::super::data::Label::is_untrusted) {
                    self.found.push(verdict(
                        self.name(),
                        ViolationKind::TaintedPrivilegedOp,
                        "R5-tainted-delete",
                        format!("privileged deletion of attacker-named sensitive path {path}"),
                        idx,
                        event,
                    ));
                }
            }
            AuditEvent::RegistryDelete { key, path_taint, by }
                if by.is_privileged() && path_taint.iter().any(super::super::data::Label::is_untrusted) =>
            {
                self.found.push(verdict(
                    self.name(),
                    ViolationKind::TaintedPrivilegedOp,
                    "R5-tainted-regdelete",
                    format!("privileged registry deletion of attacker-named key {key}"),
                    idx,
                    event,
                ));
            }
            _ => {}
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// R7: a privileged write or exec was driven by a message whose origin was
/// spoofed.
#[derive(Debug, Default)]
pub struct SpoofedActionDetector {
    found: Vec<Verdict>,
}

impl Detector for SpoofedActionDetector {
    fn name(&self) -> &'static str {
        "spoofed-action"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        match event {
            AuditEvent::FileWrite(w) => {
                let privileged = w.by.is_elevated() || w.by.is_privileged();
                let spoofed = w.data_labels.iter().any(super::super::data::Label::is_spoofed)
                    || w.path_taint.iter().any(super::super::data::Label::is_spoofed);
                if privileged && spoofed {
                    self.found.push(verdict(
                        self.name(),
                        ViolationKind::SpoofedAction,
                        "R7-spoofed-write",
                        format!("write to {} driven by spoofed message", w.path),
                        idx,
                        event,
                    ));
                }
            }
            AuditEvent::Exec {
                resolved,
                path_taint,
                arg_labels,
                by,
                ..
            } => {
                let privileged = by.is_elevated() || by.is_privileged();
                let spoofed = path_taint.iter().any(super::super::data::Label::is_spoofed)
                    || arg_labels.iter().any(super::super::data::Label::is_spoofed);
                if privileged && spoofed {
                    self.found.push(verdict(
                        self.name(),
                        ViolationKind::SpoofedAction,
                        "R7-spoofed-exec",
                        format!("exec of {resolved} driven by spoofed message"),
                        idx,
                        event,
                    ));
                }
            }
            _ => {}
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// R4: a fixed-size buffer was overrun by an unchecked copy — the proxy for
/// memory corruption / arbitrary code execution.
#[derive(Debug, Default)]
pub struct MemoryCorruptionDetector {
    found: Vec<Verdict>,
}

impl Detector for MemoryCorruptionDetector {
    fn name(&self) -> &'static str {
        "memory-corruption"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        let AuditEvent::MemoryCorruption {
            buffer,
            capacity,
            attempted,
            ..
        } = event
        else {
            return;
        };
        self.found.push(verdict(
            self.name(),
            ViolationKind::MemoryCorruption,
            "R4-memory-safety",
            format!("unchecked copy of {attempted} bytes into {capacity}-byte buffer `{buffer}`"),
            idx,
            event,
        ));
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

/// Application- and world-declared invariant outcomes: a `Custom` audit
/// event with `violated: true` becomes a verdict.
#[derive(Debug, Default)]
pub struct CustomDetector {
    found: Vec<Verdict>,
}

impl Detector for CustomDetector {
    fn name(&self) -> &'static str {
        "custom"
    }

    fn observe(&mut self, idx: usize, event: &AuditEvent) {
        let AuditEvent::Custom { rule, violated, detail } = event else {
            return;
        };
        if *violated {
            self.found.push(verdict(
                self.name(),
                ViolationKind::Custom,
                &format!("custom:{rule}"),
                detail.clone(),
                idx,
                event,
            ));
        }
    }

    fn finish(&mut self) -> Vec<Verdict> {
        std::mem::take(&mut self.found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cred::Credentials;

    #[test]
    fn units_report_their_names_and_drain_on_finish() {
        let mut d = MemoryCorruptionDetector::default();
        assert_eq!(d.name(), "memory-corruption");
        let ev = AuditEvent::MemoryCorruption {
            buffer: "b".into(),
            capacity: 4,
            attempted: 9,
            by: Credentials::root(),
        };
        d.observe(7, &ev);
        let first = d.finish();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].event_index, 7);
        assert_eq!(first[0].evidence.first_index(), Some(7));
        assert!(d.finish().is_empty(), "finish drains");
    }

    #[test]
    fn non_matching_events_are_ignored() {
        let mut d = IntegrityDeleteDetector::default();
        d.observe(
            0,
            &AuditEvent::Custom {
                rule: "r".into(),
                violated: true,
                detail: String::new(),
            },
        );
        assert!(d.finish().is_empty());
    }
}
