//! Integration: failure injection against the harness itself — campaigns
//! must survive misbehaving applications and broken worlds.

// `Campaign::new` is exercised deliberately: the deprecated shim must stay
// as robust as the engine layer on top of it.
#![allow(deprecated)]

use std::collections::BTreeMap;

use epa::core::campaign::{run_once, Campaign, TestSetup};
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::mode::Mode;
use epa::sandbox::os::Os;
use epa::sandbox::process::Pid;
use epa::sandbox::trace::InputSemantic;

fn tiny_world() -> TestSetup {
    let mut os = Os::new();
    os.users
        .add("u", os.scenario.invoker, os.scenario.invoker_gid, "/home/u");
    os.fs
        .mkdir_p(
            "/home/u",
            os.scenario.invoker,
            os.scenario.invoker_gid,
            Mode::new(0o755),
        )
        .unwrap();
    os.fs
        .put_file("/etc/conf", "x=1", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
        .unwrap();
    TestSetup::new(os).cwd("/home/u")
}

struct Panicker;
impl Application for Panicker {
    fn name(&self) -> &'static str {
        "panicker"
    }
    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let _ = os.sys_read_file(pid, "p:read", "/etc/conf");
        panic!("deliberate panic");
    }
}

#[test]
fn campaigns_survive_panicking_applications() {
    let setup = tiny_world();
    let report = Campaign::new(&Panicker, &setup).execute();
    // Every record exists, carries the panic payload, and the harness
    // completed.
    assert!(report.injected() > 0);
    assert!(report
        .records
        .iter()
        .all(|r| r.crashed.as_deref() == Some("deliberate panic")));
    // The rendered report surfaces the payload instead of discarding it.
    assert!(report.render_text().contains("panicked with `deliberate panic`"));
}

struct Spinner;
impl Application for Spinner {
    fn name(&self) -> &'static str {
        "spinner"
    }
    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // A retry loop that never gives up: the syscall budget must stop it.
        loop {
            if let Err(e) = os.sys_read_file(pid, "s:poll", "/etc/missing") {
                if e.errno == epa::sandbox::error::Errno::Eagain {
                    return 99;
                }
            }
        }
    }
}

#[test]
fn syscall_budget_terminates_spinning_applications() {
    let setup = tiny_world();
    let out = run_once(&setup, &Spinner, None);
    assert_eq!(out.exit, Some(99), "the budget fault reached the app");
    assert!(!out.has_crashed());
}

struct ReadsArg;
impl Application for ReadsArg {
    fn name(&self) -> &'static str {
        "readsarg"
    }
    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        match os.sys_arg(pid, "r:arg", 0, InputSemantic::UserFileName) {
            Ok(_) => 0,
            Err(_) => 3,
        }
    }
}

#[test]
fn spawn_failure_yields_a_sound_outcome() {
    // A program file the invoker cannot execute: spawn fails, the outcome
    // reports no pid and no violations, and nothing panics.
    let mut setup = tiny_world();
    setup
        .world
        .fs
        .put_file("/bin/app", "", Uid::ROOT, Gid::ROOT, Mode::new(0o700))
        .unwrap();
    setup.program = Some("/bin/app".into());
    let out = run_once(&setup, &ReadsArg, None);
    assert!(out.pid.is_none());
    assert_eq!(out.exit, None);
    assert!(out.violations.is_empty());
}

#[test]
fn unknown_invoker_is_handled() {
    let mut setup = tiny_world();
    setup.invoker = Uid(123_456);
    let out = run_once(&setup, &ReadsArg, None);
    assert!(out.pid.is_none());
}

#[test]
fn empty_args_reach_the_error_path_not_a_crash() {
    let setup = tiny_world();
    let out = run_once(&setup, &ReadsArg, None);
    assert_eq!(out.exit, Some(3));
    assert!(!out.has_crashed());
}

#[test]
fn campaign_with_no_interaction_points_is_empty_not_broken() {
    struct Inert;
    impl Application for Inert {
        fn name(&self) -> &'static str {
            "inert"
        }
        fn run(&self, _os: &mut Os, _pid: Pid) -> i32 {
            0
        }
    }
    let setup = tiny_world();
    let report = Campaign::new(&Inert, &setup).execute();
    assert_eq!(report.total_sites, 0);
    assert_eq!(report.injected(), 0);
    assert_eq!(report.vulnerability_score(), 0.0);
    assert_eq!(report.fault_coverage().value_or(1.0), 1.0, "vacuously covered");
    // The vacuous-coverage regression (issue 5): interaction coverage over
    // zero sites is undefined, not 100%, and a campaign that tested
    // nothing must land in the Inadequate region of Figure 2 — never Safe.
    use epa::core::coverage::{AdequacyRegion, AdequacyThresholds};
    assert_eq!(report.interaction_coverage().fraction(), None);
    let point = report.adequacy();
    assert!(point.vacuous);
    assert_eq!(point.region(AdequacyThresholds::default()), AdequacyRegion::Inadequate);
    let text = report.render_text();
    assert!(text.contains("0/0 (n/a)"), "{text}");
    assert!(!text.contains("NaN"), "{text}");
}

#[test]
fn deleted_world_objects_produce_error_paths_not_panics() {
    struct ReadsConf;
    impl Application for ReadsConf {
        fn name(&self) -> &'static str {
            "readsconf"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            match os.sys_read_file(pid, "c:read", "/etc/conf") {
                Ok(_) => 0,
                Err(_) => 4,
            }
        }
    }
    let mut setup = tiny_world();
    setup.world.fs.god_remove("/etc/conf").unwrap();
    let out = run_once(&setup, &ReadsConf, None);
    assert_eq!(out.exit, Some(4));
}

#[test]
fn env_maps_are_isolated_between_runs() {
    struct EnvReader;
    impl Application for EnvReader {
        fn name(&self) -> &'static str {
            "envreader"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let v = os
                .sys_getenv(pid, "e:get", "MARK", InputSemantic::EnvValue)
                .map(|d| d.text())
                .unwrap_or_default();
            if v == "one" {
                0
            } else {
                5
            }
        }
    }
    let mut setup = tiny_world();
    setup.env = BTreeMap::from([("MARK".to_string(), "one".to_string())]);
    let a = run_once(&setup, &EnvReader, None);
    assert_eq!(a.exit, Some(0));
    // Mutating the returned world must not affect the pristine setup.
    let b = run_once(&setup, &EnvReader, None);
    assert_eq!(b.exit, Some(0));
}
