//! The 195-entry database.
//!
//! The CERIAS database the paper used is not public; these entries are
//! **synthetic recreations** modeled on the public vulnerability folklore of
//! the era (CERT advisories, Bugtraq, the Aslam/Krsul/Bishop taxonomies) and
//! calibrated so the *classification totals* match the paper's Tables 1–4
//! exactly. Names for which no era-appropriate advisory archetype was at
//! hand are explicitly synthetic (`study-entry-N`).

use crate::entry::{AttributeFault, InputFlaw, InputSource, Mechanism, OsFamily, PlainFault, VulnEntry};

struct Builder {
    next: u32,
    out: Vec<VulnEntry>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            next: 1,
            out: Vec::with_capacity(200),
        }
    }

    fn push(&mut self, name: &str, os: OsFamily, year: u16, mechanism: Mechanism) {
        let id = self.next;
        self.next += 1;
        self.out.push(VulnEntry {
            id,
            name: name.to_string(),
            os,
            year,
            mechanism,
        });
    }

    /// Pads a category with clearly-synthetic entries to reach the paper's
    /// calibrated count.
    fn pad(&mut self, label: &str, count: usize, mechanism: Mechanism) {
        for i in 0..count {
            let id = self.next;
            self.push(
                &format!("study-entry-{id:03} ({label} #{i})"),
                OsFamily::Unix,
                1997,
                mechanism,
            );
        }
    }
}

/// Builds the full database (always 195 entries, deterministic).
pub fn entries() -> Vec<VulnEntry> {
    use AttributeFault as A;
    use InputFlaw as F;
    use InputSource as S;
    use Mechanism as M;
    use OsFamily::{Linux, Solaris, Unix, WindowsNt};

    let mut b = Builder::new();

    // ------------------------------------------------------------------
    // Indirect / user input — 51 entries (Table 2)
    // ------------------------------------------------------------------
    let user_arg: [(&str, OsFamily, u16, InputFlaw); 24] = [
        ("fingerd request overflow", Unix, 1988, F::UncheckedLength),
        ("sendmail -d debug argument overflow", Unix, 1995, F::UncheckedLength),
        ("lpr -C classification overflow", Unix, 1996, F::UncheckedLength),
        ("rdist buffer overflow via argv", Unix, 1996, F::UncheckedLength),
        ("rlogin -l TERM overflow", Unix, 1996, F::UncheckedLength),
        ("eject device-name overflow", Solaris, 1997, F::UncheckedLength),
        ("fdformat argument overflow", Solaris, 1997, F::UncheckedLength),
        ("ffbconfig -dev overflow", Solaris, 1997, F::UncheckedLength),
        ("ps_data argument overflow", Solaris, 1997, F::UncheckedLength),
        ("xterm -fg resource overflow", Unix, 1997, F::UncheckedLength),
        ("chfn GECOS field overflow", Linux, 1997, F::UncheckedLength),
        ("passwd gecos overflow", Unix, 1997, F::UncheckedLength),
        ("mount attacker-supplied path overflow", Linux, 1998, F::UncheckedLength),
        ("umount relative path overflow", Linux, 1998, F::UncheckedLength),
        ("at -f file name overflow", Unix, 1997, F::UncheckedLength),
        ("crontab file argument overflow", Unix, 1997, F::UncheckedLength),
        ("uucp argv overflow", Unix, 1995, F::UncheckedLength),
        ("write(1) terminal-name overflow", Unix, 1996, F::UncheckedLength),
        ("dump tape-device overflow", Unix, 1997, F::UncheckedLength),
        ("login -h host overflow", Unix, 1994, F::UncheckedLength),
        ("lp destination overflow", Solaris, 1998, F::UncheckedLength),
        ("df mount-point overflow", Solaris, 1998, F::UncheckedLength),
        ("nis+ argument overflow", Solaris, 1998, F::UncheckedLength),
        ("cu -l line overflow", Unix, 1995, F::UncheckedLength),
    ];
    for (n, os, y, f) in user_arg {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::UserArg,
                flaw: f,
            },
        );
    }
    let user_path: [(&str, OsFamily, u16); 12] = [
        ("turnin ../ member name traversal", Unix, 1998),
        ("wu-ftpd dot-dot retrieval", Unix, 1995),
        ("tftpd unrestricted path fetch", Unix, 1991),
        ("web server ../ document escape", Unix, 1996),
        ("tar absolute-path extraction", Unix, 1996),
        ("cpio ../ extraction clobber", Unix, 1997),
        ("rcp remote-to-local path escape", Unix, 1993),
        ("fsp daemon path traversal", Unix, 1995),
        ("IIS encoded dot-dot escape", WindowsNt, 1998),
        ("mail folder name traversal", Unix, 1997),
        ("restore ../ spool escape", Unix, 1997),
        ("lharc extraction path escape", Unix, 1996),
    ];
    for (n, os, y) in user_path {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::UserArg,
                flaw: F::UnvalidatedPath,
            },
        );
    }
    let user_shell: [(&str, OsFamily, u16); 9] = [
        ("mail(1) ~! escape in address", Unix, 1994),
        ("phf CGI newline command injection", Unix, 1996),
        ("majordomo address metacharacters", Unix, 1997),
        ("rdist popen() metacharacters", Unix, 1994),
        ("lpd printcap filter injection", Unix, 1996),
        ("formmail pipe in recipient", Unix, 1997),
        ("vacation sender-address injection", Unix, 1995),
        ("uux command metacharacters", Unix, 1993),
        ("awk system() via crafted field", Unix, 1996),
    ];
    for (n, os, y) in user_shell {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::UserArg,
                flaw: F::ShellMetachars,
            },
        );
    }
    let user_stdin: [(&str, OsFamily, u16, InputFlaw); 6] = [
        ("login stdin response overflow", Unix, 1994, F::UncheckedLength),
        ("passwd interactive field overflow", Unix, 1995, F::UncheckedLength),
        ("ftp client PASV response confusion", Unix, 1997, F::FormatConfusion),
        ("more(1) escape sequence execution", Unix, 1995, F::FormatConfusion),
        ("talk answer-string overflow", Unix, 1996, F::UncheckedLength),
        ("gets()-based utility stdin overflow", Unix, 1990, F::UncheckedLength),
    ];
    for (n, os, y, f) in user_stdin {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::UserStdin,
                flaw: f,
            },
        );
    }

    // ------------------------------------------------------------------
    // Indirect / environment variable — 17 entries (Table 2)
    // ------------------------------------------------------------------
    let env_entries: [(&str, OsFamily, u16, InputFlaw); 17] = [
        ("telnetd LD_LIBRARY_PATH preload", Unix, 1995, F::UnvalidatedPath),
        ("rdist IFS=/ shell-splitting", Unix, 1991, F::FormatConfusion),
        ("loadmodule IFS exploitation", Unix, 1993, F::FormatConfusion),
        ("sendmail via untrusted PATH in mailer", Unix, 1993, F::UnvalidatedPath),
        ("vi preserved-file PATH exploitation", Unix, 1996, F::UnvalidatedPath),
        ("SUID script PATH=. lookup", Unix, 1994, F::UnvalidatedPath),
        ("TERM terminal-type overflow in telnet", Unix, 1995, F::UncheckedLength),
        ("TERMCAP overflow in xterm", Unix, 1997, F::UncheckedLength),
        ("HOME overflow in csh SUID wrapper", Unix, 1996, F::UncheckedLength),
        ("DISPLAY overflow in xlock", Unix, 1997, F::UncheckedLength),
        (
            "TZ timezone overflow in SUID date path",
            Solaris,
            1998,
            F::UncheckedLength,
        ),
        ("LOCALDOMAIN resolver overflow", Linux, 1997, F::UncheckedLength),
        ("ENV file sourced by SUID ksh", Unix, 1995, F::UnvalidatedPath),
        ("LD_PRELOAD honored by SUID binary", Linux, 1996, F::UnvalidatedPath),
        ("NLSPATH format-string loading", Linux, 1997, F::UnvalidatedPath),
        ("PAGER executed by SUID man", Unix, 1997, F::UnvalidatedPath),
        ("UMASK-style mask honored from env", Unix, 1996, F::FormatConfusion),
    ];
    for (n, os, y, f) in env_entries {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::EnvVariable,
                flaw: f,
            },
        );
    }

    // ------------------------------------------------------------------
    // Indirect / file system input — 5 entries (Table 2)
    // ------------------------------------------------------------------
    let fsin: [(&str, OsFamily, u16, InputFlaw); 5] = [
        ("ftpd .netrc oversized macro", Unix, 1996, F::UncheckedLength),
        ("inn control-message file command", Unix, 1997, F::ShellMetachars),
        ("procmailrc attacker-supplied path", Unix, 1997, F::UnvalidatedPath),
        ("Xsession file name from .xsession", Unix, 1996, F::UnvalidatedPath),
        ("automounter map entry overflow", Solaris, 1998, F::UncheckedLength),
    ];
    for (n, os, y, f) in fsin {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::ConfigFile,
                flaw: f,
            },
        );
    }

    // ------------------------------------------------------------------
    // Indirect / network input — 8 entries (Table 2)
    // ------------------------------------------------------------------
    let netin: [(&str, OsFamily, u16, InputFlaw); 8] = [
        ("named inverse-query overflow", Unix, 1998, F::UncheckedLength),
        ("imapd LOGIN literal overflow", Unix, 1997, F::UncheckedLength),
        ("popd PASS overflow", Unix, 1997, F::UncheckedLength),
        ("innd remote article overflow", Unix, 1997, F::UncheckedLength),
        ("statd RPC string overflow", Solaris, 1997, F::UncheckedLength),
        ("talkd DNS reply hostname overflow", Unix, 1997, F::UncheckedLength),
        ("ping-of-death oversized datagram", WindowsNt, 1996, F::FormatConfusion),
        ("httpd chunked-header confusion", Unix, 1998, F::FormatConfusion),
    ];
    for (n, os, y, f) in netin {
        b.push(
            n,
            os,
            y,
            M::Input {
                source: S::NetworkMessage,
                flaw: f,
            },
        );
    }

    // Indirect / process input — 0 entries, matching the paper's Table 2.

    // ------------------------------------------------------------------
    // Direct / file system — 42 entries (Tables 3 and 4)
    // ------------------------------------------------------------------
    let fs_exist: [(&str, OsFamily, u16); 14] = [
        ("lpr spool file pre-created by attacker", Unix, 1991),
        ("at job file pre-exists", Unix, 1994),
        ("sendmail dead.letter pre-created", Unix, 1995),
        ("vi /tmp recovery file pre-exists", Unix, 1996),
        ("gcc predictable temp name clobber", Unix, 1996),
        ("sort(1) predictable /tmp file", Unix, 1996),
        ("mktemp-less script temp race", Unix, 1997),
        ("ld.so debug output file pre-created", Linux, 1997),
        ("netscape predictable download temp", Unix, 1997),
        ("dtappgather staging file pre-exists", Solaris, 1998),
        ("pt_chmod lock file pre-created", Solaris, 1997),
        ("uucp spool entry pre-created", Unix, 1993),
        ("xdm auth file pre-exists", Unix, 1996),
        ("inetd wrapper pid file pre-created", Unix, 1997),
    ];
    for (n, os, y) in fs_exist {
        b.push(n, os, y, M::Attribute(A::FileExistence));
    }
    b.pad("file-existence", 6, M::Attribute(A::FileExistence)); // 20 total

    let fs_symlink: [(&str, OsFamily, u16); 6] = [
        ("lpr spool symlinked to /etc/passwd", Unix, 1991),
        ("sendmail -oQ queue symlink", Unix, 1995),
        ("ps_data symlink to system file", Solaris, 1997),
        ("xlock .Xauthority symlink follow", Unix, 1997),
        ("syslogd log path symlink follow", Linux, 1998),
        ("admintool lock symlink follow", Solaris, 1998),
    ];
    for (n, os, y) in fs_symlink {
        b.push(n, os, y, M::Attribute(A::FileSymlink));
    }

    let fs_perm: [(&str, OsFamily, u16); 6] = [
        ("turnin project list readable via SUID", Unix, 1998),
        ("crontab spool left group-writable", Unix, 1996),
        ("mail spool delivered world-readable", Unix, 1995),
        ("core dumped mode 666 in cwd", Unix, 1996),
        ("sadmind state file mode 777", Solaris, 1998),
        ("install script chmod 666 config", Linux, 1997),
    ];
    for (n, os, y) in fs_perm {
        b.push(n, os, y, M::Attribute(A::FilePermission));
    }

    let fs_own: [(&str, OsFamily, u16); 3] = [
        ("rdist target ownership assumed", Unix, 1994),
        ("chown-follow on user-supplied spool", Unix, 1996),
        ("backup restore trusts file owner", Unix, 1997),
    ];
    for (n, os, y) in fs_own {
        b.push(n, os, y, M::Attribute(A::FileOwnership));
    }

    let fs_invar: [(&str, OsFamily, u16); 6] = [
        ("passwd -F check-to-use race", Unix, 1996),
        ("binmail access(2)/open(2) race", Unix, 1991),
        ("xterm logfile recheck race", Unix, 1993),
        ("ksu config reread after check", Unix, 1997),
        ("NT font key file swapped before delete", WindowsNt, 1998),
        ("ld.so config replaced between stat and read", Linux, 1998),
    ];
    for (n, os, y) in fs_invar {
        b.push(n, os, y, M::Attribute(A::FileInvariance));
    }

    b.push(
        "uucico started from attacker cwd",
        Unix,
        1994,
        M::Attribute(A::WorkingDirectory),
    ); // 1

    // ------------------------------------------------------------------
    // Direct / network — 5 entries (Table 3)
    // ------------------------------------------------------------------
    b.push(
        "rsh trusts forged source address",
        Unix,
        1995,
        M::Attribute(A::NetAuthenticity),
    );
    b.push(
        "NFS filehandle accepted from spoofed peer",
        Unix,
        1996,
        M::Attribute(A::NetAuthenticity),
    );
    b.push(
        "TCP sequence-step omission accepted",
        Unix,
        1996,
        M::Attribute(A::NetProtocol),
    );
    b.push(
        "rpcbind forwards to untrusted responder",
        Solaris,
        1997,
        M::Attribute(A::NetTrust),
    );
    b.push(
        "NIS server outage grants fallback access",
        Unix,
        1996,
        M::Attribute(A::NetAvailability),
    );

    // ------------------------------------------------------------------
    // Direct / process — 1 entry (Table 3)
    // ------------------------------------------------------------------
    b.push(
        "comsat trusts any local notifier process",
        Unix,
        1995,
        M::Attribute(A::ProcTrust),
    );

    // ------------------------------------------------------------------
    // Others: code faults without environmental trigger — 13 (Table 1)
    // ------------------------------------------------------------------
    let plain: [(&str, OsFamily, u16, PlainFault); 8] = [
        ("off-by-one in tty name table", Unix, 1996, PlainFault::OffByOne),
        ("inverted uid check in SUID wrapper", Unix, 1995, PlainFault::Typo),
        (
            "signal handler re-entrancy corruption",
            Unix,
            1997,
            PlainFault::InternalRace,
        ),
        ("integer wrap in quota accounting", Unix, 1997, PlainFault::LogicError),
        ("missing setuid() return check", Linux, 1998, PlainFault::LogicError),
        ("fd leak across exec", Unix, 1996, PlainFault::LogicError),
        ("NT service null-pointer crash", WindowsNt, 1998, PlainFault::LogicError),
        ("strncpy miscount in logging", Unix, 1997, PlainFault::OffByOne),
    ];
    for (n, os, y, p) in plain {
        b.push(n, os, y, M::Plain(p));
    }
    b.pad("plain-code-fault", 5, M::Plain(PlainFault::LogicError)); // 13 total

    // ------------------------------------------------------------------
    // Excluded from classification (Table 1 preamble)
    // ------------------------------------------------------------------
    let design: [(&str, OsFamily, u16); 8] = [
        ("rlogin trust model (.rhosts) by design", Unix, 1994),
        ("NIS password map world-visible by design", Unix, 1995),
        ("telnet cleartext credentials", Unix, 1994),
        ("X11 xhost + default policy", Unix, 1995),
        ("SMTP VRFY/EXPN information design", Unix, 1995),
        ("NT LanMan hash downgrade design", WindowsNt, 1997),
        ("ftp bounce protocol design", Unix, 1997),
        ("DNS cache trust-by-default design", Unix, 1997),
    ];
    for (n, os, y) in design {
        b.push(n, os, y, M::DesignError);
    }
    b.pad("design-error", 14, M::DesignError); // 22 total

    let config: [(&str, OsFamily, u16); 5] = [
        ("anonymous ftp writable root", Unix, 1995),
        ("NFS exported to the world", Unix, 1995),
        ("NT Everyone:Full-Control share", WindowsNt, 1998),
        ("hosts.equiv shipped with '+'", Unix, 1993),
        ("web server indexes home directories", Unix, 1997),
    ];
    for (n, os, y) in config {
        b.push(n, os, y, M::ConfigError);
    }

    b.pad("insufficient-analysis", 26, M::InsufficientInfo); // 26 total

    let out = b.out;
    debug_assert_eq!(out.len(), 195);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_has_195_entries_with_unique_ids() {
        let db = entries();
        assert_eq!(db.len(), 195);
        let mut ids: Vec<u32> = db.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 195);
    }

    #[test]
    fn database_is_deterministic() {
        assert_eq!(entries(), entries());
    }

    #[test]
    fn years_are_plausible() {
        assert!(entries().iter().all(|e| (1988..=1999).contains(&e.year)));
    }
}
