//! Offline stand-in for `rand` 0.8.
//!
//! Provides the subset the `epa` workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic, fast, and not cryptographic.

#![warn(rust_2018_idioms)]

/// A source of random `u64`s plus the derived sampling methods.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Generates a uniform value of `T` (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types samplable uniformly over their whole domain (`rand`'s `Standard`).
pub trait Standard {
    /// Draws one uniform value from `rng`.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! standard_ints {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    // Widening-multiply rejection sampling (Lemire); bias is unmeasurable at
    // these range sizes but the zone check keeps it exact anyway.
    let zone = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + uniform_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator (xoshiro256** here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the conventional way to seed xoshiro.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{uniform_below, Rng};

    /// Randomized operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}
