//! Offline stand-in for `criterion`.
//!
//! Provides the group/bencher API surface the `epa` benches use and reports
//! a median wall-clock time per iteration. There is no statistical engine,
//! no warm-up tuning, and no HTML report — just enough to make
//! `cargo bench` meaningful for spotting order-of-magnitude regressions.

#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

/// How batched inputs are sized (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup { samples: 10 }
    }
}

/// A named collection of benchmarks with shared settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            median: Duration::ZERO,
        };
        f(&mut bencher);
        println!("  {name:<40} median {:>12.3?}/iter", bencher.median);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Times closures handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    median: Duration,
}

impl Bencher {
    /// Times `routine`, recording the median over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches; then time each sample.
        let _ = std::hint::black_box(routine());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                let _ = std::hint::black_box(routine());
                start.elapsed()
            })
            .collect();
        times.sort();
        self.median = times[times.len() / 2];
    }

    /// Times `routine` over fresh inputs built by `setup` (untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let _ = std::hint::black_box(routine(setup()));
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                let _ = std::hint::black_box(routine(input));
                start.elapsed()
            })
            .collect();
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// Declares a function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
