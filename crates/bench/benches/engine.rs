//! Criterion performance benches: engine overhead and substrate hot paths.
//!
//! Absolute numbers are machine-local; the benches exist so regressions in
//! the injection engine or the VFS resolver are visible. Beyond the
//! criterion groups, `main` measures copy-on-write snapshot setup against
//! the old deep-clone per-fault setup on the lpr-scale world and writes the
//! result to `BENCH_engine.json` (the start of the perf trajectory; the
//! engine redesign requires snapshot ≥ 2× faster than deep clone there),
//! then measures the suite-wide pooled executor against the retired
//! one-thread-per-application fan-out and writes `BENCH_executor.json`
//! (the executor refactor requires pooled wall-clock ≤ the old fan-out and
//! a worker ceiling of `available_parallelism`).

use std::time::{Duration, Instant};

use criterion::{criterion_group, BatchSize, Criterion};

use epa_apps::{worlds, Lpr, Turnin};
use epa_core::campaign::{run_once, CampaignOptions};
use epa_core::engine::{executor, Session};
use epa_sandbox::app::Application;
use epa_sandbox::cred::{Credentials, Gid, Uid};
use epa_sandbox::mode::Mode;

fn bench_campaigns(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign");
    g.sample_size(20);
    let lpr = Session::from_setup(worlds::lpr_world());
    g.bench_function("lpr_full_campaign", |b| b.iter(|| lpr.execute(&Lpr)));
    let turnin = Session::from_setup(worlds::turnin_world());
    g.bench_function("turnin_full_campaign", |b| b.iter(|| turnin.execute(&Turnin)));
    let turnin_parallel = turnin.clone().with_options(CampaignOptions {
        parallel: true,
        ..Default::default()
    });
    g.bench_function("turnin_full_campaign_parallel", |b| {
        b.iter(|| turnin_parallel.execute(&Turnin))
    });
    let suite = epa_apps::standard_suite().expect("valid specs");
    g.bench_function("standard_suite_all_eight_apps", |b| b.iter(|| suite.execute()));
    g.finish();
}

fn bench_setup(c: &mut Criterion) {
    let mut g = c.benchmark_group("setup");
    let setup = worlds::lpr_world();
    g.bench_function("lpr_world_snapshot_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.clone(), BatchSize::SmallInput)
    });
    g.bench_function("lpr_world_deep_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.deep_clone(), BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_single_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("run");
    let setup = worlds::turnin_world();
    g.bench_function("turnin_clean_run", |b| b.iter(|| run_once(&setup, &Turnin, None)));
    g.bench_function("world_clone", |b| {
        b.iter_batched(|| (), |_| setup.world.clone(), BatchSize::SmallInput)
    });
    g.finish();
}

fn bench_vfs(c: &mut Criterion) {
    let mut g = c.benchmark_group("vfs");
    let mut fs = epa_sandbox::fs::Vfs::new();
    for d in 0..50 {
        for f in 0..10 {
            fs.put_file(
                &format!("/srv/data/dir{d}/file{f}"),
                "content",
                Uid::ROOT,
                Gid::ROOT,
                Mode::new(0o644),
            )
            .unwrap();
        }
    }
    fs.god_symlink("/srv/link", "/srv/data/dir25").unwrap();
    let cred = Credentials::user(Uid(1001), Gid(100));
    g.bench_function("resolve_deep_path", |b| {
        b.iter(|| fs.walk("/srv/data/dir25/file5", true, Some(&cred)).unwrap())
    });
    g.bench_function("resolve_through_symlink", |b| {
        b.iter(|| fs.walk("/srv/link/file5", true, Some(&cred)).unwrap())
    });
    g.bench_function("stat", |b| b.iter(|| fs.stat("/srv/data/dir10/file1", None).unwrap()));
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("vulndb");
    let db = epa_vulndb::entries();
    g.bench_function("classify_195_entries", |b| b.iter(|| epa_vulndb::compute(&db)));
    g.finish();
}

/// Median wall-clock nanoseconds of `f` over `samples` runs.
fn median_ns<O>(samples: usize, mut f: impl FnMut() -> O) -> u128 {
    let _ = std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let _ = std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_nanos()
}

/// Measures snapshot-vs-deep-clone per-fault world setup on the lpr-scale
/// world and writes `BENCH_engine.json` next to the workspace root.
fn emit_bench_json() {
    let setup = worlds::lpr_world();
    let samples = 200;
    let snapshot_ns = median_ns(samples, || setup.world.clone());
    let deep_ns = median_ns(samples, || setup.world.deep_clone());
    let session = Session::from_setup(worlds::lpr_world());
    let campaign_ns = median_ns(20, || session.execute(&Lpr));
    let speedup = deep_ns as f64 / snapshot_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"world\": \"lpr\",\n  \"samples\": {samples},\n  \
         \"snapshot_clone_ns\": {snapshot_ns},\n  \"deep_clone_ns\": {deep_ns},\n  \
         \"snapshot_speedup\": {speedup:.2},\n  \"lpr_full_campaign_ns\": {campaign_ns}\n}}\n"
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_engine.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "\nwrote {} (snapshot speedup over deep clone: {speedup:.1}x)",
            path.display()
        ),
        Err(e) => eprintln!("\nBENCH_engine.json not written: {e}"),
    }
    assert!(
        speedup >= 2.0,
        "copy-on-write snapshot setup must beat deep clone by >= 2x on the lpr world, got {speedup:.2}x"
    );
}

/// The pre-executor suite runner, reimplemented for comparison: one scoped
/// thread per registered application, each running its whole campaign
/// sequentially — `apps × campaign` threads regardless of the hardware.
fn per_app_fanout(cases: &[(&dyn Application, Session)]) -> usize {
    std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .iter()
            .map(|(app, session)| scope.spawn(move || session.execute(*app).injected()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("campaign thread")).sum()
    })
}

/// Measures the suite-wide pooled executor against the retired per-app
/// thread fan-out on the full eight-application suite, asserts the worker
/// ceiling and the no-regression bound, and writes `BENCH_executor.json`.
fn emit_executor_bench_json() {
    let cases: Vec<(&dyn Application, Session)> = vec![
        (&epa_apps::Lpr, Session::from_setup(worlds::lpr_world())),
        (&epa_apps::Turnin, Session::from_setup(worlds::turnin_world())),
        (&epa_apps::FontPurge, Session::from_setup(worlds::fontpurge_world())),
        (&epa_apps::NtLogon, Session::from_setup(worlds::ntlogon_world())),
        (&epa_apps::Fingerd, Session::from_setup(worlds::fingerd_world())),
        (&epa_apps::Authd, Session::from_setup(worlds::authd_world())),
        (&epa_apps::MailNotify, Session::from_setup(worlds::mailnotify_world())),
        (&epa_apps::Backupd, Session::from_setup(worlds::backupd_world())),
    ];
    let suite = epa_apps::standard_suite().expect("valid specs");
    let samples = 15;

    executor::reset_peak_live_workers();
    let mut pooled_injected = 0usize;
    let pooled_ns = median_ns(samples, || {
        pooled_injected = suite.execute().total_injected();
    });
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let peak_workers = executor::peak_live_workers();
    assert!(
        peak_workers <= available,
        "pooled suite must never exceed available_parallelism={available} workers, saw {peak_workers}"
    );

    let mut fanout_injected = 0usize;
    let fanout_ns = median_ns(samples, || {
        fanout_injected = per_app_fanout(&cases);
    });
    // Same workloads: both runners must inject the identical fault count.
    assert_eq!(pooled_injected, fanout_injected);
    let speedup = fanout_ns as f64 / pooled_ns.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"executor\",\n  \"suite_apps\": {},\n  \"samples\": {samples},\n  \
         \"pooled_suite_ns\": {pooled_ns},\n  \"per_app_fanout_ns\": {fanout_ns},\n  \
         \"fanout_over_pooled\": {speedup:.2},\n  \"available_parallelism\": {available},\n  \
         \"peak_live_workers\": {peak_workers}\n}}\n",
        cases.len()
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_executor.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (pooled suite vs per-app fan-out: {speedup:.2}x, peak workers {peak_workers}/{available})",
            path.display()
        ),
        Err(e) => eprintln!("BENCH_executor.json not written: {e}"),
    }
    // Medians on a machine with >= 8 cores can land near-equal (both paths
    // then reach full parallelism); a 5% margin keeps scheduler noise from
    // failing the no-regression gate without hiding a real slowdown.
    assert!(
        pooled_ns as f64 <= fanout_ns as f64 * 1.05,
        "pooled suite wall-clock must not exceed the old per-app fan-out \
         (pooled {pooled_ns}ns > fanout {fanout_ns}ns + 5% margin)"
    );
}

criterion_group!(
    benches,
    bench_campaigns,
    bench_setup,
    bench_single_run,
    bench_vfs,
    bench_classifier
);

// A hand-rolled `main` instead of `criterion_main!`: the criterion groups
// run first, then the snapshot-vs-deep-clone measurement is written to
// BENCH_engine.json and the pooled-executor-vs-fanout measurement to
// BENCH_executor.json.
fn main() {
    benches();
    emit_bench_json();
    emit_executor_bench_json();
}
