//! Property tests: planner equivalence — canonical-fault dedup, cross-run
//! memoization, and budgeted yield-guided planning must find the exact
//! verdict set of exhaustive planning across randomized worlds, randomized
//! fault plans, and spec-declared invariants; and the paper's pinned lpr
//! numbers must survive every planner path.

use epa::core::campaign::CampaignOptions;
use epa::core::engine::planner::ResultCache;
use epa::core::engine::{Session, Suite, WorldSpec};
use epa::core::report::CampaignReport;
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::os::{Os, ScenarioMeta};
use epa::sandbox::policy::InvariantSpec;
use epa::sandbox::process::Pid;
use epa::sandbox::trace::InputSemantic;
use proptest::prelude::*;

/// A deterministic program parameterized by the randomized world: reads its
/// argument, then every declared data file, then spools a summary.
struct Walker {
    files: Vec<String>,
}

impl Application for Walker {
    fn name(&self) -> &'static str {
        "walker"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let Ok(arg) = os.sys_arg(pid, "walker:arg", 0, InputSemantic::UserFileName) else {
            return 2;
        };
        let mut seen = 0usize;
        for path in &self.files {
            if let Ok(d) = os.sys_read_file(pid, "walker:read", path.as_str()) {
                seen += d.len();
            }
        }
        let summary = format!("{}:{seen}", arg.text());
        if os
            .sys_write_file(pid, "walker:spool", "/var/spool/walker/out", summary.as_str(), 0o660)
            .is_err()
        {
            return 1;
        }
        let _ = os.sys_print(pid, "walker:done", "done\n");
        0
    }
}

#[derive(Debug, Clone)]
struct RandFile {
    name: String,
    content: String,
    mode: u16,
    owner: u8,
}

fn file_strategy() -> impl Strategy<Value = RandFile> {
    (
        "[a-z]{1,8}",
        ".{0,40}",
        prop_oneof![
            Just(0o600u16),
            Just(0o644u16),
            Just(0o666u16),
            Just(0o700u16),
            Just(0o755u16)
        ],
        0u8..3,
    )
        .prop_map(|(name, content, mode, owner)| RandFile {
            name,
            content,
            mode,
            owner,
        })
}

fn invariant_strategy() -> impl Strategy<Value = Vec<InvariantSpec>> {
    prop_oneof![
        Just(Vec::new()),
        Just(vec![InvariantSpec::file_pristine("/etc/shadow")]),
        Just(vec![InvariantSpec::forbid_exec("/home/evil")]),
        Just(vec![
            InvariantSpec::require_rule("never-declared"),
            InvariantSpec::file_pristine("/etc/passwd"),
        ]),
    ]
}

fn build_spec(files: &[RandFile], arg: &str, invariants: &[InvariantSpec]) -> (WorldSpec, Vec<String>) {
    let scenario = ScenarioMeta::default();
    let mut b = WorldSpec::builder()
        .user("root", Uid::ROOT, Gid::ROOT, "/root")
        .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
        .user("evil", scenario.attacker, scenario.attacker_gid, "/home/evil")
        .dir("/var/spool/walker", Uid::ROOT, Gid::ROOT, 0o755)
        .root_file("/etc/passwd", "root:0:0:", 0o644)
        .root_file("/etc/shadow", "root:HASH", 0o600)
        .suid_root_program("/usr/bin/walker")
        .args([arg]);
    for inv in invariants {
        b = b.invariant(inv.clone());
    }
    let mut paths = Vec::new();
    for (i, f) in files.iter().enumerate() {
        let path = format!("/data/f{i}-{}", f.name);
        let (owner, group) = match f.owner {
            0 => (Uid::ROOT, Gid::ROOT),
            1 => (scenario.invoker, scenario.invoker_gid),
            _ => (scenario.attacker, scenario.attacker_gid),
        };
        b = b.file(path.clone(), f.content.clone(), owner, group, f.mode);
        paths.push(path);
    }
    (b.build(), paths)
}

/// Strips the planner's replay flag: a replayed record must equal its
/// executed twin in every other field, so reports compare field-for-field.
fn executed_view(report: &CampaignReport) -> CampaignReport {
    let mut stripped = report.clone();
    for r in &mut stripped.records {
        r.cache_hit = false;
    }
    stripped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The planner's acceptance property: over randomized worlds, plans,
    /// and invariants —
    ///
    /// 1. dedup + a shared cache reproduce the exhaustive (dedup-off,
    ///    cache-off) report exactly, on a cold *and* a fully warmed cache;
    /// 2. the warmed pass executes zero runs;
    /// 3. a budget covering the whole plan is a pure permutation (same
    ///    report); a smaller budget yields a subset whose every record is
    ///    byte-identical to its exhaustive twin.
    #[test]
    fn planner_paths_find_the_exhaustive_verdict_set(
        files in proptest::collection::vec(file_strategy(), 0..4),
        arg in "[a-z]{1,6}",
        invariants in invariant_strategy(),
        max_faults in prop_oneof![Just(None), (1usize..4).prop_map(Some)],
        max_occurrences in 1usize..3,
    ) {
        let (spec, paths) = build_spec(&files, &arg, &invariants);
        let app = Walker { files: paths };
        let setup = spec.materialize().expect("generated specs are valid");
        let base = CampaignOptions {
            max_faults_per_site: max_faults,
            max_occurrences_per_site: max_occurrences,
            ..Default::default()
        };

        // Exhaustive baseline: every job its own run, plan order.
        let exhaustive = Session::from_setup(setup.clone()).with_options(CampaignOptions {
            dedup: false,
            ..base.clone()
        });
        let e = exhaustive.execute(&app);

        // Dedup + memo: two passes over one shared cache.
        let cache = ResultCache::new();
        let planner = Session::from_setup(setup.clone())
            .with_options(base.clone())
            .with_result_cache(cache.clone());
        let p1 = planner.execute(&app);
        let p2 = planner.execute(&app);
        prop_assert_eq!(&executed_view(&p1), &e, "cold planner pass must equal exhaustive");
        prop_assert_eq!(&executed_view(&p2), &e, "warm planner pass must equal exhaustive");
        prop_assert_eq!(p2.runs_executed(), 0, "a warmed cache replays every run");
        prop_assert_eq!(p2.cache_hits() + p2.pruned(), p2.injected());
        prop_assert!(p1.runs_executed() + p2.runs_executed() < 2 * e.injected() || e.injected() == 0);

        // A budget covering the whole plan permutes the execution order but
        // reproduces the identical report (records stay in plan order).
        let generous = Session::from_setup(setup.clone()).with_options(CampaignOptions {
            plan_budget: Some(e.injected()),
            ..base.clone()
        });
        let g = generous.execute(&app);
        prop_assert_eq!(&executed_view(&g), &e, "a covering budget is a pure permutation");

        // A smaller budget selects a subset; every selected record is
        // byte-identical to its exhaustive twin.
        if e.injected() > 1 {
            let budget = e.injected() / 2;
            let partial = Session::from_setup(setup.clone()).with_options(CampaignOptions {
                plan_budget: Some(budget),
                ..base
            });
            let p = partial.execute(&app);
            prop_assert!(p.runs_executed() <= budget);
            for record in &p.records {
                let twin = e
                    .records
                    .iter()
                    .find(|r| r.fault_id == record.fault_id && r.site == record.site && r.occurrence == record.occurrence);
                match twin {
                    Some(t) => {
                        let mut r = record.clone();
                        r.cache_hit = false;
                        prop_assert_eq!(t, &r, "budgeted record diverged from its twin");
                    }
                    None => prop_assert!(false, "budgeted record {} is not in the exhaustive plan", record.fault_id),
                }
            }
        }
    }
}

/// Injecting a hand-duplicated fault (same payload, different catalog id)
/// must execute once and replay the duplicate, with identical verdicts on
/// both records.
#[test]
fn duplicate_payloads_within_a_plan_execute_once() {
    let (spec, paths) = build_spec(&[], "report", &[]);
    let app = Walker { files: paths };
    let setup = spec.materialize().unwrap();
    // Pruning off: this test isolates dedup replay, and the analyzer may
    // prove the chosen fault inert (which would synthesize both records).
    let session = Session::from_setup(setup).with_options(CampaignOptions {
        static_prune: false,
        ..Default::default()
    });

    let mut plan = session.plan(&app);
    let site = plan
        .sites
        .iter_mut()
        .find(|s| !s.faults.is_empty())
        .expect("walker has perturbable sites");
    let mut duplicate = site.faults[0].clone();
    duplicate.id = format!("{}#duplicate", duplicate.id);
    duplicate.description = "same perturbation under another catalog name".to_string();
    site.faults.push(duplicate);

    let report = session.execute_plan(&app, &plan);
    assert_eq!(report.cache_hits(), 1, "the duplicate must replay, not re-execute");
    assert_eq!(report.runs_executed(), report.injected() - 1);
    let twin: Vec<_> = report
        .records
        .iter()
        .filter(|r| {
            r.fault_id
                .starts_with(&plan.sites.iter().find(|s| !s.faults.is_empty()).unwrap().faults[0].id)
        })
        .collect();
    assert_eq!(twin.len(), 2);
    assert_eq!(
        twin[0].violations, twin[1].violations,
        "replayed verdicts are byte-identical"
    );
    assert_eq!(twin[0].exit, twin[1].exit);
    assert!(!twin[0].cache_hit && twin[1].cache_hit);
}

/// Two registrations of the same application over the same (independently
/// materialized) world spec share a memoization scope: the suite's
/// sequential path replays the whole second campaign from the first one's
/// runs — the fingerprint is content-addressed, not pointer identity.
#[test]
fn suite_replays_identical_campaigns_from_the_shared_cache() {
    use epa::apps::Lpr;
    let mut suite = Suite::new();
    suite.register(Lpr, &epa::apps::lpr::spec()).unwrap();
    suite.register(Lpr, &epa::apps::lpr::spec()).unwrap();
    let report = suite.sequential().execute();
    assert_eq!(report.reports.len(), 2);
    assert_eq!(report.reports[0].cache_hits(), 0);
    assert_eq!(
        report.reports[1].cache_hits(),
        report.reports[1].injected() - report.reports[1].pruned(),
        "the second identical campaign must replay every executed run"
    );
    assert_eq!(report.reports[1].pruned(), report.reports[0].pruned());
    assert_eq!(executed_view(&report.reports[1]), executed_view(&report.reports[0]));
}

/// The paper's §3.4 numbers, pinned through every planner path: memoized
/// replay, the covering budget, and a half budget (every create-site fault
/// violates, so even the pruned campaign reports violations only).
#[test]
fn lpr_numbers_pin_through_the_planner_paths() {
    use epa::apps::{worlds, Lpr};
    use epa::sandbox::trace::SiteId;
    use std::collections::BTreeSet;

    let mut filter = BTreeSet::new();
    filter.insert(SiteId::new("lpr:create_spool"));
    let base = CampaignOptions {
        site_filter: Some(filter),
        ..Default::default()
    };
    let setup = worlds::lpr_world();

    // Memoized: the warmed pass replays all four runs and keeps 4/4.
    let cache = ResultCache::new();
    let session = Session::from_setup(setup.clone())
        .with_options(base.clone())
        .with_result_cache(cache);
    let first = session.execute(&Lpr);
    assert_eq!(first.injected(), 4, "existence, ownership, permission, symbolic link");
    assert_eq!(first.violated(), 4, "paper: violations detected for attributes 1-4");
    let replayed = session.execute(&Lpr);
    assert_eq!(replayed.violated(), 4);
    assert_eq!(replayed.runs_executed(), 0);
    assert_eq!(executed_view(&replayed), executed_view(&first));

    // Budgeted: a covering budget keeps 4/4; half the budget still finds
    // violations on every executed run.
    let covering = Session::from_setup(setup.clone()).with_options(CampaignOptions {
        plan_budget: Some(4),
        ..base.clone()
    });
    let c = covering.execute(&Lpr);
    assert_eq!((c.injected(), c.violated()), (4, 4));
    let half = Session::from_setup(setup).with_options(CampaignOptions {
        plan_budget: Some(2),
        ..base
    });
    let h = half.execute(&Lpr);
    assert_eq!((h.runs_executed(), h.violated()), (2, 2));
}
