//! The EAI classifier: derives a category from mechanism evidence — for
//! database entries *and* for live oracle verdicts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use epa_core::engine::SuiteReport;
use epa_core::model::{DirectKind, EaiCategory, FsAttribute, IndirectKind, NetAttribute, ProcAttribute};
use epa_sandbox::policy::ViolationKind;

use crate::entry::{AttributeFault, InputFlaw, InputSource, Mechanism, PlainFault, VulnEntry};

/// Why an entry falls outside the EAI classification (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Exclusion {
    /// Not enough analysis in the database entry.
    InsufficientInformation,
    /// Design error, out of scope.
    Design,
    /// Configuration error, out of scope.
    Configuration,
}

impl std::fmt::Display for Exclusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Exclusion::InsufficientInformation => "insufficient information",
            Exclusion::Design => "design error",
            Exclusion::Configuration => "configuration error",
        };
        f.write_str(s)
    }
}

/// The classifier's verdict for one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// Outside the study scope.
    Excluded(Exclusion),
    /// Classified under the EAI model (including `Other`).
    Eai(EaiCategory),
}

impl Classification {
    /// The EAI category, when classified.
    pub fn category(&self) -> Option<EaiCategory> {
        match self {
            Classification::Eai(c) => Some(*c),
            Classification::Excluded(_) => None,
        }
    }
}

/// Classifies one entry from its mechanism evidence.
pub fn classify(entry: &VulnEntry) -> Classification {
    classify_mechanism(entry.mechanism)
}

/// Classifies bare mechanism evidence (shared by [`classify`] and the
/// oracle-verdict linkage, [`classify_violation`]).
pub fn classify_mechanism(mechanism: Mechanism) -> Classification {
    match mechanism {
        Mechanism::InsufficientInfo => Classification::Excluded(Exclusion::InsufficientInformation),
        Mechanism::DesignError => Classification::Excluded(Exclusion::Design),
        Mechanism::ConfigError => Classification::Excluded(Exclusion::Configuration),
        Mechanism::Input { source, .. } => {
            let kind = match source {
                InputSource::UserArg | InputSource::UserStdin => IndirectKind::UserInput,
                InputSource::EnvVariable => IndirectKind::EnvironmentVariable,
                InputSource::ConfigFile => IndirectKind::FileSystemInput,
                InputSource::NetworkMessage => IndirectKind::NetworkInput,
                InputSource::PeerProcess => IndirectKind::ProcessInput,
            };
            Classification::Eai(EaiCategory::Indirect(kind))
        }
        Mechanism::Attribute(attr) => {
            let kind = match attr {
                AttributeFault::FileExistence => DirectKind::FileSystem(FsAttribute::Existence),
                AttributeFault::FileSymlink => DirectKind::FileSystem(FsAttribute::SymbolicLink),
                AttributeFault::FilePermission => DirectKind::FileSystem(FsAttribute::Permission),
                AttributeFault::FileOwnership => DirectKind::FileSystem(FsAttribute::Ownership),
                AttributeFault::FileInvariance => DirectKind::FileSystem(FsAttribute::ContentInvariance),
                AttributeFault::WorkingDirectory => DirectKind::FileSystem(FsAttribute::WorkingDirectory),
                AttributeFault::NetAuthenticity => DirectKind::Network(NetAttribute::MessageAuthenticity),
                AttributeFault::NetProtocol => DirectKind::Network(NetAttribute::Protocol),
                AttributeFault::NetAvailability => DirectKind::Network(NetAttribute::ServiceAvailability),
                AttributeFault::NetTrust => DirectKind::Network(NetAttribute::EntityTrust),
                AttributeFault::ProcTrust => DirectKind::Process(ProcAttribute::Trust),
            };
            Classification::Eai(EaiCategory::Direct(kind))
        }
        Mechanism::Plain(_) => Classification::Eai(EaiCategory::Other),
    }
}

// ----------------------------------------------------------------------
// Oracle-verdict linkage: ViolationKind × fault category → taxonomy entry
// ----------------------------------------------------------------------

/// Reconstructs the mechanism evidence a live oracle verdict implies: the
/// injected fault's EAI category says *how the fault reached the program*
/// (the database's input-source / attribute-fault axis), and the violation
/// kind says *what flaw it exposed* (the input-flaw refinement).
///
/// This is the inverse direction of the database classifier: campaign
/// verdicts become the same structured evidence `classify_mechanism`
/// consumes, so detected vulnerabilities land in the same paper-table
/// taxonomy as the historical entries.
pub fn mechanism_for_violation(kind: ViolationKind, category: EaiCategory) -> Mechanism {
    match category {
        EaiCategory::Direct(direct) => Mechanism::Attribute(match direct {
            DirectKind::FileSystem(FsAttribute::Existence) => AttributeFault::FileExistence,
            DirectKind::FileSystem(FsAttribute::SymbolicLink) => AttributeFault::FileSymlink,
            DirectKind::FileSystem(FsAttribute::Permission) => AttributeFault::FilePermission,
            DirectKind::FileSystem(FsAttribute::Ownership) => AttributeFault::FileOwnership,
            DirectKind::FileSystem(FsAttribute::ContentInvariance | FsAttribute::NameInvariance) => {
                AttributeFault::FileInvariance
            }
            DirectKind::FileSystem(FsAttribute::WorkingDirectory) => AttributeFault::WorkingDirectory,
            DirectKind::Network(NetAttribute::MessageAuthenticity) => AttributeFault::NetAuthenticity,
            DirectKind::Network(NetAttribute::Protocol) => AttributeFault::NetProtocol,
            DirectKind::Network(NetAttribute::ServiceAvailability) => AttributeFault::NetAvailability,
            DirectKind::Network(NetAttribute::EntityTrust | NetAttribute::Socket) => AttributeFault::NetTrust,
            DirectKind::Process(_) => AttributeFault::ProcTrust,
            // §4.2 treats registry values as named persistent objects; they
            // are counted with the file system (see
            // `DirectKind::table3_column`), and a perturbed value behaves
            // like content that stopped being what the module assumed.
            DirectKind::Registry(_) => AttributeFault::FileInvariance,
        }),
        EaiCategory::Indirect(indirect) => Mechanism::Input {
            source: match indirect {
                IndirectKind::UserInput => InputSource::UserArg,
                IndirectKind::EnvironmentVariable => InputSource::EnvVariable,
                IndirectKind::FileSystemInput => InputSource::ConfigFile,
                IndirectKind::NetworkInput => InputSource::NetworkMessage,
                IndirectKind::ProcessInput => InputSource::PeerProcess,
            },
            flaw: match kind {
                ViolationKind::MemoryCorruption => InputFlaw::UncheckedLength,
                ViolationKind::UntrustedExec => InputFlaw::ShellMetachars,
                // Spoofed actions and breached scenario invariants (the
                // authd skipped-auth class) are both driven by structurally
                // confused input: wrong origin, omitted protocol steps,
                // malformed framing.
                ViolationKind::SpoofedAction | ViolationKind::Custom => InputFlaw::FormatConfusion,
                ViolationKind::IntegrityWrite
                | ViolationKind::IntegrityDelete
                | ViolationKind::Disclosure
                | ViolationKind::TaintedPrivilegedOp => InputFlaw::UnvalidatedPath,
                // `ViolationKind` is `#[non_exhaustive]`; genuinely new
                // families default to the structural-confusion flaw until
                // mapped deliberately.
                _ => InputFlaw::FormatConfusion,
            },
        },
        EaiCategory::Other => Mechanism::Plain(match kind {
            ViolationKind::MemoryCorruption => PlainFault::OffByOne,
            _ => PlainFault::LogicError,
        }),
    }
}

/// Classifies one oracle verdict against the database taxonomy.
pub fn classify_violation(kind: ViolationKind, category: EaiCategory) -> Classification {
    classify_mechanism(mechanism_for_violation(kind, category))
}

/// The rollup label for one verdict: the taxonomy side (`indirect / user
/// input`, `direct / file system / symbolic link`, ...) crossed with the
/// policy family the oracle reported (`disclosure`, `integrity-write`, ...).
pub fn violation_class(kind: ViolationKind, category: EaiCategory) -> String {
    let taxonomy = match classify_violation(kind, category) {
        Classification::Eai(c) => c.to_string(),
        Classification::Excluded(e) => format!("excluded / {e}"),
    };
    format!("{taxonomy} -> {kind}")
}

/// Rolls a suite run up by vulnerability class: every verdict of every
/// fault record, keyed by [`violation_class`], with the number of verdicts
/// and the applications they came from.
pub fn suite_class_rollup(report: &SuiteReport) -> BTreeMap<String, ClassRollup> {
    let mut out: BTreeMap<String, ClassRollup> = BTreeMap::new();
    for campaign in &report.reports {
        for record in &campaign.records {
            for verdict in &record.violations {
                let entry = out.entry(violation_class(verdict.kind, record.category)).or_default();
                entry.verdicts += 1;
                if !entry.apps.contains(&campaign.app) {
                    entry.apps.push(campaign.app.clone());
                }
            }
        }
    }
    out
}

/// One row of [`suite_class_rollup`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassRollup {
    /// Verdicts across the whole suite falling into this class.
    pub verdicts: usize,
    /// Applications (registration order) that produced at least one.
    pub apps: Vec<String>,
}

/// Renders the rollup in the suite report's indentation style.
pub fn render_class_rollup(rollup: &BTreeMap<String, ClassRollup>) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "  vulnerability-class rollup (taxonomy -> policy family):");
    for (class, row) in rollup {
        let _ = writeln!(
            s,
            "    {class:<58} {:>4} verdicts  ({})",
            row.verdicts,
            row.apps.join(", ")
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{InputFlaw, OsFamily};

    fn entry(mechanism: Mechanism) -> VulnEntry {
        VulnEntry {
            id: 1,
            name: "t".into(),
            os: OsFamily::Unix,
            year: 1997,
            mechanism,
        }
    }

    #[test]
    fn exclusions_are_not_categorized() {
        assert_eq!(
            classify(&entry(Mechanism::DesignError)),
            Classification::Excluded(Exclusion::Design)
        );
        assert!(classify(&entry(Mechanism::InsufficientInfo)).category().is_none());
    }

    #[test]
    fn input_sources_map_to_indirect_kinds() {
        let c = classify(&entry(Mechanism::Input {
            source: InputSource::EnvVariable,
            flaw: InputFlaw::UnvalidatedPath,
        }));
        assert_eq!(
            c.category(),
            Some(EaiCategory::Indirect(IndirectKind::EnvironmentVariable))
        );
    }

    #[test]
    fn attributes_map_to_direct_kinds() {
        let c = classify(&entry(Mechanism::Attribute(AttributeFault::FileSymlink)));
        assert_eq!(
            c.category(),
            Some(EaiCategory::Direct(DirectKind::FileSystem(FsAttribute::SymbolicLink)))
        );
    }

    #[test]
    fn plain_faults_are_other() {
        let c = classify(&entry(Mechanism::Plain(crate::entry::PlainFault::Typo)));
        assert_eq!(c.category(), Some(EaiCategory::Other));
    }

    #[test]
    fn verdict_classification_round_trips_through_the_entry_classifier() {
        // A symlink-attack verdict classifies exactly where a database entry
        // with the same mechanism evidence would.
        let category = EaiCategory::Direct(DirectKind::FileSystem(FsAttribute::SymbolicLink));
        let via_verdict = classify_violation(ViolationKind::IntegrityWrite, category);
        let via_entry = classify(&entry(Mechanism::Attribute(AttributeFault::FileSymlink)));
        assert_eq!(via_verdict, via_entry);
        assert_eq!(via_verdict.category(), Some(category));
    }

    #[test]
    fn indirect_verdicts_reconstruct_their_input_source() {
        let category = EaiCategory::Indirect(IndirectKind::EnvironmentVariable);
        let m = mechanism_for_violation(ViolationKind::UntrustedExec, category);
        assert_eq!(
            m,
            Mechanism::Input {
                source: InputSource::EnvVariable,
                flaw: InputFlaw::ShellMetachars,
            }
        );
        assert_eq!(classify_mechanism(m).category(), Some(category));
    }

    #[test]
    fn registry_verdicts_count_with_the_file_system() {
        use epa_core::model::RegAttribute;
        let category = EaiCategory::Direct(DirectKind::Registry(RegAttribute::AclProtection));
        let m = mechanism_for_violation(ViolationKind::TaintedPrivilegedOp, category);
        assert_eq!(m, Mechanism::Attribute(AttributeFault::FileInvariance));
    }

    #[test]
    fn violation_class_labels_cross_taxonomy_and_policy_family() {
        let label = violation_class(
            ViolationKind::Disclosure,
            EaiCategory::Direct(DirectKind::FileSystem(FsAttribute::SymbolicLink)),
        );
        assert_eq!(label, "direct / file system / symbolic link -> disclosure");
        let label = violation_class(ViolationKind::MemoryCorruption, EaiCategory::Other);
        assert_eq!(label, "other -> memory-corruption");
    }
}
