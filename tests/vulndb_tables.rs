//! Integration: Tables 1–4 reproduce the paper's numbers exactly.

use epa::vulndb;

#[test]
fn table1_matches_paper() {
    let t = vulndb::compute(&vulndb::entries()).table1;
    assert_eq!(t.indirect, 81, "paper Table 1: indirect = 81");
    assert_eq!(t.direct, 48, "paper Table 1: direct = 48");
    assert_eq!(t.other, 13, "paper Table 1: others = 13");
    assert_eq!(t.total(), 142, "paper: 142 classifiable entries");
    assert_eq!(t.database_total(), 195, "paper: 195 database entries");
    assert_eq!(t.excluded_insufficient, 26);
    assert_eq!(t.excluded_design, 22);
    assert_eq!(t.excluded_config, 5);
}

#[test]
fn table1_percentages_match_paper() {
    let t = vulndb::compute(&vulndb::entries()).table1;
    let total = t.total() as f64;
    assert!((t.indirect as f64 / total * 100.0 - 57.0).abs() < 0.1, "57.0% indirect");
    assert!((t.direct as f64 / total * 100.0 - 33.8).abs() < 0.1, "33.8% direct");
    assert!((t.other as f64 / total * 100.0 - 9.2).abs() < 0.1, "9.2% other");
}

#[test]
fn table2_matches_paper() {
    let t = vulndb::compute(&vulndb::entries()).table2;
    assert_eq!(t.user_input, 51);
    assert_eq!(t.env_variable, 17);
    assert_eq!(t.fs_input, 5);
    assert_eq!(t.network_input, 8);
    assert_eq!(t.process_input, 0);
    assert_eq!(t.total(), 81);
}

#[test]
fn table3_matches_paper() {
    let t = vulndb::compute(&vulndb::entries()).table3;
    assert_eq!(t.file_system, 42);
    assert_eq!(t.network, 5);
    assert_eq!(t.process, 1);
    assert_eq!(t.total(), 48);
}

#[test]
fn table4_matches_paper() {
    let t = vulndb::compute(&vulndb::entries()).table4;
    assert_eq!(t.existence, 20);
    assert_eq!(t.symlink, 6);
    assert_eq!(t.permission, 6);
    assert_eq!(t.ownership, 3);
    assert_eq!(t.invariance, 6);
    assert_eq!(t.working_directory, 1);
    assert_eq!(t.total(), 42);
}

#[test]
fn classification_is_derived_not_stored() {
    // Flipping an entry's mechanism must move it between columns: the
    // tables are a computation over evidence, not fixed labels.
    let mut db = vulndb::entries();
    let idx = db
        .iter()
        .position(|e| {
            matches!(
                e.mechanism,
                vulndb::Mechanism::Attribute(vulndb::AttributeFault::FileSymlink)
            )
        })
        .expect("a symlink entry exists");
    db[idx].mechanism = vulndb::Mechanism::Attribute(vulndb::AttributeFault::FileExistence);
    let t = vulndb::compute(&db).table4;
    assert_eq!(t.existence, 21);
    assert_eq!(t.symlink, 5);
}

#[test]
fn entries_serialize_round_trip() {
    let db = vulndb::entries();
    let json = serde_json::to_string(&db).expect("serialize");
    let back: Vec<vulndb::VulnEntry> = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, db);
}
