//! Integration: the engine facade — batch `Suite` execution over all eight
//! case-study applications, streaming events, and the cross-application
//! rollups.

use std::collections::BTreeMap;

use epa::apps::*;
use epa::core::campaign::CampaignOptions;
use epa::core::engine::{Engine, SuiteEvent, SuiteReport};

#[test]
fn the_standard_suite_runs_all_eight_apps_in_one_batch() {
    let report = standard_suite().expect("valid specs").execute();
    assert_eq!(report.reports.len(), 8);
    let apps: Vec<&str> = report.reports.iter().map(|r| r.app.as_str()).collect();
    assert_eq!(
        apps,
        vec![
            "lpr",
            "turnin",
            "fontpurge",
            "ntlogon",
            "fingerd",
            "authd",
            "mailnotify",
            "backupd"
        ],
        "reports come back in registration order"
    );
    // Every seeded flaw is found in the batch, and the paper's headline
    // campaigns keep their numbers inside the suite.
    assert_eq!(report.vulnerable_apps().len(), 8);
    let turnin = report.get("turnin").expect("turnin present");
    assert_eq!(turnin.injected(), 41);
    assert_eq!(turnin.violated(), 9);
    assert!(report.total_injected() > 100);
    assert!(report.fault_coverage().value_or(1.0) > 0.0 && report.fault_coverage().value_or(1.0) < 1.0);
}

#[test]
fn suite_streams_records_and_reports_consistently() {
    let suite = standard_suite().expect("valid specs");
    let mut started: Vec<String> = Vec::new();
    let mut per_app_records: BTreeMap<String, usize> = BTreeMap::new();
    let mut finished: Vec<String> = Vec::new();
    let report = suite.execute_with(&mut |event| match event {
        SuiteEvent::AppStarted { app } => {
            assert!(
                !per_app_records.contains_key(&app),
                "{app}: AppStarted must precede every record"
            );
            started.push(app);
        }
        SuiteEvent::Record { app, .. } => *per_app_records.entry(app).or_insert(0) += 1,
        SuiteEvent::AppFinished { app, .. } => finished.push(app),
        // SuiteEvent is #[non_exhaustive]; future variants are ignorable.
        _ => {}
    });
    assert_eq!(started.len(), 8, "one AppStarted per registration");
    assert_eq!(finished.len(), 8, "one AppFinished per registration");
    for r in &report.reports {
        assert_eq!(
            per_app_records.get(&r.app).copied().unwrap_or(0),
            r.injected(),
            "{}: every record must be streamed exactly once",
            r.app
        );
    }
}

#[test]
fn both_paths_emit_app_started_for_every_app_in_registration_order() {
    let expected = standard_suite().expect("valid specs").apps().join(",");
    for sequential in [false, true] {
        let mut suite = standard_suite().expect("valid specs");
        if sequential {
            suite = suite.sequential();
        }
        let mut started: Vec<String> = Vec::new();
        let _ = suite.execute_with(&mut |event| {
            if let SuiteEvent::AppStarted { app } = event {
                started.push(app);
            }
        });
        assert_eq!(started.join(","), expected, "sequential={sequential}");
    }
}

#[test]
fn sequential_and_fanned_out_suites_agree() {
    let fanned = standard_suite().expect("valid specs").execute();
    let sequential = standard_suite().expect("valid specs").sequential().execute();
    assert_eq!(fanned, sequential);
}

#[test]
fn suite_runs_are_deterministic() {
    let a = standard_suite().expect("valid specs").execute();
    let b = standard_suite().expect("valid specs").execute();
    assert_eq!(a, b);
}

#[test]
fn engine_options_propagate_to_sessions() {
    let engine = Engine::new().with_options(CampaignOptions {
        max_sites: Some(1),
        ..Default::default()
    });
    let session = engine.session(&lpr::spec()).expect("valid spec");
    let report = session.execute(&Lpr);
    assert_eq!(report.perturbed_sites, 1, "engine options reached the campaign");
    assert!(report.interaction_coverage().value_or(1.0) < 1.0);
}

#[test]
fn engine_builds_suites_from_heterogeneous_pairs() {
    use epa::sandbox::app::Application;
    let engine = Engine::new();
    let suite = engine
        .suite_of(vec![
            (Box::new(Lpr) as Box<dyn Application + Send + Sync>, lpr::spec()),
            (Box::new(Turnin), turnin::spec()),
        ])
        .expect("valid specs");
    assert_eq!(suite.apps(), vec!["lpr", "turnin"]);
    let report = suite.execute();
    assert_eq!(report.reports.len(), 2);
    assert!(report.get("lpr").unwrap().violated() > 0);
    assert_eq!(report.get("turnin").unwrap().violated(), 9);
}

#[test]
fn suite_reports_serialize_for_downstream_tooling() {
    let mut suite = epa::engine::Suite::new();
    suite.register(Lpr, &lpr::spec()).expect("valid spec");
    let report = suite.execute();
    let json = serde_json::to_string(&report).expect("serialize");
    let back: SuiteReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
    // The pretty form is what `reproduce -- suite --json` writes to
    // SUITE_report.json; it must round-trip identically too.
    let pretty = serde_json::to_string_pretty(&report).expect("serialize pretty");
    let back_pretty: SuiteReport = serde_json::from_str(&pretty).expect("deserialize pretty");
    assert_eq!(back_pretty, report);
    let text = report.render_text();
    assert!(text.contains("suite: 1 applications"));
    assert!(text.contains("lpr"));
}
