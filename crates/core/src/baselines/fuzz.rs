//! Fuzz baseline: random black-box input (Miller et al., CACM 1990).
//!
//! The fuzzer perturbs nothing but the program's *inputs*, replacing each
//! argument (or queueing random network packets) with random bytes. It has
//! no notion of file attributes, `PATH` semantics, or symlinks — which is
//! exactly why the paper argues environment-fault injection complements it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use epa_sandbox::app::Application;
use epa_sandbox::net::Message;

use super::{BaselineRecord, BaselineReport};
use crate::campaign::{run_once, TestSetup};

/// Where the fuzzer aims its random bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzTarget {
    /// Replace every command-line argument with random text.
    Args,
    /// Queue one random packet on a local port before the run.
    Net {
        /// The port fuzzed messages are queued on.
        port: u16,
        /// The claimed sender for fuzzed messages.
        from: String,
    },
    /// Queue one random message on an IPC channel before the run.
    Ipc {
        /// The channel fuzzed messages are queued on.
        channel: String,
        /// The claimed sender for fuzzed messages.
        from: String,
    },
}

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of random runs.
    pub runs: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Maximum generated input length.
    pub max_len: usize,
    /// Target.
    pub target: FuzzTarget,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            runs: 100,
            seed: 42,
            max_len: 6000,
            target: FuzzTarget::Args,
        }
    }
}

fn random_text(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            // Printable ASCII plus a sprinkling of the bytes fuzz papers
            // found effective (NUL-adjacent controls, separators).
            let roll: u8 = rng.gen_range(0..=99);
            if roll < 90 {
                rng.gen_range(0x20u8..=0x7e) as char
            } else {
                *['\n', '\t', ';', '/', '%', '\u{1}']
                    .get(rng.gen_range(0..6usize))
                    .unwrap_or(&'?')
            }
        })
        .collect()
}

/// Runs the fuzz baseline.
pub fn run_fuzz(setup: &TestSetup, app: &dyn Application, options: &FuzzOptions) -> BaselineReport {
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut records = Vec::with_capacity(options.runs);
    for _ in 0..options.runs {
        let mut run_setup = setup.clone();
        let input_desc;
        match &options.target {
            FuzzTarget::Args => {
                let count = run_setup.args.len().max(1);
                let fuzzed: Vec<String> = (0..count).map(|_| random_text(&mut rng, options.max_len)).collect();
                input_desc = format!(
                    "args[{}] lens {:?}",
                    count,
                    fuzzed.iter().map(String::len).collect::<Vec<_>>()
                );
                run_setup.args = fuzzed;
            }
            FuzzTarget::Net { port, from } => {
                // The fuzzed packet replaces the scripted traffic.
                while run_setup.world.net.pop_message(*port).is_some() {}
                let payload = random_text(&mut rng, options.max_len);
                input_desc = format!("packet len {} on :{port}", payload.len());
                run_setup
                    .world
                    .net
                    .push_message(*port, Message::genuine(from.clone(), payload));
            }
            FuzzTarget::Ipc { channel, from } => {
                while run_setup.world.net.pop_ipc(channel).is_ok() {}
                let payload = random_text(&mut rng, options.max_len);
                input_desc = format!("ipc message len {} on {channel}", payload.len());
                run_setup
                    .world
                    .net
                    .push_ipc(channel.clone(), Message::genuine(from.clone(), payload));
            }
        }
        let outcome = run_once(&run_setup, app, None);
        records.push(BaselineRecord {
            input: input_desc,
            exit: outcome.exit,
            crashed: outcome.has_crashed(),
            violations: outcome.violations,
        });
    }
    BaselineReport {
        technique: "fuzz".into(),
        app: app.name().to_string(),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sandbox::buffer::{CopyDiscipline, FixedBuf};
    use epa_sandbox::cred::{Gid, Uid};
    use epa_sandbox::mode::Mode;
    use epa_sandbox::os::Os;
    use epa_sandbox::process::Pid;
    use epa_sandbox::trace::InputSemantic;

    /// An app with a classic gets()-style overflow on its first argument.
    struct Overflowing;
    impl Application for Overflowing {
        fn name(&self) -> &'static str {
            "overflowing"
        }
        fn run(&self, os: &mut Os, pid: Pid) -> i32 {
            let Ok(arg) = os.sys_arg(pid, "ovf:arg", 0, InputSemantic::UserFileName) else {
                return 2;
            };
            let mut buf = FixedBuf::new("argbuf", 512);
            os.mem_copy(pid, &mut buf, &arg, CopyDiscipline::Unchecked);
            0
        }
    }

    fn setup() -> TestSetup {
        let mut os = Os::new();
        os.users
            .add("u", os.scenario.invoker, os.scenario.invoker_gid, "/home/u");
        os.fs
            .mkdir_p(
                "/home/u",
                os.scenario.invoker,
                os.scenario.invoker_gid,
                Mode::new(0o755),
            )
            .unwrap();
        os.fs
            .put_file("/bin/ovf", "", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        TestSetup::new(os).args(["hello"])
    }

    #[test]
    fn fuzz_finds_the_overflow() {
        let s = setup();
        let rep = run_fuzz(
            &s,
            &Overflowing,
            &FuzzOptions {
                runs: 40,
                seed: 7,
                max_len: 4096,
                target: FuzzTarget::Args,
            },
        );
        assert_eq!(rep.runs(), 40);
        assert!(rep.detections() > 0, "long random args must trip the unchecked copy");
        assert!(rep.distinct_rules().contains("R4-memory-safety"));
    }

    #[test]
    fn fuzz_is_deterministic_per_seed() {
        let s = setup();
        let o = FuzzOptions {
            runs: 10,
            seed: 99,
            max_len: 1024,
            target: FuzzTarget::Args,
        };
        let a = run_fuzz(&s, &Overflowing, &o);
        let b = run_fuzz(&s, &Overflowing, &o);
        assert_eq!(a, b);
    }
}
