//! `reproduce` — regenerate any table, figure or case study of the paper.
//!
//! ```text
//! cargo run -p epa-bench --bin reproduce -- all
//! cargo run -p epa-bench --bin reproduce -- table1 turnin figure2
//! cargo run -p epa-bench --bin reproduce -- suite --json   # + SUITE_report.json
//! cargo run -p epa-bench --bin reproduce -- corpus --json --seed 7 --count 32
//! ```

use epa_bench::experiments;

const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "figure1",
    "figure2",
    "lpr",
    "turnin",
    "registry",
    "comparison",
    "placement",
    "patterns",
    "suite",
    "corpus",
    "clean",
];

/// Options shared by the experiments that take values (currently only the
/// corpus sweep).
#[derive(Clone, Copy)]
struct RunOptions {
    json: bool,
    seed: Option<u64>,
    count: Option<usize>,
}

/// Where machine-readable artifacts land: the workspace root, next to
/// `BENCH_engine.json`.
fn workspace_artifact(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name)
}

fn run(name: &str, opts: RunOptions) -> Result<(), String> {
    let json = opts.json;
    match name {
        "table1" => print!("{}", experiments::table1()),
        "table2" => print!("{}", experiments::table2()),
        "table3" => print!("{}", experiments::table3()),
        "table4" => print!("{}", experiments::table4()),
        "table5" => print!("{}", experiments::table5()),
        "table6" => print!("{}", experiments::table6()),
        "figure1" => print!("{}", experiments::figure1().render()),
        "figure2" => print!("{}", experiments::figure2().render()),
        "lpr" => print!("{}", experiments::lpr_34().render()),
        "turnin" => print!("{}", experiments::turnin_41().render()),
        "registry" => print!("{}", experiments::registry_42().render()),
        "comparison" => print!("{}", experiments::comparison().render()),
        "placement" => print!("{}", experiments::placement().render()),
        "patterns" => print!("{}", experiments::patterns().render()),
        "suite" => {
            let report = experiments::suite();
            print!("{}", report.render_text());
            // Roll the verdict stream up by vulnerability class: each
            // verdict's policy family crossed with its fault's EAI category,
            // classified against the epa-vulndb taxonomy.
            print!(
                "{}",
                epa_vulndb::render_class_rollup(&epa_vulndb::suite_class_rollup(&report))
            );
            if json {
                let path = workspace_artifact("SUITE_report.json");
                let text =
                    serde_json::to_string_pretty(&report).map_err(|e| format!("serializing the suite report: {e}"))?;
                std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("wrote {}", path.display());
            }
        }
        "corpus" => {
            let seed = opts.seed.unwrap_or(epa_core::corpus::DEFAULT_CORPUS_SEED);
            let count = opts.count.unwrap_or(120);
            let report = experiments::corpus(seed, count);
            print!("{}", report.render_text());
            if json {
                let path = workspace_artifact("CORPUS_report.json");
                let text =
                    serde_json::to_string_pretty(&report).map_err(|e| format!("serializing the corpus report: {e}"))?;
                std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
                println!("wrote {}", path.display());
            }
            if report.divergences > 0 {
                return Err(format!(
                    "corpus: {} scenario(s) diverged across execution paths (seeds are in the dashboard above)",
                    report.divergences
                ));
            }
        }
        "clean" => {
            println!("Clean-run baseline (violations in unperturbed runs):");
            for (app, n) in experiments::clean_baseline() {
                println!("  {app:<16} {n}");
            }
        }
        other => return Err(format!("unknown experiment `{other}`")),
    }
    println!();
    Ok(())
}

/// Parses a `--flag value` pair out of `args`, removing both tokens.
/// Accepts decimal or `0x`-prefixed hex values.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(pos + 1);
    args.remove(pos);
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse::<u64>(),
    };
    parsed.map(Some).map_err(|_| format!("{flag}: `{raw}` is not a number"))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let (seed, count) =
        match (|| Ok::<_, String>((take_value(&mut args, "--seed")?, take_value(&mut args, "--count")?)))() {
            Ok(values) => values,
            Err(e) => {
                eprintln!("reproduce: {e}");
                std::process::exit(2);
            }
        };
    let json = args.iter().any(|a| a == "--json");
    let opts = RunOptions {
        json,
        seed,
        count: count.map(|c| c as usize),
    };
    let names: Vec<&str> = args.iter().map(String::as_str).filter(|a| *a != "--json").collect();
    let selected: Vec<&str> = if names.is_empty() || names.contains(&"all") {
        EXPERIMENTS.to_vec()
    } else {
        names
    };
    let mut failed = false;
    for name in selected {
        if let Err(e) = run(name, opts) {
            eprintln!("reproduce: {e}");
            eprintln!(
                "available: {} (plus --json, and --seed/--count for corpus)",
                EXPERIMENTS.join(", ")
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}
