//! The adaptive fault-space planner: canonical-fault dedup, cross-run
//! memoization, and optional yield-guided prioritization.
//!
//! The paper's §3.2 adequacy metric and §3.3 step 5 assume the fault plan
//! enumerates the *useful* perturbation space, but a naive planner
//! materializes every `(site × catalog pattern)` pair and re-runs
//! byte-identical faults across the suite. This module sits between the
//! fault plan ([`crate::campaign::CampaignPlan`]) and the work-stealing
//! [`crate::engine::Executor`] and prunes that space without losing a
//! single detection:
//!
//! 1. **Canonicalization** — every planned job collapses to a
//!    content-addressed [`FaultKey`]: fault variant + normalized target +
//!    struck occurrence (+ input semantics for indirect faults). Identity
//!    fields that cannot change what the run *does* — the fault id, its
//!    human-readable description, its EAI category label — are excluded,
//!    so two catalog patterns that compile to the same executable
//!    perturbation share a key.
//! 2. **Dedup** — within one plan, only the first job of each key executes;
//!    the rest are *aliases*, replayed from the canonical job's
//!    [`RunDigest`] with their own identity fields and `cache_hit: true`.
//! 3. **Memoization** — a suite-scoped [`ResultCache`] maps
//!    `(setup fingerprint, FaultKey) -> RunDigest`. Identical runs across
//!    applications, repeated campaigns, or whole suite re-executions are
//!    replayed from cache instead of re-executed. The fingerprint is cheap
//!    because a [`crate::engine::Session`] freezes one pristine world and
//!    every run starts from a copy-on-write snapshot of it: the frozen
//!    world is hashed once per campaign, not once per run.
//! 4. **Prioritization** (opt-in) — with
//!    [`crate::campaign::CampaignOptions::plan_budget`] set, remaining jobs
//!    are ordered by observed per-EAI-category verdict yield ([`YieldStats`])
//!    and only `budget` runs execute. The default (`None`) keeps exhaustive
//!    plan order, so all paper numbers are reproduced exactly.
//!
//! Cache hits never occupy executor worker slots: the scheduling layer
//! resolves them inline on the calling thread and only true misses are
//! handed to the pool.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use shim_sync::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use crate::inject::InjectionPlan;
use crate::model::EaiCategory;
use crate::perturb::{DirectFault, FaultPayload};
use crate::report::FaultRecord;
use crate::store::ResultStore;

/// 64-bit FNV-1a over a byte string — the workspace's content-address hash
/// (stable across runs and platforms, no external dependency).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The payload with its file-system target fields lexically cleaned
/// ([`epa_sandbox::path::clean`]: `//` and `.` collapsed), so two catalog
/// entries addressing the same object through cosmetically different
/// spellings canonicalize to one [`FaultKey`]. `..` components are
/// deliberately **kept**: the VFS resolves them physically (across
/// symlinked directories), so textual `..` resolution could conflate
/// faults that actually strike different inodes. Indirect faults are
/// returned untouched: they are literal value mutations and their planted
/// text must stay byte-exact.
///
/// Cleaning goes through the process-wide path interner
/// ([`epa_sandbox::intern`]): a campaign canonicalizes the same catalog
/// targets over and over, so after the first job per target the clean is
/// a table hit instead of a re-scan.
fn normalized_payload(payload: &FaultPayload) -> FaultPayload {
    let FaultPayload::Direct(df) = payload else {
        return payload.clone();
    };
    let n = |p: &str| epa_sandbox::intern::intern(p).as_str().to_string();
    let direct = match df {
        DirectFault::FileMakeExist { path } => DirectFault::FileMakeExist { path: n(path) },
        DirectFault::FileMakeMissing { path } => DirectFault::FileMakeMissing { path: n(path) },
        DirectFault::FileChownAttacker { path } => DirectFault::FileChownAttacker { path: n(path) },
        DirectFault::FileChownRoot { path } => DirectFault::FileChownRoot { path: n(path) },
        DirectFault::FilePermRestrict { path } => DirectFault::FilePermRestrict { path: n(path) },
        DirectFault::FilePermOpen { path } => DirectFault::FilePermOpen { path: n(path) },
        DirectFault::FilePermNoExec { path } => DirectFault::FilePermNoExec { path: n(path) },
        DirectFault::SymlinkSwap { path, target } => DirectFault::SymlinkSwap {
            path: n(path),
            target: n(target),
        },
        DirectFault::ModifyContent { path, content } => DirectFault::ModifyContent {
            path: n(path),
            content: content.clone(),
        },
        DirectFault::RenameAway { path } => DirectFault::RenameAway { path: n(path) },
        DirectFault::WorkingDirectory { dir } => DirectFault::WorkingDirectory { dir: n(dir) },
        other => other.clone(),
    };
    FaultPayload::Direct(direct)
}

/// The content-addressed canonical identity of one planned injection.
///
/// Two jobs with equal keys perform byte-identical perturbations at the
/// same point of the same execution, so they must produce byte-identical
/// outcomes; the planner executes one and replays the other.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultKey {
    repr: String,
    digest: u64,
}

impl FaultKey {
    /// Canonicalizes a planned injection.
    ///
    /// The key covers everything that determines execution: the targeted
    /// site, the struck occurrence (normalized to 0 for faults that are not
    /// [`crate::perturb::ConcreteFault::occurrence_sensitive`] — the hook
    /// strikes the first matching input for those regardless of the planned
    /// occurrence), the input semantics an indirect fault is aimed at, and
    /// the normalized executable payload. It deliberately excludes the
    /// fault id, description, and EAI category: those ride along on the
    /// record but cannot change what the run does.
    pub fn of(job: &InjectionPlan) -> FaultKey {
        let occurrence = if job.fault.occurrence_sensitive() {
            job.occurrence
        } else {
            0
        };
        let semantic = match job.fault.semantic {
            Some(s) => format!("{s:?}"),
            None => "-".to_string(),
        };
        let payload = serde_json::to_string(&normalized_payload(&job.fault.payload))
            .expect("fault payloads serialize infallibly");
        let repr = format!("{}#{occurrence}|{semantic}|{payload}", job.site);
        let digest = fnv1a(repr.as_bytes());
        FaultKey { repr, digest }
    }

    /// A key from raw canonical text — for concurrency test fixtures
    /// only (the model-check protocol fixtures and the panicking-claimant
    /// regression test), which exercise the claim protocol without
    /// dragging the whole payload machinery into the explored state
    /// space.
    pub fn synthetic(repr: &str) -> FaultKey {
        FaultKey {
            repr: repr.to_string(),
            digest: fnv1a(repr.as_bytes()),
        }
    }

    /// The canonical text the key hashes.
    pub fn repr(&self) -> &str {
        &self.repr
    }

    /// The FNV-1a content address of [`FaultKey::repr`].
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl fmt::Display for FaultKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.digest)
    }
}

/// The outcome fields of one executed run — everything a [`FaultRecord`]
/// carries except the plan-side identity (site, occurrence, fault id,
/// category, description), which each replayed record takes from its own
/// job.
///
/// Serializable: this is the payload of a persistent
/// [`crate::store::DiskStore`] entry, wrapped in the versioned,
/// checksummed wire format of [`crate::store::encode_entry`]. A field
/// change here is a wire-format change — bump
/// [`crate::store::STORE_FORMAT_VERSION`] with it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunDigest {
    /// Whether the fault fired during the run.
    pub applied: bool,
    /// The application's exit status.
    pub exit: Option<i32>,
    /// The panic payload, if the application crashed.
    pub crashed: Option<String>,
    /// Length of the run's audit log.
    pub audit_events: usize,
    /// The oracle's verdicts, with evidence chains.
    pub violations: Vec<epa_sandbox::policy::Verdict>,
}

impl RunDigest {
    /// Extracts the outcome of an executed record.
    pub fn of(record: &FaultRecord) -> RunDigest {
        RunDigest {
            applied: record.applied,
            exit: record.exit,
            crashed: record.crashed.clone(),
            audit_events: record.audit_events,
            violations: record.violations.clone(),
        }
    }

    /// Materializes a record for `job` from this digest: identity fields
    /// from the job, outcome fields from the digest, flagged as a replay.
    pub fn replay(&self, job: &InjectionPlan) -> FaultRecord {
        FaultRecord {
            site: job.site.to_string(),
            occurrence: job.occurrence,
            fault_id: job.fault.id.clone(),
            category: job.fault.category,
            description: job.fault.description.clone(),
            applied: self.applied,
            exit: self.exit,
            crashed: self.crashed.clone(),
            audit_events: self.audit_events,
            cache_hit: true,
            pruned: false,
            violations: self.violations.clone(),
        }
    }

    /// Materializes a record for `job` from this digest, flagged as
    /// **statically pruned**: the analysis layer proved the fault inert and
    /// synthesized this digest from the clean run, so no run (and no cache
    /// entry) backs it. Mirrors [`RunDigest::replay`], with `pruned` set
    /// instead of `cache_hit`.
    pub fn replay_pruned(&self, job: &InjectionPlan) -> FaultRecord {
        FaultRecord {
            site: job.site.to_string(),
            occurrence: job.occurrence,
            fault_id: job.fault.id.clone(),
            category: job.fault.category,
            description: job.fault.description.clone(),
            applied: self.applied,
            exit: self.exit,
            crashed: self.crashed.clone(),
            audit_events: self.audit_events,
            cache_hit: false,
            pruned: true,
            violations: self.violations.clone(),
        }
    }
}

/// Observable counters of a [`ResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Distinct `(scope, key)` entries in the in-memory hot tier.
    pub entries: usize,
    /// Lookups that found a digest (hot tier or backend).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// The subset of `hits` served by the persistent backend (and promoted
    /// into the hot tier) rather than by process-local memory.
    pub store_hits: u64,
}

/// One memo slot: either an in-flight claim or a completed digest.
#[derive(Debug, Clone)]
enum CacheSlot {
    /// Some thread holds a [`ClaimToken`] for this key and is executing the
    /// run right now; concurrent claimants block in [`ResultCache::begin`]
    /// until the slot turns [`CacheSlot::Ready`] (or the claim is
    /// abandoned).
    Pending,
    /// The run completed with this digest.
    Ready(RunDigest),
}

#[derive(Default)]
struct CacheInner {
    /// Scope → canonical key text → slot. Two levels so lookups index by
    /// `&str` without cloning the (payload-carrying) key text; the text is
    /// only cloned on an actual insertion.
    map: BTreeMap<u64, BTreeMap<String, CacheSlot>>,
    hits: u64,
    misses: u64,
    store_hits: u64,
}

#[derive(Default)]
struct CacheShared {
    state: Mutex<CacheInner>,
    /// Signalled whenever a slot changes state (fulfilled or abandoned),
    /// waking [`ResultCache::begin`] waiters.
    settled: Condvar,
    /// The persistent tier, when configured. Consulted outside the state
    /// lock (disk I/O must not stall waiters); hits are promoted into the
    /// in-memory map, so each `(scope, key)` pays for the disk at most
    /// once per process. `None` = memory-only, the pre-store behavior.
    backend: Option<Arc<dyn ResultStore>>,
}

impl CacheShared {
    /// Publishes `digest` into the in-memory map unless a completed digest
    /// already occupies the slot (an in-flight claim is overwritten: by
    /// the scope/key contract the claimant is computing this exact
    /// digest). Returns with waiters still asleep; callers notify.
    fn promote(state: &mut CacheInner, scope: u64, repr: &str, digest: &RunDigest) {
        let slot = state.map.entry(scope).or_default().entry(repr.to_string());
        match slot {
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if matches!(o.get(), CacheSlot::Pending) {
                    o.insert(CacheSlot::Ready(digest.clone()));
                }
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(CacheSlot::Ready(digest.clone()));
            }
        }
    }
}

/// A suite-scoped memo of executed runs: `(scope, FaultKey) -> RunDigest`.
///
/// `scope` is the campaign's setup fingerprint (application identity plus
/// the frozen world's content hash — see
/// [`crate::campaign::TestSetup::fingerprint`]), so a hit is only possible
/// when the *entire* run would be byte-identical. Entries are keyed by the
/// key's full canonical text, not its 64-bit digest, so hash collisions
/// cannot replay the wrong run.
///
/// The handle is cheaply cloneable (`Arc`-backed) and thread-safe; a
/// [`crate::engine::Suite`] installs one shared cache across all of its
/// campaigns, and callers can hold onto it across suite executions for
/// cross-run memoization. For cross-**process** memoization, layer the
/// cache over a persistent [`crate::store::ResultStore`] backend
/// ([`ResultCache::with_store`] / [`ResultCache::persistent`]): the
/// in-memory map stays the hot tier — lock-cheap, claim-coordinating —
/// and the backend serves first-touch hits and receives every completed
/// digest.
///
/// Beyond completed digests the cache tracks *in-flight claims*
/// ([`ResultCache::begin`]): when two threads — parallel campaign workers,
/// or two whole suites sharing one cache — race to execute the same
/// `(scope, key)`, exactly one wins the claim and executes; the others
/// block until the winner's digest lands and then replay it. No
/// `(fingerprint, FaultKey)` ever executes twice through claim-aware call
/// paths.
#[derive(Clone, Default)]
pub struct ResultCache {
    inner: Arc<CacheShared>,
}

/// The outcome of [`ResultCache::begin`]: either a digest to replay, or an
/// exclusive license to execute the run.
#[derive(Debug)]
pub enum Claim {
    /// An identical run already completed (possibly on another thread,
    /// which this call waited for): replay its digest.
    Replay(RunDigest),
    /// This caller owns the run. Execute it and call
    /// [`ClaimToken::fulfill`]; dropping the token unfulfilled (for
    /// example, during a panic) abandons the claim and wakes any waiters
    /// so one of them can claim instead.
    Execute(ClaimToken),
}

/// Exclusive license to execute one `(scope, key)` run; see [`Claim`].
pub struct ClaimToken {
    shared: Arc<CacheShared>,
    scope: u64,
    repr: String,
    fulfilled: bool,
}

impl fmt::Debug for ClaimToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClaimToken")
            .field("scope", &self.scope)
            .field("repr", &self.repr)
            .field("fulfilled", &self.fulfilled)
            .finish()
    }
}

impl ClaimToken {
    /// Publishes the executed run's digest, releasing every waiter blocked
    /// on this claim and writing through to the persistent backend.
    pub fn fulfill(mut self, digest: RunDigest) {
        {
            let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            state
                .map
                .entry(self.scope)
                .or_default()
                .insert(self.repr.clone(), CacheSlot::Ready(digest.clone()));
        }
        self.fulfilled = true;
        self.shared.settled.notify_all();
        if let Some(backend) = &self.shared.backend {
            backend.save(self.scope, &FaultKey::synthetic(&self.repr), &digest);
        }
    }
}

impl Drop for ClaimToken {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // Abandon: clear the pending slot (unless someone already published
        // a digest over it) and wake waiters so one of them re-claims.
        // Recover from poison rather than panicking inside a panic.
        let mut state = self.shared.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(slots) = state.map.get_mut(&self.scope) {
            if matches!(slots.get(self.repr.as_str()), Some(CacheSlot::Pending)) {
                slots.remove(self.repr.as_str());
            }
        }
        drop(state);
        self.shared.settled.notify_all();
    }
}

impl ResultCache {
    /// An empty, memory-only cache.
    pub fn new() -> ResultCache {
        ResultCache::default()
    }

    /// A cache layered over a [`ResultStore`] backend: the in-memory map
    /// stays the hot tier (and the claim-coordination layer — hot keys
    /// never touch the backend), while every completed digest is written
    /// through to `store` and backend hits are promoted on first touch.
    pub fn with_store(store: Arc<dyn ResultStore>) -> ResultCache {
        ResultCache {
            inner: Arc::new(CacheShared {
                backend: Some(store),
                ..CacheShared::default()
            }),
        }
    }

    /// A cache backed by a persistent [`crate::store::DiskStore`] at
    /// `dir` — the one-call setup for cross-process memoization.
    ///
    /// # Errors
    ///
    /// Any [`crate::store::DiskStore::open`] failure (filesystem errors, a
    /// foreign store version, a non-empty non-store directory).
    pub fn persistent(dir: impl AsRef<std::path::Path>) -> std::io::Result<ResultCache> {
        Ok(ResultCache::with_store(Arc::new(crate::store::DiskStore::open(dir)?)))
    }

    /// The persistent backend, when one is configured.
    pub fn store(&self) -> Option<&Arc<dyn ResultStore>> {
        self.inner.backend.as_ref()
    }

    /// The state lock, recovering from poison: a job that panics mid-run
    /// unwinds through cache operations, and the cache's invariants hold
    /// at every drop of the guard, so the racing suite must keep going —
    /// a poisoned mutex here would turn one bad job into a suite-wide
    /// liveness failure (every later `begin`/`lookup`/`fulfill` panicking
    /// in turn).
    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up the digest of an identical prior run, counting the outcome.
    ///
    /// Never blocks on other threads: an in-flight claim reads as a miss,
    /// so schedule construction (which runs on the suite's event-loop
    /// thread) stays non-blocking; the executing path resolves the race in
    /// [`ResultCache::begin`] instead. A vacant slot consults the
    /// persistent backend (outside the lock) and promotes a hit into the
    /// hot tier, so the disk is read at most once per `(scope, key)`.
    pub fn lookup(&self, scope: u64, key: &FaultKey) -> Option<RunDigest> {
        let mut inner = self.lock();
        match inner.map.get(&scope).and_then(|m| m.get(key.repr())) {
            Some(CacheSlot::Ready(d)) => {
                let d = d.clone();
                inner.hits += 1;
                Some(d)
            }
            Some(CacheSlot::Pending) => {
                inner.misses += 1;
                None
            }
            None => {
                let Some(backend) = &self.inner.backend else {
                    inner.misses += 1;
                    return None;
                };
                drop(inner);
                let fetched = backend.load(scope, key);
                let mut inner = self.lock();
                match fetched {
                    Some(d) => {
                        CacheShared::promote(&mut inner, scope, key.repr(), &d);
                        inner.hits += 1;
                        inner.store_hits += 1;
                        drop(inner);
                        // The promotion may have settled a claim raced in
                        // while the lock was down; wake its waiters.
                        self.inner.settled.notify_all();
                        Some(d)
                    }
                    None => {
                        inner.misses += 1;
                        None
                    }
                }
            }
        }
    }

    /// Claims the right to execute `(scope, key)`, or waits out a
    /// concurrent executor and replays its digest.
    ///
    /// Exactly one caller receives [`Claim::Execute`] per unsettled key;
    /// everyone else blocks until the claim settles. A completed digest
    /// returns [`Claim::Replay`] immediately. Callers must not hold the
    /// returned token across another `begin` on the same thread (the
    /// engine executes one job at a time per worker, so this cannot
    /// deadlock in practice).
    pub fn begin(&self, scope: u64, key: &FaultKey) -> Claim {
        let mut state = self.lock();
        // The backend is consulted at most once per call: on the first
        // vacant sighting, outside the lock. A second vacant sighting
        // (the entry was abandoned while we read the disk) claims
        // directly — the disk answer cannot have changed, only this
        // process writes it through.
        let mut backend_checked = false;
        loop {
            match state.map.get(&scope).and_then(|m| m.get(key.repr())) {
                Some(CacheSlot::Ready(d)) => {
                    let d = d.clone();
                    state.hits += 1;
                    return Claim::Replay(d);
                }
                Some(CacheSlot::Pending) => {
                    state = self.inner.settled.wait(state).unwrap_or_else(PoisonError::into_inner);
                }
                None => {
                    if !backend_checked {
                        if let Some(backend) = &self.inner.backend {
                            drop(state);
                            let fetched = backend.load(scope, key);
                            backend_checked = true;
                            state = self.lock();
                            if let Some(d) = fetched {
                                CacheShared::promote(&mut state, scope, key.repr(), &d);
                                state.hits += 1;
                                state.store_hits += 1;
                                drop(state);
                                self.inner.settled.notify_all();
                                return Claim::Replay(d);
                            }
                            // Re-match: the slot may have changed while
                            // the lock was down.
                            continue;
                        }
                    }
                    state
                        .map
                        .entry(scope)
                        .or_default()
                        .insert(key.repr().to_string(), CacheSlot::Pending);
                    state.misses += 1;
                    return Claim::Execute(ClaimToken {
                        shared: Arc::clone(&self.inner),
                        scope,
                        repr: key.repr().to_string(),
                        fulfilled: false,
                    });
                }
            }
        }
    }

    /// Stores the digest of an executed run, settling any in-flight claim
    /// for the same key and writing through to the persistent backend.
    pub fn insert(&self, scope: u64, key: &FaultKey, digest: RunDigest) {
        {
            let mut inner = self.lock();
            inner
                .map
                .entry(scope)
                .or_default()
                .insert(key.repr.clone(), CacheSlot::Ready(digest.clone()));
        }
        self.inner.settled.notify_all();
        if let Some(backend) = &self.inner.backend {
            backend.save(scope, key, &digest);
        }
    }

    /// Current counters. `entries` counts the in-memory hot tier's
    /// completed digests only — not in-flight claims, and not backend
    /// entries that were never touched this process.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner
                .map
                .values()
                .flat_map(BTreeMap::values)
                .filter(|slot| matches!(slot, CacheSlot::Ready(_)))
                .count(),
            hits: inner.hits,
            misses: inner.misses,
            store_hits: inner.store_hits,
        }
    }
}

impl fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("ResultCache")
            .field("entries", &stats.entries)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("store_hits", &stats.store_hits)
            .field("backend", &self.inner.backend.as_ref().map_or("none", |b| b.kind()))
            .finish()
    }
}

/// One plan's jobs after canonicalization: who executes, who replays.
///
/// Indices throughout refer to positions in the job list the schedule was
/// built from (plan order).
#[derive(Debug)]
pub struct Schedule {
    keys: Vec<FaultKey>,
    canonical: Vec<usize>,
    aliases: BTreeMap<usize, Vec<usize>>,
    /// Canonical jobs resolved from the [`ResultCache`] at schedule time,
    /// with their digests — these (and their aliases) replay inline and
    /// never reach the executor.
    pub resolved: Vec<(usize, RunDigest)>,
    /// Canonical jobs the static analysis proved inert at schedule time,
    /// with their synthesized clean-run digests — these (and their aliases)
    /// replay inline as `pruned` records and never reach the executor or
    /// the cache.
    pub pruned: Vec<(usize, RunDigest)>,
    /// Canonical jobs that must execute, in plan order.
    pub pending: Vec<usize>,
}

/// A static pre-pruning oracle for [`Schedule::build`]: `Some(digest)`
/// means the job is provably inert and `digest` is the synthesized outcome
/// to replay; `None` means the job must execute. Must be content-
/// deterministic per job (equal jobs ⇒ equal answers) so canonicalization
/// on or off classifies identically.
pub type PruneFn<'a> = &'a dyn Fn(&InjectionPlan) -> Option<RunDigest>;

impl Schedule {
    /// Canonicalizes `jobs` and splits them into statically pruned replays,
    /// cache-resolved replays, and pending executions.
    ///
    /// Per canonical job, `prune` is consulted **before** the cache: a
    /// provably inert job costs nothing and must not populate (or consume)
    /// cache entries. With `dedup` off every job is its own canonical (no
    /// aliasing); the cache, when given, is still consulted per job. With
    /// no dedup, no cache, and no pruner this degenerates to the exhaustive
    /// plan: every job pending, in plan order.
    pub fn build(
        jobs: &[InjectionPlan],
        scope: u64,
        cache: Option<&ResultCache>,
        dedup: bool,
        prune: Option<PruneFn<'_>>,
    ) -> Schedule {
        let keys: Vec<FaultKey> = jobs.iter().map(FaultKey::of).collect();
        let mut first_of: BTreeMap<&str, usize> = BTreeMap::new();
        let mut canonical = Vec::with_capacity(jobs.len());
        let mut aliases: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, key) in keys.iter().enumerate() {
            let canon = if dedup {
                *first_of.entry(key.repr()).or_insert(i)
            } else {
                i
            };
            canonical.push(canon);
            if canon != i {
                aliases.entry(canon).or_default().push(i);
            }
        }
        let mut resolved = Vec::new();
        let mut pruned = Vec::new();
        let mut pending = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if canonical[i] != i {
                continue;
            }
            if let Some(digest) = prune.and_then(|p| p(&jobs[i])) {
                pruned.push((i, digest));
                continue;
            }
            match cache.and_then(|c| c.lookup(scope, key)) {
                Some(digest) => resolved.push((i, digest)),
                None => pending.push(i),
            }
        }
        Schedule {
            keys,
            canonical,
            aliases,
            resolved,
            pruned,
            pending,
        }
    }

    /// The canonical key of job `idx`.
    pub fn key(&self, idx: usize) -> &FaultKey {
        &self.keys[idx]
    }

    /// The canonical job index job `idx` collapsed onto (itself when it is
    /// the canonical).
    pub fn canonical_of(&self, idx: usize) -> usize {
        self.canonical[idx]
    }

    /// The later plan positions that replay canonical job `idx`.
    pub fn aliases_of(&self, idx: usize) -> &[usize] {
        self.aliases.get(&idx).map_or(&[], Vec::as_slice)
    }

    /// Total jobs the schedule covers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the schedule covers no jobs.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// Per-EAI-category verdict-yield statistics driving budgeted
/// prioritization.
///
/// Every observed record updates its category's `(runs, violated)` pair;
/// [`YieldStats::pick`] selects the remaining job whose category currently
/// scores highest under a Laplace-smoothed yield estimate
/// `(violated + 1) / (runs + 2)`, breaking ties toward the earliest plan
/// position. Unobserved categories score 0.5 — optimistic enough to get
/// sampled, pessimistic enough that a productive category dominates.
#[derive(Debug, Clone, Default)]
pub struct YieldStats {
    by_category: BTreeMap<EaiCategory, (usize, usize)>,
}

impl YieldStats {
    /// An empty observer.
    pub fn new() -> YieldStats {
        YieldStats::default()
    }

    /// Folds one record (executed or replayed) into the statistics.
    pub fn observe(&mut self, category: EaiCategory, violated: bool) {
        let e = self.by_category.entry(category).or_insert((0, 0));
        e.0 += 1;
        if violated {
            e.1 += 1;
        }
    }

    /// The current yield score of a category.
    pub fn score(&self, category: EaiCategory) -> f64 {
        let (runs, violated) = self.by_category.get(&category).copied().unwrap_or((0, 0));
        (violated + 1) as f64 / (runs + 2) as f64
    }

    /// Picks the position (into `remaining`) of the next job to run:
    /// highest category score, ties to the lowest plan index.
    /// Deterministic for a given observation history.
    pub fn pick(&self, remaining: &[usize], jobs: &[InjectionPlan]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::MIN;
        for (pos, &idx) in remaining.iter().enumerate() {
            let s = self.score(jobs[idx].fault.category);
            if s > best_score {
                best = pos;
                best_score = s;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::IndirectKind;
    use crate::perturb::{ConcreteFault, IndirectFault};
    use epa_sandbox::trace::{InputSemantic, SiteId};

    fn direct_job(id: &str, site: &str, occurrence: usize, path: &str) -> InjectionPlan {
        InjectionPlan {
            site: SiteId::new(site),
            occurrence,
            fault: ConcreteFault {
                id: id.to_string(),
                category: EaiCategory::Other,
                semantic: None,
                description: format!("make {path} exist"),
                payload: FaultPayload::Direct(DirectFault::FileMakeExist { path: path.to_string() }),
            },
        }
    }

    fn indirect_job(id: &str, site: &str, occurrence: usize) -> InjectionPlan {
        InjectionPlan {
            site: SiteId::new(site),
            occurrence,
            fault: ConcreteFault {
                id: id.to_string(),
                category: EaiCategory::Indirect(IndirectKind::UserInput),
                semantic: Some(InputSemantic::UserFileName),
                description: "lengthen".to_string(),
                payload: FaultPayload::Indirect(IndirectFault::Lengthen { by: 64 }),
            },
        }
    }

    #[test]
    fn equivalent_payloads_share_a_key_distinct_ids_do_not_matter() {
        let a = direct_job("direct:fs:exist@/tmp/f", "s", 0, "/tmp/f");
        let b = direct_job("some:other:id", "s", 0, "/tmp//./f");
        assert_eq!(FaultKey::of(&a), FaultKey::of(&b));
        let c = direct_job("direct:fs:exist@/tmp/g", "s", 0, "/tmp/g");
        assert_ne!(FaultKey::of(&a), FaultKey::of(&c));
        let d = direct_job("direct:fs:exist@/tmp/f", "other-site", 0, "/tmp/f");
        assert_ne!(FaultKey::of(&a), FaultKey::of(&d), "the struck site changes the run");
    }

    #[test]
    fn dotdot_targets_never_dedup_lexically() {
        // The VFS resolves `..` physically (across symlinked parents), so
        // `/var/run/../f` and `/var/f` may be different inodes — their
        // faults must keep distinct keys.
        let via_parent = direct_job("x", "s", 0, "/var/run/../f");
        let direct = direct_job("y", "s", 0, "/var/f");
        assert_ne!(FaultKey::of(&via_parent), FaultKey::of(&direct));
    }

    #[test]
    fn occurrence_canonicalizes_only_for_semantics_addressed_faults() {
        // Direct faults are occurrence-sensitive: later hits are distinct.
        let d0 = direct_job("x", "s", 0, "/tmp/f");
        let d1 = direct_job("x", "s", 1, "/tmp/f");
        assert_ne!(FaultKey::of(&d0), FaultKey::of(&d1));
        // Semantics-addressed indirect faults strike the first matching
        // input regardless of the planned occurrence: the keys collapse.
        let i0 = indirect_job("y", "s", 0);
        let i1 = indirect_job("y", "s", 1);
        assert_eq!(FaultKey::of(&i0), FaultKey::of(&i1));
    }

    #[test]
    fn schedule_dedups_within_a_plan() {
        let jobs = vec![
            direct_job("a", "s", 0, "/tmp/f"),
            direct_job("b", "s", 0, "/tmp//f"),
            direct_job("c", "s", 0, "/tmp/g"),
        ];
        let schedule = Schedule::build(&jobs, 7, None, true, None);
        assert_eq!(schedule.pending, vec![0, 2]);
        assert_eq!(schedule.canonical_of(1), 0);
        assert_eq!(schedule.aliases_of(0), &[1]);
        assert!(schedule.resolved.is_empty());
        assert_eq!(schedule.len(), 3);
        // With dedup off every job stands alone.
        let exhaustive = Schedule::build(&jobs, 7, None, false, None);
        assert_eq!(exhaustive.pending, vec![0, 1, 2]);
        assert!(exhaustive.aliases_of(0).is_empty());
    }

    #[test]
    fn cache_resolves_across_schedules_and_scopes_isolate() {
        let jobs = vec![direct_job("a", "s", 0, "/tmp/f")];
        let cache = ResultCache::new();
        let first = Schedule::build(&jobs, 1, Some(&cache), true, None);
        assert_eq!(first.pending, vec![0]);
        let digest = RunDigest {
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 3,
            violations: Vec::new(),
        };
        cache.insert(1, first.key(0), digest.clone());
        // Same scope: replayed. Different scope (another app/world): miss.
        let again = Schedule::build(&jobs, 1, Some(&cache), true, None);
        assert!(again.pending.is_empty());
        assert_eq!(again.resolved.len(), 1);
        assert_eq!(again.resolved[0].1, digest);
        let other = Schedule::build(&jobs, 2, Some(&cache), true, None);
        assert_eq!(other.pending, vec![0]);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert!(stats.hits >= 1 && stats.misses >= 2);
    }

    #[test]
    fn replayed_records_keep_their_own_identity() {
        let canon = direct_job("direct:fs:exist@/tmp/f", "s", 0, "/tmp/f");
        let alias = direct_job("another:pattern", "s", 0, "/tmp//f");
        let digest = RunDigest {
            applied: true,
            exit: Some(1),
            crashed: None,
            audit_events: 9,
            violations: Vec::new(),
        };
        let r = digest.replay(&alias);
        assert_eq!(r.fault_id, "another:pattern");
        assert_eq!(r.site, "s");
        assert!(r.cache_hit);
        assert_eq!(r.exit, Some(1));
        assert_eq!(r.audit_events, 9);
        let c = digest.replay(&canon);
        assert_eq!(c.fault_id, "direct:fs:exist@/tmp/f");
    }

    #[test]
    fn yield_stats_prioritize_productive_categories_deterministically() {
        let jobs = vec![
            indirect_job("i0", "s", 0),         // Indirect(UserInput)
            direct_job("d0", "s", 0, "/tmp/f"), // Other
            direct_job("d1", "s", 0, "/tmp/g"), // Other
        ];
        let mut stats = YieldStats::new();
        // Nothing observed: every category scores 0.5, ties to plan order.
        assert_eq!(stats.pick(&[0, 1, 2], &jobs), 0);
        // The Other category keeps violating: it wins.
        stats.observe(EaiCategory::Other, true);
        stats.observe(EaiCategory::Other, true);
        stats.observe(EaiCategory::Indirect(IndirectKind::UserInput), false);
        assert!(stats.score(EaiCategory::Other) > stats.score(EaiCategory::Indirect(IndirectKind::UserInput)));
        assert_eq!(stats.pick(&[0, 1, 2], &jobs), 1, "earliest job of the best category");
        // A dead category decays below an unobserved one.
        let mut cold = YieldStats::new();
        for _ in 0..8 {
            cold.observe(EaiCategory::Other, false);
        }
        assert!(cold.score(EaiCategory::Other) < 0.5);
    }

    #[test]
    fn claims_serialize_concurrent_executions_of_one_key() {
        // begin() hands out exactly one Execute; a concurrent begin blocks
        // until fulfill and replays the published digest.
        let job = direct_job("a", "s", 0, "/tmp/f");
        let key = FaultKey::of(&job);
        let cache = ResultCache::new();
        let Claim::Execute(token) = cache.begin(9, &key) else {
            panic!("first claim must execute");
        };
        let waiter = {
            let cache = cache.clone();
            let key = key.clone();
            shim_sync::thread::spawn(move || match cache.begin(9, &key) {
                Claim::Replay(d) => d,
                Claim::Execute(_) => panic!("claimed key must not re-execute"),
            })
        };
        // Give the waiter a moment to block, then publish.
        shim_sync::thread::sleep(std::time::Duration::from_millis(20));
        let digest = RunDigest {
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 1,
            violations: Vec::new(),
        };
        token.fulfill(digest.clone());
        assert_eq!(waiter.join().expect("waiter thread"), digest);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn abandoned_claims_wake_waiters_who_reclaim() {
        let job = direct_job("a", "s", 0, "/tmp/f");
        let key = FaultKey::of(&job);
        let cache = ResultCache::new();
        let token = match cache.begin(3, &key) {
            Claim::Execute(t) => t,
            Claim::Replay(_) => panic!("empty cache cannot replay"),
        };
        // Pending slots read as misses and are invisible to stats/lookup.
        assert_eq!(cache.lookup(3, &key), None);
        assert_eq!(cache.stats().entries, 0);
        drop(token); // abandon, as a panicking worker would
        match cache.begin(3, &key) {
            Claim::Execute(t) => t.fulfill(RunDigest {
                applied: false,
                exit: Some(0),
                crashed: None,
                audit_events: 0,
                violations: Vec::new(),
            }),
            Claim::Replay(_) => panic!("abandoned claim must be reclaimable"),
        }
        assert!(matches!(cache.begin(3, &key), Claim::Replay(_)));
    }

    #[test]
    fn panicking_claim_holder_releases_blocked_waiters() {
        // Liveness regression: a claim holder that panics mid-run (its
        // unwinding drops the token) must wake a waiter already blocked in
        // begin() on another thread and hand it the claim — and the panic
        // must not poison the protocol for later callers.
        let job = direct_job("a", "s", 0, "/tmp/f");
        let key = FaultKey::of(&job);
        let cache = ResultCache::new();
        let Claim::Execute(token) = cache.begin(5, &key) else {
            panic!("first claim must execute");
        };
        let waiter = {
            let cache = cache.clone();
            let key = key.clone();
            shim_sync::thread::spawn(move || match cache.begin(5, &key) {
                Claim::Execute(t) => {
                    t.fulfill(RunDigest {
                        applied: true,
                        exit: Some(0),
                        crashed: None,
                        audit_events: 2,
                        violations: Vec::new(),
                    });
                }
                Claim::Replay(_) => panic!("nothing was published; waiter must reclaim"),
            })
        };
        shim_sync::thread::sleep(std::time::Duration::from_millis(20));
        let holder = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _token = token;
            panic!("deliberate mid-run panic");
        }));
        assert!(holder.is_err());
        waiter.join().expect("waiter completes after the holder panics");
        // The waiter's digest landed; the cache still works.
        assert!(matches!(cache.begin(5, &key), Claim::Replay(_)));
    }

    #[test]
    fn a_backend_serves_first_touch_hits_and_receives_write_through() {
        use crate::store::{MemoryStore, ResultStore};
        let job = direct_job("a", "s", 0, "/tmp/f");
        let key = FaultKey::of(&job);
        let digest = RunDigest {
            applied: true,
            exit: Some(0),
            crashed: None,
            audit_events: 4,
            violations: Vec::new(),
        };
        // Pre-populate the backend as a previous process would have.
        let store = Arc::new(MemoryStore::new());
        store.save(11, &key, &digest);
        let cache = ResultCache::with_store(store.clone());
        // First touch: served from the backend, promoted, counted.
        assert_eq!(cache.lookup(11, &key), Some(digest.clone()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.store_hits, stats.entries), (1, 1, 1));
        // Second touch: hot tier only; store_hits does not move.
        assert_eq!(cache.lookup(11, &key), Some(digest.clone()));
        assert_eq!(cache.stats().store_hits, 1);
        // begin() replays from the backend instead of claiming.
        let other = direct_job("b", "s", 0, "/tmp/g");
        let other_key = FaultKey::of(&other);
        store.save(11, &other_key, &digest);
        assert!(matches!(cache.begin(11, &other_key), Claim::Replay(_)));
        // A fulfilled claim writes through to the backend.
        let fresh = direct_job("c", "s", 0, "/tmp/h");
        let fresh_key = FaultKey::of(&fresh);
        let Claim::Execute(token) = cache.begin(11, &fresh_key) else {
            panic!("backend miss must hand out the claim");
        };
        token.fulfill(digest.clone());
        assert_eq!(store.load(11, &fresh_key), Some(digest.clone()));
        // insert() writes through too.
        let ins = direct_job("d", "s", 0, "/tmp/i");
        let ins_key = FaultKey::of(&ins);
        cache.insert(11, &ins_key, digest.clone());
        assert_eq!(store.load(11, &ins_key), Some(digest));
    }

    #[test]
    fn a_fresh_cache_over_a_shared_backend_replays_cross_process_style() {
        use crate::store::MemoryStore;
        let job = direct_job("a", "s", 0, "/tmp/f");
        let key = FaultKey::of(&job);
        let digest = RunDigest {
            applied: true,
            exit: Some(1),
            crashed: None,
            audit_events: 2,
            violations: Vec::new(),
        };
        let store = Arc::new(MemoryStore::new());
        // "Process one": execute and fulfill through a claim.
        {
            let cache = ResultCache::with_store(store.clone());
            let Claim::Execute(token) = cache.begin(21, &key) else {
                panic!("cold backend must hand out the claim");
            };
            token.fulfill(digest.clone());
        }
        // "Process two": a brand-new cache, same backend — pure replay.
        let cache = ResultCache::with_store(store);
        assert!(matches!(cache.begin(21, &key), Claim::Replay(d) if d == digest));
        assert_eq!(cache.stats().store_hits, 1);
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned so cache keys stay comparable across runs and platforms.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
