//! The security-policy oracle: a pluggable, evidence-carrying detector
//! pipeline.
//!
//! The paper's methodology needs, at step 8, a decision procedure for
//! "was the security policy violated?". This module provides it as an open
//! pipeline over the [`crate::audit::AuditLog`]:
//!
//! * a [`Detector`] is one named oracle unit — it observes audit events as
//!   they are recorded and, when the run ends, reports [`Verdict`]s;
//! * an [`OracleSet`] composes detectors; [`OracleSet::standard`] holds the
//!   eight rule families the paper's case studies exercise (integrity,
//!   confidentiality, privilege/trust, and memory safety — see
//!   [`detectors`]), and scenarios extend the set with serializable
//!   [`invariant::InvariantSpec`]s;
//! * a [`Verdict`] wraps the [`Violation`] with the detector that produced
//!   it and an [`Evidence`] chain: the implicated audit-event indices plus
//!   their `describe()` snapshots, captured at observation time.
//!
//! Detectors evaluate **incrementally**: campaign code attaches an
//! `OracleSet` to the run's audit log
//! ([`crate::audit::AuditLog::attach_oracle`]), every
//! [`crate::audit::AuditLog::push`] streams the event to the set, and the
//! verdict list is ready the moment the run ends — no post-hoc re-scan of
//! the full log per rule family. [`PolicyEngine::evaluate`] remains as a
//! deprecated batch shim over the standard set.
//!
//! The rules are deliberately written so that a **clean (unperturbed) run of
//! a well-configured world produces zero violations**; campaign code asserts
//! this before injecting any fault, so every reported violation is
//! attributable to the injected perturbation.

pub mod detectors;
pub mod invariant;

use std::fmt;
use std::ops::Deref;

use serde::{Deserialize, Serialize};

use crate::audit::{AuditEvent, AuditLog};

pub use detectors::{
    CustomDetector, DisclosureDetector, IntegrityDeleteDetector, IntegrityWriteDetector, MemoryCorruptionDetector,
    SpoofedActionDetector, TaintedPrivilegedOpDetector, UntrustedExecDetector,
};
pub use invariant::InvariantSpec;

/// The policy family a violation falls into.
///
/// `#[non_exhaustive]`: the oracle pipeline is open for extension, so new
/// policy families may appear; downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ViolationKind {
    /// A privileged process modified an object its invoker could not write.
    IntegrityWrite,
    /// A privileged process deleted a protected/critical object or one the
    /// invoker could not remove.
    IntegrityDelete,
    /// Secret bytes the invoker may not read reached an invoker-visible sink.
    Disclosure,
    /// A privileged process executed an attacker-controllable program.
    UntrustedExec,
    /// A privileged operation's target was named by untrusted input.
    TaintedPrivilegedOp,
    /// An action was driven by a message whose origin was spoofed.
    SpoofedAction,
    /// A fixed-size buffer was overrun by an unchecked copy.
    MemoryCorruption,
    /// A scenario-declared invariant failed.
    Custom,
}

impl ViolationKind {
    /// Stable short name (`"integrity-write"`, ...), the `Display` text.
    pub fn as_str(&self) -> &'static str {
        match self {
            ViolationKind::IntegrityWrite => "integrity-write",
            ViolationKind::IntegrityDelete => "integrity-delete",
            ViolationKind::Disclosure => "disclosure",
            ViolationKind::UntrustedExec => "untrusted-exec",
            ViolationKind::TaintedPrivilegedOp => "tainted-privileged-op",
            ViolationKind::SpoofedAction => "spoofed-action",
            ViolationKind::MemoryCorruption => "memory-corruption",
            ViolationKind::Custom => "custom",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A detected security-policy violation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Violation {
    /// The policy family.
    pub kind: ViolationKind,
    /// The rule that fired, e.g. `"R1-integrity-write"`.
    pub rule: String,
    /// Human-readable account of what happened.
    pub description: String,
    /// Index of the triggering event in the audit log.
    pub event_index: usize,
}

impl Violation {
    /// Builds a violation (the struct is `#[non_exhaustive]`, so downstream
    /// crates construct through this).
    pub fn new(
        kind: ViolationKind,
        rule: impl Into<String>,
        description: impl Into<String>,
        event_index: usize,
    ) -> Self {
        Violation {
            kind,
            rule: rule.into(),
            description: description.into(),
            event_index,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} ({})", self.kind, self.description, self.rule)
    }
}

/// One implicated audit event: its index in the run's log plus the
/// `describe()` snapshot captured when the detector observed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvidenceItem {
    /// Index of the event in the audit log.
    pub index: usize,
    /// The event's `describe()` text at observation time.
    pub summary: String,
}

/// The serializable evidence chain attached to a [`Verdict`]: which audit
/// events prove the violation, in implication order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    /// The implicated events, in implication order.
    pub items: Vec<EvidenceItem>,
}

impl Evidence {
    /// An empty chain (finish-time verdicts with no triggering event).
    pub fn none() -> Self {
        Evidence::default()
    }

    /// A single-event chain, snapshotting the event's description.
    pub fn single(index: usize, event: &AuditEvent) -> Self {
        Evidence {
            items: vec![EvidenceItem {
                index,
                summary: event.describe(),
            }],
        }
    }

    /// Index of the first implicated event (`None` for an empty chain).
    pub fn first_index(&self) -> Option<usize> {
        self.items.first().map(|i| i.index)
    }

    /// Whether the chain implicates no event.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

impl fmt::Display for Evidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.items.as_slice() {
            [] => f.write_str("(no implicated events)"),
            items => {
                for (n, item) in items.iter().enumerate() {
                    if n > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "#{} {}", item.index, item.summary)?;
                }
                Ok(())
            }
        }
    }
}

/// A violation as reported by the detector pipeline: the [`Violation`]
/// itself, the detector unit that produced it, and the [`Evidence`] chain
/// linking it back to the audit events that prove it.
///
/// `Verdict` dereferences to its [`Violation`], so existing call sites keep
/// reading `verdict.kind`, `verdict.rule`, `verdict.description`.
///
/// `#[non_exhaustive]`: construct through [`Verdict::new`] /
/// [`Verdict::from_violation`]; future releases may attach more context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct Verdict {
    /// The violation.
    pub violation: Violation,
    /// Name of the detector unit that produced it.
    pub detector: String,
    /// The implicated audit events.
    pub evidence: Evidence,
}

impl Verdict {
    /// Builds a verdict (the struct is `#[non_exhaustive]`, so downstream
    /// crates construct through this).
    pub fn new(violation: Violation, detector: impl Into<String>, evidence: Evidence) -> Self {
        Verdict {
            violation,
            detector: detector.into(),
            evidence,
        }
    }

    /// Wraps a bare violation with a single-event evidence chain derived
    /// from its `event_index` (no snapshot available — the summary is the
    /// violation description). Meant for tests and migration code; the
    /// pipeline itself always snapshots real events.
    pub fn from_violation(violation: Violation) -> Self {
        let evidence = Evidence {
            items: vec![EvidenceItem {
                index: violation.event_index,
                summary: violation.description.clone(),
            }],
        };
        Verdict {
            detector: violation.kind.as_str().to_string(),
            violation,
            evidence,
        }
    }

    /// The sort key [`OracleSet::finish`] orders verdicts by: first
    /// implicated event (empty chains sort last), then policy family.
    fn sort_key(&self) -> (usize, ViolationKind, &str, usize, &str, &str) {
        (
            self.evidence.first_index().unwrap_or(usize::MAX),
            self.violation.kind,
            self.violation.rule.as_str(),
            self.violation.event_index,
            self.violation.description.as_str(),
            self.detector.as_str(),
        )
    }
}

impl Deref for Verdict {
    type Target = Violation;

    fn deref(&self) -> &Violation {
        &self.violation
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <- {}", self.violation, self.evidence)
    }
}

/// One pluggable oracle unit.
///
/// A detector is streamed every audit event as it is recorded
/// ([`Detector::observe`]) and reports its verdicts when the run ends
/// ([`Detector::finish`]). Implementations must be deterministic: the same
/// event stream yields the same verdicts. `Send + Sync` because worlds —
/// and therefore any subscribed oracle — cross executor threads.
pub trait Detector: Send + Sync {
    /// Stable unit name, recorded on every verdict this detector emits.
    fn name(&self) -> &'static str;

    /// Observes one audit event (called in log order, once per event).
    fn observe(&mut self, idx: usize, event: &AuditEvent);

    /// Drains the verdicts accumulated over the observed stream. Called
    /// once, after the last event.
    fn finish(&mut self) -> Vec<Verdict>;
}

/// A composable set of [`Detector`]s — the oracle an engine run evaluates
/// against.
///
/// The [`OracleSet::standard`] set reproduces the historical
/// [`PolicyEngine`] violations exactly in content and count (the order is
/// the pipeline's canonical (first-evidence-index, kind) sort, which can
/// differ from the old engine's rule-check order within one event);
/// scenarios extend it with [`invariant::InvariantSpec`] detectors or any
/// custom [`Detector`].
///
/// ```
/// use epa_sandbox::audit::{AuditEvent, AuditLog};
/// use epa_sandbox::cred::Credentials;
/// use epa_sandbox::policy::OracleSet;
///
/// let mut log = AuditLog::new();
/// log.attach_oracle(OracleSet::standard());
/// log.push(AuditEvent::MemoryCorruption {
///     buffer: "reqline".into(),
///     capacity: 64,
///     attempted: 5000,
///     by: Credentials::root(),
/// });
/// let verdicts = log.detach_oracle().expect("attached above").finish();
/// assert_eq!(verdicts.len(), 1);
/// assert_eq!(verdicts[0].evidence.first_index(), Some(0));
/// ```
pub struct OracleSet {
    detectors: Vec<Box<dyn Detector>>,
}

impl OracleSet {
    /// An empty set (useful for fully custom oracles).
    pub fn empty() -> Self {
        OracleSet { detectors: Vec::new() }
    }

    /// The standard eight-family set: integrity write/delete, disclosure,
    /// untrusted exec, tainted privileged ops, spoofed actions, memory
    /// corruption, and scenario-declared custom checks.
    pub fn standard() -> Self {
        OracleSet::empty()
            .with(Box::new(IntegrityWriteDetector::default()))
            .with(Box::new(IntegrityDeleteDetector::default()))
            .with(Box::new(DisclosureDetector::default()))
            .with(Box::new(UntrustedExecDetector::default()))
            .with(Box::new(TaintedPrivilegedOpDetector::default()))
            .with(Box::new(SpoofedActionDetector::default()))
            .with(Box::new(MemoryCorruptionDetector::default()))
            .with(Box::new(CustomDetector::default()))
    }

    /// Adds a detector (chainable).
    #[must_use]
    pub fn with(mut self, detector: Box<dyn Detector>) -> Self {
        self.detectors.push(detector);
        self
    }

    /// Adds a detector in place.
    pub fn register(&mut self, detector: Box<dyn Detector>) {
        self.detectors.push(detector);
    }

    /// Number of registered detectors.
    pub fn len(&self) -> usize {
        self.detectors.len()
    }

    /// Whether the set holds no detector.
    pub fn is_empty(&self) -> bool {
        self.detectors.is_empty()
    }

    /// Registered detector names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.detectors.iter().map(|d| d.name()).collect()
    }

    /// Streams one event to every detector.
    pub fn observe(&mut self, idx: usize, event: &AuditEvent) {
        for d in &mut self.detectors {
            d.observe(idx, event);
        }
    }

    /// Streams a contiguous batch of events (indices starting at
    /// `start_idx`) to every detector in one call — the per-syscall batch
    /// shape of [`crate::audit::AuditLog::push_batch`]. Equivalent to
    /// calling [`OracleSet::observe`] for each event in order.
    ///
    /// Events stay the outer loop: detectors are independent, so either
    /// nesting yields the same verdicts, but a detector-outer sweep
    /// re-reads the whole batch once per rule family — measurably slower
    /// than a single pass when a batch outgrows the cache (the
    /// `hotpath` bench drives a 50k-event slice through this path).
    pub fn observe_slice(&mut self, start_idx: usize, events: &[AuditEvent]) {
        for (off, event) in events.iter().enumerate() {
            for d in &mut self.detectors {
                d.observe(start_idx + off, event);
            }
        }
    }

    /// Streams a whole recorded log (the batch path; the incremental path
    /// attaches the set to the log instead, see
    /// [`crate::audit::AuditLog::attach_oracle`]).
    pub fn observe_log(&mut self, log: &AuditLog) {
        for (idx, event) in log.iter() {
            self.observe(idx, event);
        }
    }

    /// Collects every detector's verdicts into one deterministic list:
    /// sorted by first implicated evidence index, then policy family (then
    /// rule/description as tiebreakers), with exact duplicates removed — so
    /// parallel-executor reports stay byte-identical to sequential runs
    /// regardless of detector registration order.
    pub fn finish(&mut self) -> Vec<Verdict> {
        let mut out: Vec<Verdict> = self.detectors.iter_mut().flat_map(|d| d.finish()).collect();
        out.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        out.dedup();
        out
    }

    /// Batch convenience: streams `log` through the set and finishes.
    pub fn evaluate_log(mut self, log: &AuditLog) -> Vec<Verdict> {
        self.observe_log(log);
        self.finish()
    }
}

impl Default for OracleSet {
    fn default() -> Self {
        OracleSet::standard()
    }
}

impl fmt::Debug for OracleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OracleSet").field("detectors", &self.names()).finish()
    }
}

/// The retired monolithic oracle, kept as a thin shim over
/// [`OracleSet::standard`] so existing callers keep reproducing the paper's
/// numbers unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolicyEngine;

impl PolicyEngine {
    /// Creates the engine.
    pub fn new() -> Self {
        PolicyEngine
    }

    /// Evaluates the standard rule set against the log, returning the bare
    /// violations in the pipeline's deterministic order.
    #[deprecated(
        since = "0.4.0",
        note = "use `OracleSet::standard()` (incremental via `AuditLog::attach_oracle`, batch via `evaluate_log`) \
                to keep the evidence chains this shim discards"
    )]
    pub fn evaluate(&self, log: &AuditLog) -> Vec<Violation> {
        OracleSet::standard()
            .evaluate_log(log)
            .into_iter()
            .map(|v| v.violation)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{SinkKind, WriteInfo};
    use crate::cred::{Credentials, Gid, Uid};
    use crate::data::Label;
    use crate::fs::FileTag;
    use std::collections::BTreeSet;

    fn suid_cred() -> Credentials {
        Credentials::user(Uid(100), Gid(100)).with_euid(Uid::ROOT)
    }

    fn clean_write(by: Credentials) -> WriteInfo {
        WriteInfo {
            path: "/var/spool/x".into(),
            existed_before: false,
            owner_before: None,
            invoker_could_write: false,
            target_tags: BTreeSet::new(),
            parent_tags: BTreeSet::new(),
            invoker_could_write_parent: false,
            invoker_could_read_after: false,
            created_by_self: false,
            path_taint: BTreeSet::new(),
            data_labels: BTreeSet::new(),
            by,
        }
    }

    fn eval(log: &AuditLog) -> Vec<Verdict> {
        OracleSet::standard().evaluate_log(log)
    }

    #[test]
    fn fresh_spool_write_is_clean() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::FileWrite(clean_write(suid_cred())));
        assert!(eval(&log).is_empty());
    }

    #[test]
    fn overwriting_foreign_file_is_integrity_violation() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.path = "/etc/passwd".into();
        w.existed_before = true;
        w.owner_before = Some(Uid::ROOT);
        log.push(AuditEvent::FileWrite(w));
        let v = eval(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::IntegrityWrite);
        assert_eq!(v[0].detector, "integrity-write");
        assert_eq!(v[0].evidence.first_index(), Some(0));
        assert!(v[0].evidence.items[0].summary.contains("/etc/passwd"));
    }

    #[test]
    fn unelevated_process_may_overwrite_its_own_files() {
        let mut log = AuditLog::new();
        let mut w = clean_write(Credentials::user(Uid(100), Gid(100)));
        w.existed_before = true;
        w.invoker_could_write = true;
        log.push(AuditEvent::FileWrite(w));
        assert!(eval(&log).is_empty());
    }

    #[test]
    fn planting_into_protected_dir_is_violation() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.path = "/etc/cron.d/evil".into();
        w.parent_tags = [FileTag::Protected].into_iter().collect();
        log.push(AuditEvent::FileWrite(w));
        let v = eval(&log);
        assert_eq!(v[0].kind, ViolationKind::IntegrityWrite);
    }

    #[test]
    fn secret_to_stdout_is_disclosure() {
        let mut log = AuditLog::new();
        let labels: BTreeSet<Label> = [Label::Secret {
            path: "/etc/shadow".into(),
            invoker_may_read: false,
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::Emit {
            sink: SinkKind::Stdout,
            labels,
            by: suid_cred(),
        });
        let v = eval(&log);
        assert_eq!(v[0].kind, ViolationKind::Disclosure);
        assert_eq!(v[0].evidence.items[0].summary, "emit to stdout");
    }

    #[test]
    fn readable_secret_is_not_disclosure() {
        let mut log = AuditLog::new();
        let labels: BTreeSet<Label> = [Label::Secret {
            path: "/home/me/own".into(),
            invoker_may_read: true,
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::Emit {
            sink: SinkKind::Stdout,
            labels,
            by: suid_cred(),
        });
        assert!(eval(&log).is_empty());
    }

    #[test]
    fn tainted_delete_fires_for_privileged_process() {
        let mut log = AuditLog::new();
        let taint: BTreeSet<Label> = [Label::Untrusted {
            source: "registry:Fonts".into(),
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::FileDelete {
            path: "/winnt/system.ini".into(),
            owner: Uid::ROOT,
            tags: [FileTag::Critical].into_iter().collect(),
            path_taint: taint,
            invoker_could_delete: false,
            by: Credentials::root(),
        });
        let v = eval(&log);
        assert!(v.iter().any(|x| x.kind == ViolationKind::TaintedPrivilegedOp));
    }

    #[test]
    fn untrusted_exec_detected() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Exec {
            requested: "tar".into(),
            resolved: "/tmp/evil/tar".into(),
            owner: Uid(666),
            world_writable: false,
            dir_untrusted: true,
            path_taint: BTreeSet::new(),
            arg_labels: BTreeSet::new(),
            by: suid_cred(),
        });
        let v = eval(&log);
        assert_eq!(v[0].kind, ViolationKind::UntrustedExec);
    }

    #[test]
    fn root_owned_binary_exec_is_clean() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Exec {
            requested: "tar".into(),
            resolved: "/usr/bin/tar".into(),
            owner: Uid::ROOT,
            world_writable: false,
            dir_untrusted: false,
            path_taint: BTreeSet::new(),
            arg_labels: BTreeSet::new(),
            by: suid_cred(),
        });
        assert!(eval(&log).is_empty());
    }

    #[test]
    fn spoofed_write_detected() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.data_labels = [Label::Spoofed {
            claimed_from: "ta-host".into(),
            actual_from: "evil".into(),
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::FileWrite(w));
        let v = eval(&log);
        assert!(v.iter().any(|x| x.kind == ViolationKind::SpoofedAction));
    }

    #[test]
    fn custom_rule_fires_only_when_violated() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::Custom {
            rule: "auth-before-cmd".into(),
            violated: false,
            detail: String::new(),
        });
        log.push(AuditEvent::Custom {
            rule: "auth-before-cmd".into(),
            violated: true,
            detail: "cmd without auth".into(),
        });
        let v = eval(&log);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Custom);
        assert_eq!(v[0].event_index, 1);
        assert_eq!(v[0].evidence.first_index(), Some(1));
    }

    #[test]
    fn memory_corruption_always_fires() {
        let mut log = AuditLog::new();
        log.push(AuditEvent::MemoryCorruption {
            buffer: "reqline".into(),
            capacity: 64,
            attempted: 5000,
            by: Credentials::root(),
        });
        let v = eval(&log);
        assert_eq!(v[0].kind, ViolationKind::MemoryCorruption);
    }

    #[test]
    fn policy_engine_shim_matches_pipeline_violations() {
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.path = "/etc/passwd".into();
        w.existed_before = true;
        log.push(AuditEvent::FileWrite(w));
        log.push(AuditEvent::MemoryCorruption {
            buffer: "b".into(),
            capacity: 8,
            attempted: 64,
            by: Credentials::root(),
        });
        #[allow(deprecated)]
        let shim = PolicyEngine::new().evaluate(&log);
        let pipeline: Vec<Violation> = eval(&log).into_iter().map(|v| v.violation).collect();
        assert_eq!(shim, pipeline);
        assert_eq!(shim.len(), 2);
    }

    #[test]
    fn verdicts_are_sorted_by_first_evidence_index_then_kind() {
        // One event raising several families plus a later single-family
        // event: the order must be (index, kind), not detector registration.
        let mut log = AuditLog::new();
        let mut w = clean_write(suid_cred());
        w.path = "/etc/passwd".into();
        w.existed_before = true;
        w.invoker_could_read_after = true;
        w.path_taint = [Label::Untrusted { source: "argv".into() }].into_iter().collect();
        w.data_labels = [Label::Secret {
            path: "/etc/shadow".into(),
            invoker_may_read: false,
        }]
        .into_iter()
        .collect();
        log.push(AuditEvent::FileWrite(w));
        log.push(AuditEvent::MemoryCorruption {
            buffer: "b".into(),
            capacity: 8,
            attempted: 64,
            by: Credentials::root(),
        });
        let v = eval(&log);
        let kinds: Vec<ViolationKind> = v.iter().map(|x| x.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ViolationKind::IntegrityWrite,
                ViolationKind::Disclosure,
                ViolationKind::TaintedPrivilegedOp,
                ViolationKind::MemoryCorruption,
            ]
        );
        let keys: Vec<(Option<usize>, ViolationKind)> = v.iter().map(|x| (x.evidence.first_index(), x.kind)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn duplicate_verdicts_are_deduped() {
        struct Echo;
        impl Detector for Echo {
            fn name(&self) -> &'static str {
                "memory-corruption"
            }
            fn observe(&mut self, _idx: usize, _event: &AuditEvent) {}
            fn finish(&mut self) -> Vec<Verdict> {
                vec![Verdict::new(
                    Violation::new(ViolationKind::MemoryCorruption, "R4-memory-safety", "dup", 0),
                    "memory-corruption",
                    Evidence::none(),
                )]
            }
        }
        let mut set = OracleSet::empty().with(Box::new(Echo)).with(Box::new(Echo));
        let v = set.finish();
        assert_eq!(v.len(), 1, "identical verdicts from two units collapse to one");
    }

    #[test]
    fn incremental_attach_equals_batch_scan() {
        let mut incremental = AuditLog::new();
        incremental.attach_oracle(OracleSet::standard());
        let mut batch = AuditLog::new();
        for log in [&mut incremental, &mut batch] {
            let mut w = clean_write(suid_cred());
            w.path = "/etc/passwd".into();
            w.existed_before = true;
            log.push(AuditEvent::FileWrite(w));
            log.push(AuditEvent::Custom {
                rule: "r".into(),
                violated: true,
                detail: "d".into(),
            });
        }
        let via_attach = incremental.detach_oracle().expect("attached").finish();
        let via_batch = OracleSet::standard().evaluate_log(&batch);
        assert_eq!(via_attach, via_batch);
        assert_eq!(via_attach.len(), 2);
    }
}
