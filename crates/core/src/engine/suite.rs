//! Suites: many `(application, world)` pairs executed as one batch.
//!
//! A [`Suite`] registers applications with their [`WorldSpec`]s (or
//! pre-built [`Session`]s) and executes every campaign in one call, fanning
//! the campaigns out over `std::thread::scope` workers. Results stream out
//! as [`SuiteEvent`]s the moment they are produced — per-fault records
//! first, one finished report per application after — and aggregate into a
//! [`SuiteReport`] with cross-application coverage rollups, following the
//! suite-level adequacy view of Dass & Siami Namin ("Vulnerability Coverage
//! as an Adequacy Testing Criterion"): the unit of adequacy is the whole
//! scenario suite, not a single program.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::mpsc;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use epa_sandbox::app::Application;

use crate::coverage::{AdequacyPoint, Ratio};
use crate::engine::session::Session;
use crate::engine::spec::{SpecError, WorldSpec};
use crate::report::{CampaignReport, FaultRecord};

/// An application paired with its frozen session.
struct SuiteEntry {
    app: Arc<dyn Application + Send + Sync>,
    session: Session,
}

/// One streamed suite result.
#[derive(Debug, Clone)]
pub enum SuiteEvent {
    /// One injected run finished (streamed in completion order).
    Record {
        /// The application under test.
        app: String,
        /// The fault's outcome.
        record: FaultRecord,
    },
    /// One application's whole campaign finished.
    AppFinished {
        /// The application under test.
        app: String,
        /// Its full report.
        report: CampaignReport,
    },
}

/// A batch of `(application, world)` campaigns executed together.
#[derive(Default)]
pub struct Suite {
    entries: Vec<SuiteEntry>,
    sequential: bool,
}

impl Suite {
    /// An empty suite.
    pub fn new() -> Suite {
        Suite::default()
    }

    /// Registers an application with a declarative world.
    ///
    /// # Errors
    ///
    /// Any [`SpecError`] from materializing the spec.
    pub fn register(
        &mut self,
        app: impl Application + Send + 'static,
        spec: &WorldSpec,
    ) -> Result<&mut Suite, SpecError> {
        let session = Session::new(spec)?;
        Ok(self.register_session(app, session))
    }

    /// Registers an application with a pre-built session.
    pub fn register_session(&mut self, app: impl Application + Send + 'static, session: Session) -> &mut Suite {
        self.entries.push(SuiteEntry {
            app: Arc::new(app),
            session,
        });
        self
    }

    /// Number of registered campaigns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered application names, in registration order.
    pub fn apps(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.app.name()).collect()
    }

    /// Runs the campaigns one at a time on the calling thread instead of
    /// fanning out (deterministic event order; useful for debugging).
    #[must_use]
    pub fn sequential(mut self) -> Suite {
        self.sequential = true;
        self
    }

    /// Executes every registered campaign, discarding the event stream.
    pub fn execute(&self) -> SuiteReport {
        self.execute_with(&mut |_| {})
    }

    /// Executes every registered campaign, streaming each [`SuiteEvent`] to
    /// `on_event` as it is produced. Campaigns fan out over scoped worker
    /// threads (one per registration, unless [`Suite::sequential`]); the
    /// returned report is always in registration order.
    pub fn execute_with(&self, on_event: &mut dyn FnMut(SuiteEvent)) -> SuiteReport {
        if self.sequential {
            let mut reports = Vec::with_capacity(self.entries.len());
            for entry in &self.entries {
                let name = entry.app.name().to_string();
                let report = entry.session.execute_streaming(entry.app.as_ref(), &mut |r| {
                    on_event(SuiteEvent::Record {
                        app: name.clone(),
                        record: r.clone(),
                    });
                });
                on_event(SuiteEvent::AppFinished {
                    app: name,
                    report: report.clone(),
                });
                reports.push(report);
            }
            return SuiteReport { reports };
        }

        let mut indexed: Vec<(usize, CampaignReport)> = std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<SuiteEvent>();
            let (done_tx, done_rx) = mpsc::channel::<(usize, CampaignReport)>();
            for (i, entry) in self.entries.iter().enumerate() {
                let tx = tx.clone();
                let done_tx = done_tx.clone();
                scope.spawn(move || {
                    let name = entry.app.name().to_string();
                    let report = entry.session.execute_streaming(entry.app.as_ref(), &mut |r| {
                        let _ = tx.send(SuiteEvent::Record {
                            app: name.clone(),
                            record: r.clone(),
                        });
                    });
                    let _ = tx.send(SuiteEvent::AppFinished {
                        app: name,
                        report: report.clone(),
                    });
                    let _ = done_tx.send((i, report));
                });
            }
            drop(tx);
            drop(done_tx);
            // Drain the event stream on this thread so `on_event` needs no
            // Sync bound; workers only ever touch the channels.
            for event in rx {
                on_event(event);
            }
            done_rx.iter().collect()
        });
        indexed.sort_by_key(|(i, _)| *i);
        SuiteReport {
            reports: indexed.into_iter().map(|(_, r)| r).collect(),
        }
    }
}

/// The aggregated outcome of a suite run: per-application reports in
/// registration order plus cross-application rollups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteReport {
    /// One campaign report per registered application.
    pub reports: Vec<CampaignReport>,
}

impl SuiteReport {
    /// Looks up one application's report by name.
    pub fn get(&self, app: &str) -> Option<&CampaignReport> {
        self.reports.iter().find(|r| r.app == app)
    }

    /// Total faults injected across the suite.
    pub fn total_injected(&self) -> usize {
        self.reports.iter().map(CampaignReport::injected).sum()
    }

    /// Total violating runs across the suite.
    pub fn total_violated(&self) -> usize {
        self.reports.iter().map(CampaignReport::violated).sum()
    }

    /// Applications whose campaign surfaced at least one violation.
    pub fn vulnerable_apps(&self) -> Vec<&str> {
        self.reports
            .iter()
            .filter(|r| r.violated() > 0)
            .map(|r| r.app.as_str())
            .collect()
    }

    /// Suite-level fault coverage: tolerated / injected over every campaign.
    pub fn fault_coverage(&self) -> Ratio {
        let injected = self.total_injected();
        Ratio::new(injected - self.total_violated(), injected)
    }

    /// Suite-level interaction coverage: perturbed / perturbable sites over
    /// every campaign.
    pub fn interaction_coverage(&self) -> Ratio {
        Ratio::new(
            self.reports.iter().map(|r| r.perturbed_sites).sum(),
            self.reports.iter().map(|r| r.total_sites).sum(),
        )
    }

    /// The suite's aggregate adequacy point (cross-application rollup of the
    /// paper's Figure 2 metric).
    pub fn adequacy(&self) -> AdequacyPoint {
        AdequacyPoint::new(self.interaction_coverage().value(), self.fault_coverage().value())
    }

    /// Per-category `(injected, violated)` counts rolled up across every
    /// campaign.
    pub fn by_category(&self) -> BTreeMap<String, (usize, usize)> {
        let mut out: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for report in &self.reports {
            for (category, (injected, violated)) in report.by_category() {
                let e = out.entry(category).or_insert((0, 0));
                e.0 += injected;
                e.1 += violated;
            }
        }
        out
    }

    /// A human-readable multi-line summary.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "suite: {} applications   injected: {}   violations: {}",
            self.reports.len(),
            self.total_injected(),
            self.total_violated()
        );
        let _ = writeln!(
            s,
            "  interaction coverage: {}   fault coverage: {}",
            self.interaction_coverage(),
            self.fault_coverage()
        );
        let _ = writeln!(
            s,
            "  {:<16} {:>8} {:>10} {:>7}   coverage (interaction, fault)",
            "app", "injected", "violations", "score"
        );
        for r in &self.reports {
            let _ = writeln!(
                s,
                "  {:<16} {:>8} {:>10} {:>7.3}   ({}, {})",
                r.app,
                r.injected(),
                r.violated(),
                r.vulnerability_score(),
                r.interaction_coverage(),
                r.fault_coverage()
            );
        }
        let _ = writeln!(s, "  per-category rollup:");
        for (category, (injected, violated)) in self.by_category() {
            let _ = writeln!(s, "    {category:<28} {injected:>4} injected  {violated:>3} violations");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{EaiCategory, IndirectKind};

    fn record(violated: bool) -> FaultRecord {
        FaultRecord {
            site: "s".into(),
            occurrence: 0,
            fault_id: "f".into(),
            category: EaiCategory::Indirect(IndirectKind::UserInput),
            description: String::new(),
            applied: true,
            exit: Some(0),
            crashed: None,
            violations: if violated {
                vec![epa_sandbox::policy::Violation::new(
                    epa_sandbox::policy::ViolationKind::Disclosure,
                    "R2",
                    "leak",
                    0,
                )]
            } else {
                Vec::new()
            },
        }
    }

    fn report(app: &str, records: Vec<FaultRecord>) -> CampaignReport {
        CampaignReport {
            app: app.into(),
            total_sites: 4,
            perturbed_sites: 2,
            clean_violations: 0,
            records,
        }
    }

    #[test]
    fn rollups_aggregate_across_reports() {
        let suite = SuiteReport {
            reports: vec![
                report("a", vec![record(true), record(false)]),
                report("b", vec![record(false), record(false)]),
            ],
        };
        assert_eq!(suite.total_injected(), 4);
        assert_eq!(suite.total_violated(), 1);
        assert_eq!(suite.vulnerable_apps(), vec!["a"]);
        assert_eq!(suite.fault_coverage().value(), 0.75);
        assert_eq!(suite.interaction_coverage().value(), 0.5);
        let by_cat = suite.by_category();
        assert_eq!(by_cat.len(), 1);
        assert_eq!(by_cat.values().next(), Some(&(4usize, 1usize)));
        assert!(suite.get("b").is_some());
        assert!(suite.get("zzz").is_none());
        let text = suite.render_text();
        assert!(text.contains("suite: 2 applications"));
        assert!(text.contains("per-category rollup"));
    }
}
