//! Database entries: a vulnerability with its *mechanism evidence*.
//!
//! The paper classified 195 entries of the CERIAS vulnerability database by
//! reading each entry's analysis. Here every entry carries a structured
//! [`Mechanism`] (how the flaw works), and the classifier *derives* the EAI
//! category from that evidence — the tables are a computation over the
//! database, not stored labels.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Operating-system family an entry was reported against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsFamily {
    /// Any UNIX variant (SunOS, HP-UX, AIX, …).
    Unix,
    /// GNU/Linux distributions.
    Linux,
    /// Solaris specifically (heavily represented in 1990s advisories).
    Solaris,
    /// Windows NT.
    WindowsNt,
}

impl fmt::Display for OsFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OsFamily::Unix => "UNIX",
            OsFamily::Linux => "Linux",
            OsFamily::Solaris => "Solaris",
            OsFamily::WindowsNt => "Windows NT",
        };
        f.write_str(s)
    }
}

/// Where a faulty input entered the application (indirect-fault evidence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InputSource {
    /// Command-line argument.
    UserArg,
    /// Interactive/stdin input.
    UserStdin,
    /// An environment variable.
    EnvVariable,
    /// Content read from a file (configuration, spool, …).
    ConfigFile,
    /// A network message.
    NetworkMessage,
    /// A message from another local process.
    PeerProcess,
}

/// How the input defeated the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum InputFlaw {
    /// Length never checked against a fixed buffer.
    UncheckedLength,
    /// Path components (`..`, `/`, absolute) not validated.
    UnvalidatedPath,
    /// Shell metacharacters reached an interpreter.
    ShellMetachars,
    /// Structure/format confusion (delimiters, encodings).
    FormatConfusion,
}

/// Which environment attribute the application failed to handle
/// (direct-fault evidence; mirrors Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AttributeFault {
    /// File existence assumptions (pre-created spool/temp/lock files).
    FileExistence,
    /// Symbolic-link following.
    FileSymlink,
    /// Permission-bit assumptions.
    FilePermission,
    /// Ownership assumptions.
    FileOwnership,
    /// Content or name changed between uses (invariance/TOCTTOU).
    FileInvariance,
    /// Working-directory assumptions.
    WorkingDirectory,
    /// Network message authenticity.
    NetAuthenticity,
    /// Protocol-step handling.
    NetProtocol,
    /// Network service availability handling.
    NetAvailability,
    /// Trust in a network peer entity.
    NetTrust,
    /// Trust in a local peer process.
    ProcTrust,
}

/// Code faults with no environmental trigger ("others" in Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PlainFault {
    /// Off-by-one / bounds arithmetic.
    OffByOne,
    /// Outright typo or inverted condition.
    Typo,
    /// Race between internal threads/signals.
    InternalRace,
    /// Plain logic error.
    LogicError,
}

/// The mechanism evidence attached to an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// The database entry lacks enough analysis to classify.
    InsufficientInfo,
    /// The flaw is in the design, not the code.
    DesignError,
    /// The flaw is a mis-configuration, not the code.
    ConfigError,
    /// A code-level fault triggered by environment input.
    Input {
        /// Where the input came from.
        source: InputSource,
        /// How it defeated the program.
        flaw: InputFlaw,
    },
    /// A code-level fault triggered by an environment attribute.
    Attribute(AttributeFault),
    /// A code-level fault with no environmental trigger.
    Plain(PlainFault),
}

/// One database entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnEntry {
    /// Stable id within the database.
    pub id: u32,
    /// Advisory-style short name.
    pub name: String,
    /// Reported platform.
    pub os: OsFamily,
    /// Report year.
    pub year: u16,
    /// The mechanism evidence.
    pub mechanism: Mechanism,
}

impl fmt::Display for VulnEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:03} {} ({}, {})", self.id, self.name, self.os, self.year)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = VulnEntry {
            id: 7,
            name: "lpr spool symlink".into(),
            os: OsFamily::Unix,
            year: 1996,
            mechanism: Mechanism::Attribute(AttributeFault::FileSymlink),
        };
        let s = e.to_string();
        assert!(s.contains("#007") && s.contains("UNIX") && s.contains("1996"));
    }
}
