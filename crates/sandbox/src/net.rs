//! The network substrate: hosts, messages, DNS, services, and the
//! perturbation points Table 6 lists for the network entity.
//!
//! The model is intentionally message-oriented rather than stream-oriented:
//! the paper's network faults (message authenticity, protocol-step
//! omission/addition/reordering, socket sharing, service denial, entity
//! trust) are all properties of *messages and peers*, not of byte streams.
//! Each inbound port carries a queue of [`Message`]s, each stamped with a
//! claimed and an actual origin; perturbation helpers mutate the queues and
//! the service table in exactly the ways Table 6 describes.

use shim_sync::sync::Arc;
use std::collections::{BTreeMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::data::Data;
use crate::error::SysResult;
use crate::syserr;

/// A message as delivered to an application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// Origin the message claims (what naive code trusts).
    pub claimed_from: String,
    /// Where it actually came from (ground truth for the oracle).
    pub actual_from: String,
    /// Payload.
    pub data: Data,
}

impl Message {
    /// A genuine message whose claimed and actual origins agree.
    pub fn genuine(from: impl Into<String>, data: impl Into<Data>) -> Self {
        let from = from.into();
        Message {
            claimed_from: from.clone(),
            actual_from: from,
            data: data.into(),
        }
    }

    /// True when the claimed origin matches the actual origin.
    pub fn authentic(&self) -> bool {
        self.claimed_from == self.actual_from
    }
}

/// A network service another party offers (or this application listens on).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Service {
    /// Host offering the service.
    pub host: String,
    /// Whether the service currently answers (availability perturbation).
    pub available: bool,
    /// Whether the peer entity is trusted (entity-trust perturbation).
    pub trusted: bool,
}

/// The DNS, service, inbox and IPC tables of a [`Network`], grouped so that
/// world snapshots can share them copy-on-write.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct NetTables {
    /// DNS table: name → address text.
    dns: BTreeMap<String, String>,
    /// Services keyed by (host, port).
    services: BTreeMap<(String, u16), Service>,
    /// Inbound message queues keyed by local port.
    inboxes: BTreeMap<u16, VecDeque<Message>>,
    /// IPC message queues keyed by channel name (the "process" environment
    /// entity of Table 6).
    ipc: BTreeMap<String, VecDeque<Message>>,
    /// Trust state of IPC peers keyed by channel.
    ipc_trusted: BTreeMap<String, bool>,
    /// IPC channels whose peer service is down.
    ipc_down: BTreeMap<String, bool>,
    /// Ports whose socket is shared with another (attacker) process.
    shared_sockets: BTreeMap<u16, String>,
}

/// The simulated network attached to one sandbox world.
///
/// `clone` is a copy-on-write snapshot: the tables are shared until either
/// copy mutates them. Use [`Network::deep_clone`] for an eagerly
/// materialized copy.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    /// DNS, service, inbox and IPC tables, shared between snapshots.
    tables: Arc<NetTables>,
    /// Whether the resolver answers at all (service-availability fault on DNS).
    pub dns_available: bool,
    /// Record of everything sent, for assertions and the oracle.
    pub sent: Vec<(String, u16, Data)>,
}

impl Network {
    /// An empty network with a working resolver.
    pub fn new() -> Self {
        Network {
            dns_available: true,
            ..Default::default()
        }
    }

    /// The tables, unsharing them from any sibling snapshot first.
    fn tables_mut(&mut self) -> &mut NetTables {
        Arc::make_mut(&mut self.tables)
    }

    /// A fully materialized copy sharing no storage with `self`.
    pub fn deep_clone(&self) -> Network {
        Network {
            tables: Arc::new((*self.tables).clone()),
            dns_available: self.dns_available,
            sent: self.sent.clone(),
        }
    }

    /// Whether the tables are physically shared with `other` (copy-on-write
    /// introspection).
    pub fn shares_storage_with(&self, other: &Network) -> bool {
        Arc::ptr_eq(&self.tables, &other.tables)
    }

    // ---------------- DNS ----------------

    /// Installs a DNS entry.
    pub fn add_dns(&mut self, name: impl Into<String>, addr: impl Into<String>) {
        self.tables_mut().dns.insert(name.into(), addr.into());
    }

    /// Resolves a name.
    ///
    /// # Errors
    ///
    /// `EHOSTUNREACH` when the resolver is down or the name is unknown.
    pub fn resolve(&self, name: &str) -> SysResult<String> {
        if !self.dns_available {
            return Err(syserr!(Ehostunreach, "resolver unavailable for {name}"));
        }
        self.tables
            .dns
            .get(name)
            .cloned()
            .ok_or_else(|| syserr!(Ehostunreach, "unknown host {name}"))
    }

    /// Overwrites the address a name resolves to (DNS-reply perturbation).
    pub fn perturb_dns(&mut self, name: &str, addr: impl Into<String>) {
        self.tables_mut().dns.insert(name.to_string(), addr.into());
    }

    // ---------------- services ----------------

    /// Declares a service.
    pub fn add_service(&mut self, host: impl Into<String>, port: u16, trusted: bool) {
        let host = host.into();
        self.tables_mut().services.insert(
            (host.clone(), port),
            Service {
                host,
                available: true,
                trusted,
            },
        );
    }

    /// Looks up a service.
    pub fn service(&self, host: &str, port: u16) -> Option<&Service> {
        self.tables.services.get(&(host.to_string(), port))
    }

    /// Connects to a service.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED` when the service does not exist or is down.
    pub fn connect(&self, host: &str, port: u16) -> SysResult<&Service> {
        match self.tables.services.get(&(host.to_string(), port)) {
            Some(s) if s.available => Ok(s),
            Some(_) => Err(syserr!(Econnrefused, "{host}:{port} is down")),
            None => Err(syserr!(Econnrefused, "{host}:{port}")),
        }
    }

    /// Marks a service unavailable (service-availability perturbation).
    pub fn deny_service(&mut self, host: &str, port: u16) {
        if let Some(s) = self.tables_mut().services.get_mut(&(host.to_string(), port)) {
            s.available = false;
        }
    }

    /// Marks a peer entity untrusted (entity-trust perturbation).
    pub fn distrust_entity(&mut self, host: &str, port: u16) {
        if let Some(s) = self.tables_mut().services.get_mut(&(host.to_string(), port)) {
            s.trusted = false;
        }
    }

    // ---------------- inbound messages ----------------

    /// Queues an inbound message on a port.
    pub fn push_message(&mut self, port: u16, msg: Message) {
        self.tables_mut().inboxes.entry(port).or_default().push_back(msg);
    }

    /// Pops the next inbound message on a port, if any.
    pub fn pop_message(&mut self, port: u16) -> Option<Message> {
        self.tables_mut().inboxes.get_mut(&port).and_then(VecDeque::pop_front)
    }

    /// Number of queued messages on a port.
    pub fn queue_len(&self, port: u16) -> usize {
        self.tables.inboxes.get(&port).map_or(0, VecDeque::len)
    }

    /// Authenticity perturbation: the next message on `port` keeps its
    /// claimed origin but actually comes from `actual`.
    pub fn spoof_next(&mut self, port: u16, actual: impl Into<String>) {
        if let Some(q) = self.tables_mut().inboxes.get_mut(&port) {
            if let Some(m) = q.front_mut() {
                m.actual_from = actual.into();
            }
        }
    }

    /// Protocol perturbation: drops the `idx`-th queued step.
    pub fn omit_step(&mut self, port: u16, idx: usize) {
        if let Some(q) = self.tables_mut().inboxes.get_mut(&port) {
            if idx < q.len() {
                q.remove(idx);
            }
        }
    }

    /// Protocol perturbation: duplicates the `idx`-th queued step
    /// immediately after itself (an "extra step").
    pub fn duplicate_step(&mut self, port: u16, idx: usize) {
        if let Some(q) = self.tables_mut().inboxes.get_mut(&port) {
            if let Some(m) = q.get(idx).cloned() {
                q.insert(idx + 1, m);
            }
        }
    }

    /// Protocol perturbation: swaps two queued steps (reordering).
    pub fn swap_steps(&mut self, port: u16, a: usize, b: usize) {
        if let Some(q) = self.tables_mut().inboxes.get_mut(&port) {
            if a < q.len() && b < q.len() {
                q.swap(a, b);
            }
        }
    }

    /// Socket-sharing perturbation: another process now shares the socket.
    pub fn share_socket(&mut self, port: u16, with: impl Into<String>) {
        self.tables_mut().shared_sockets.insert(port, with.into());
    }

    /// Who, if anyone, shares the socket on `port`.
    pub fn socket_shared_with(&self, port: u16) -> Option<&str> {
        self.tables.shared_sockets.get(&port).map(String::as_str)
    }

    // ---------------- outbound ----------------

    /// Records an outbound message.
    pub fn send(&mut self, host: &str, port: u16, data: Data) {
        self.sent.push((host.to_string(), port, data));
    }

    // ---------------- IPC (process entity) ----------------

    /// Queues an IPC message on a named channel.
    pub fn push_ipc(&mut self, channel: impl Into<String>, msg: Message) {
        self.tables_mut().ipc.entry(channel.into()).or_default().push_back(msg);
    }

    /// Pops the next IPC message.
    ///
    /// # Errors
    ///
    /// `ECONNREFUSED` when the peer service was denied; `ENOMSG` when the
    /// queue is empty.
    pub fn pop_ipc(&mut self, channel: &str) -> SysResult<Message> {
        if self.tables.ipc_down.get(channel).copied().unwrap_or(false) {
            return Err(syserr!(Econnrefused, "ipc peer on {channel} is down"));
        }
        self.tables_mut()
            .ipc
            .get_mut(channel)
            .and_then(VecDeque::pop_front)
            .ok_or_else(|| syserr!(Enomsg, "ipc channel {channel} empty"))
    }

    /// Authenticity perturbation on an IPC channel.
    pub fn spoof_next_ipc(&mut self, channel: &str, actual: impl Into<String>) {
        if let Some(q) = self.tables_mut().ipc.get_mut(channel) {
            if let Some(m) = q.front_mut() {
                m.actual_from = actual.into();
            }
        }
    }

    /// Trust perturbation on an IPC peer.
    pub fn distrust_ipc(&mut self, channel: &str) {
        self.tables_mut().ipc_trusted.insert(channel.to_string(), false);
    }

    /// Whether an IPC peer is trusted (default true).
    pub fn ipc_trusted(&self, channel: &str) -> bool {
        self.tables.ipc_trusted.get(channel).copied().unwrap_or(true)
    }

    /// Availability perturbation on an IPC peer.
    pub fn deny_ipc(&mut self, channel: &str) {
        self.tables_mut().ipc_down.insert(channel.to_string(), true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_resolution_and_denial() {
        let mut n = Network::new();
        n.add_dns("trusted.edu", "10.0.0.5");
        assert_eq!(n.resolve("trusted.edu").unwrap(), "10.0.0.5");
        n.dns_available = false;
        assert!(n.resolve("trusted.edu").is_err());
        n.dns_available = true;
        assert!(n.resolve("unknown.example").is_err());
    }

    #[test]
    fn connect_and_deny() {
        let mut n = Network::new();
        n.add_service("server", 79, true);
        assert!(n.connect("server", 79).is_ok());
        n.deny_service("server", 79);
        assert!(n.connect("server", 79).is_err());
    }

    #[test]
    fn spoof_changes_actual_not_claimed() {
        let mut n = Network::new();
        n.push_message(79, Message::genuine("ta-host", "hello"));
        n.spoof_next(79, "evil-host");
        let m = n.pop_message(79).unwrap();
        assert_eq!(m.claimed_from, "ta-host");
        assert_eq!(m.actual_from, "evil-host");
        assert!(!m.authentic());
    }

    #[test]
    fn protocol_step_mutations() {
        let mut n = Network::new();
        for s in ["HELO", "AUTH", "CMD"] {
            n.push_message(99, Message::genuine("peer", s));
        }
        n.omit_step(99, 1); // drop AUTH
        assert_eq!(n.queue_len(99), 2);
        assert_eq!(n.pop_message(99).unwrap().data.text(), "HELO");
        assert_eq!(n.pop_message(99).unwrap().data.text(), "CMD");

        for s in ["HELO", "AUTH", "CMD"] {
            n.push_message(98, Message::genuine("peer", s));
        }
        n.swap_steps(98, 1, 2);
        assert_eq!(n.pop_message(98).unwrap().data.text(), "HELO");
        assert_eq!(n.pop_message(98).unwrap().data.text(), "CMD");

        for s in ["A", "B"] {
            n.push_message(97, Message::genuine("peer", s));
        }
        n.duplicate_step(97, 0);
        assert_eq!(n.queue_len(97), 3);
    }

    #[test]
    fn socket_sharing() {
        let mut n = Network::new();
        assert!(n.socket_shared_with(79).is_none());
        n.share_socket(79, "attacker-proc");
        assert_eq!(n.socket_shared_with(79), Some("attacker-proc"));
    }

    #[test]
    fn ipc_queue_trust_and_denial() {
        let mut n = Network::new();
        n.push_ipc("spooler", Message::genuine("printerd", "job 1"));
        assert!(n.ipc_trusted("spooler"));
        n.distrust_ipc("spooler");
        assert!(!n.ipc_trusted("spooler"));
        let m = n.pop_ipc("spooler").unwrap();
        assert_eq!(m.data.text(), "job 1");
        assert_eq!(n.pop_ipc("spooler").unwrap_err().errno, crate::error::Errno::Enomsg);
        n.deny_ipc("spooler");
        assert_eq!(
            n.pop_ipc("spooler").unwrap_err().errno,
            crate::error::Errno::Econnrefused
        );
    }

    #[test]
    fn sent_messages_are_recorded() {
        let mut n = Network::new();
        n.send("client", 1023, Data::from("reply"));
        assert_eq!(n.sent.len(), 1);
        assert_eq!(n.sent[0].0, "client");
    }
}
