//! World builders: the initial environments of the paper's case studies.
//!
//! Each builder returns a [`TestSetup`]: a pristine [`Os`] world plus spawn
//! parameters. Worlds are built god-mode, tagged for the oracle via
//! [`epa_core::perturb::tag_standard_targets`] plus scenario-specific tags,
//! and are deterministic — campaigns clone them per injected run.

use epa_core::campaign::TestSetup;
use epa_core::perturb::tag_standard_targets;
use epa_sandbox::cred::{Gid, Uid};
use epa_sandbox::fs::FileTag;
use epa_sandbox::mode::Mode;
use epa_sandbox::net::Message;
use epa_sandbox::os::{Os, ScenarioMeta};
use epa_sandbox::registry::RegAcl;

/// The teaching assistant's uid in the turnin world.
pub const TA_UID: Uid = Uid(1000);
/// The student/invoker uid used across UNIX worlds.
pub const STUDENT_UID: Uid = Uid(1001);
/// The attacker uid used across worlds.
pub const ATTACKER_UID: Uid = Uid(6666);

fn base_unix_os() -> Os {
    let mut os = Os::new();
    os.users.add("root", Uid::ROOT, Gid::ROOT, "/root");
    os.users
        .add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
    os.users
        .add("evil", os.scenario.attacker, os.scenario.attacker_gid, "/home/evil");
    let root = (Uid::ROOT, Gid::ROOT);
    os.fs
        .mkdir_p("/tmp", root.0, root.1, Mode::new(0o1777))
        .expect("world build");
    os.fs
        .mkdir_p("/etc/cron.d", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file(
            "/etc/passwd",
            "root:x:0:0:/root\nstudent:x:1001:100:/home/student\n",
            root.0,
            root.1,
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file(
            "/etc/shadow",
            "root:HASH0x7f:12000\nstudent:HASH0x11:12000\n",
            root.0,
            root.1,
            Mode::new(0o600),
        )
        .expect("world build");
    os.fs
        .put_file(
            "/etc/system.conf",
            "kernel.paranoid=1\n",
            root.0,
            root.1,
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .mkdir_p(
            "/home/student",
            os.scenario.invoker,
            os.scenario.invoker_gid,
            Mode::new(0o755),
        )
        .expect("world build");
    os.fs
        .mkdir_p(
            "/home/evil/bin",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o755),
        )
        .expect("world build");
    os
}

/// The `lpr` world of paper §3.4: SUID-root printer client, world-writable
/// spool protocol, an unprivileged student invoker.
pub fn lpr_world() -> TestSetup {
    let mut os = base_unix_os();
    let root = (Uid::ROOT, Gid::ROOT);
    os.fs
        .mkdir_p("/var/spool/lpd", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file(
            "/home/student/report.txt",
            "quarterly report\n",
            os.scenario.invoker,
            os.scenario.invoker_gid,
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file("/usr/bin/lpr", "", root.0, root.1, Mode::new(0o4755))
        .expect("world build");
    tag_standard_targets(&mut os);
    TestSetup::new(os)
        .program("/usr/bin/lpr")
        .args(["report.txt"])
        .cwd("/home/student")
}

/// The `turnin` world of paper §4.1: course account, protected submit tree,
/// a student invoker, and the attacker's prepared `tar` lookalike.
pub fn turnin_world() -> TestSetup {
    let mut os = base_unix_os();
    let root = (Uid::ROOT, Gid::ROOT);
    os.users.add("ta", TA_UID, Gid(1000), "/home/ta");
    os.fs
        .mkdir_p("/home/ta/submit", TA_UID, Gid(1000), Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file(
            "/home/ta/.login",
            "setenv SHELL /bin/csh\n",
            TA_UID,
            Gid(1000),
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file(
            "/home/ta/submit/Projlist",
            "proj1\nproj2\n",
            TA_UID,
            Gid(1000),
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file(
            "/usr/local/lib/turnin.cf",
            "cs390:ta:1000\ncs503:ta:1000\n",
            root.0,
            root.1,
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file("/usr/local/bin/tar", "#!tar", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file("/usr/local/bin/turnin", "", root.0, root.1, Mode::new(0o4755))
        .expect("world build");
    os.fs
        .put_file(
            "/home/student/hw1.c",
            "int main(){}\n",
            os.scenario.invoker,
            os.scenario.invoker_gid,
            Mode::new(0o644),
        )
        .expect("world build");
    // The attacker's prepared PATH payload.
    os.fs
        .put_file(
            "/home/evil/bin/tar",
            "#!evil-tar",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o755),
        )
        .expect("world build");
    tag_standard_targets(&mut os);
    // The TA's home is the victim's territory: planting files there on the
    // student's behalf is an integrity violation.
    os.fs.tag("/home/ta", FileTag::Protected).expect("world build");
    TestSetup::new(os)
        .program("/usr/local/bin/turnin")
        .args(["-c", "cs390", "-p", "proj1", "hw1.c"])
        .env("PATH", "/usr/local/bin:/usr/bin:/bin")
        .env("USER", "student")
        .cwd("/home/student")
}

/// Scenario metadata shared by the Windows NT worlds (§4.2).
fn nt_scenario(invoker: Uid) -> ScenarioMeta {
    ScenarioMeta {
        invoker,
        invoker_gid: Gid(100),
        attacker: ATTACKER_UID,
        attacker_gid: Gid(666),
        attacker_home: "/users/evil".to_string(),
        untrusted_dir: "/users/evil/bin".to_string(),
        secret_target: "/winnt/repair/sam".to_string(),
        integrity_target: "/winnt/win.ini".to_string(),
        protected_dir: "/winnt/system32".to_string(),
        critical_target: "/winnt/system.ini".to_string(),
        trusted_host: "dc.corp.example.com".to_string(),
        attacker_host: "evil.example.net".to_string(),
    }
}

/// Number of unprotected (world-writable) registry keys in the NT world,
/// matching the paper's inventory.
pub const NT_UNPROTECTED_KEYS: usize = 29;

fn base_nt_os(invoker: Uid) -> Os {
    let mut os = Os::with_scenario(nt_scenario(invoker));
    let root = (Uid::ROOT, Gid::ROOT);
    os.users
        .add("Administrator", Uid::ROOT, Gid::ROOT, "/users/administrator");
    os.users.add("user1001", Uid(1001), Gid(100), "/users/user1001");
    os.users.add("evil", ATTACKER_UID, Gid(666), "/users/evil");
    os.fs
        .mkdir_p("/winnt/system32", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file(
            "/winnt/system.ini",
            "[boot]\nshell=explorer\n",
            root.0,
            root.1,
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file("/winnt/win.ini", "[fonts]\n", root.0, root.1, Mode::new(0o644))
        .expect("world build");
    os.fs
        .put_file(
            "/winnt/repair/sam",
            "SAM{admin:NTHASH}\n",
            root.0,
            root.1,
            Mode::new(0o600),
        )
        .expect("world build");
    os.fs
        .mkdir_p("/users/evil/bin", ATTACKER_UID, Gid(666), Mode::new(0o755))
        .expect("world build");
    // Five font-cache files named by unprotected registry keys.
    for i in 0..5 {
        os.fs
            .put_file(
                &format!("/winnt/fonts/cache{i}.fon"),
                "FONTDATA",
                root.0,
                root.1,
                Mode::new(0o644),
            )
            .expect("world build");
        os.registry.ensure_key(
            &format!("HKLM/Software/Fonts/Cache{i}"),
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        os.registry.god_set_value(
            &format!("HKLM/Software/Fonts/Cache{i}"),
            "Path",
            format!("/winnt/fonts/cache{i}.fon"),
        );
    }
    // Four logon keys, also unprotected.
    let logon: [(&str, &str); 4] = [
        ("ProfileDir", "/profiles/user1001"),
        ("Script", "/winnt/scripts/logon.cmd"),
        ("Shell", "/winnt/system32/cmd.exe"),
        ("HelpFile", "/winnt/help/welcome.txt"),
    ];
    for (name, value) in logon {
        os.registry.ensure_key(
            &format!("HKLM/Software/Logon/{name}"),
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        os.registry
            .god_set_value(&format!("HKLM/Software/Logon/{name}"), "Path", value);
    }
    // Twenty further unprotected keys no modeled module consumes — the
    // paper's "other 20 unprotected keys" it could only speculate about.
    for i in 0..20 {
        os.registry.ensure_key(
            &format!("HKLM/Software/Extras/Key{i:02}"),
            RegAcl {
                owner: Uid::ROOT,
                world_writable: true,
            },
        );
        os.registry.god_set_value(
            &format!("HKLM/Software/Extras/Key{i:02}"),
            "Value",
            format!("opaque-{i}"),
        );
    }
    // Logon world objects.
    os.fs
        .put_file(
            "/profiles/user1001/profile.cfg",
            "shell=/winnt/system32/csh.exe\n",
            root.0,
            root.1,
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file("/winnt/system32/csh.exe", "#!csh", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file(
            "/winnt/scripts/logon.cmd",
            "@echo on\n",
            root.0,
            root.1,
            Mode::new(0o755),
        )
        .expect("world build");
    os.fs
        .put_file("/winnt/system32/cmd.exe", "#!cmd", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file(
            "/winnt/help/welcome.txt",
            "welcome to the domain\n",
            root.0,
            root.1,
            Mode::new(0o644),
        )
        .expect("world build");
    // The attacker's prepared profile directory.
    os.fs
        .put_file(
            "/users/evil/profile.cfg",
            "shell=/users/evil/rootkit.exe\n",
            ATTACKER_UID,
            Gid(666),
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file(
            "/users/evil/rootkit.exe",
            "#!rootkit",
            ATTACKER_UID,
            Gid(666),
            Mode::new(0o755),
        )
        .expect("world build");
    tag_standard_targets(&mut os);
    os
}

/// The NT font-cache purge world: an administrator runs the module.
pub fn fontpurge_world() -> TestSetup {
    let os = base_nt_os(Uid::ROOT);
    TestSetup::new(os).invoker(Uid::ROOT).cwd("/")
}

/// The NT logon world: the logon service (root) processes user1001's logon.
pub fn ntlogon_world() -> TestSetup {
    let os = base_nt_os(Uid(1001));
    TestSetup::new(os).invoker(Uid::ROOT).cwd("/")
}

/// The `fingerd` world: a root daemon serving plan files over port 79, with
/// a DNS-based host allowlist. The oracle's invoker is the anonymous remote
/// client (uid 9999).
pub fn fingerd_world() -> TestSetup {
    let mut os = base_unix_os();
    os.scenario.invoker = Uid(9999);
    os.scenario.invoker_gid = Gid(999);
    let root = (Uid::ROOT, Gid::ROOT);
    os.users.add("nobody", Uid(9999), Gid(999), "/");
    os.users.add("user1001", Uid(1001), Gid(100), "/home/user1001");
    os.fs
        .put_file(
            "/home/user1001/.plan",
            "On sabbatical until fall.\n",
            Uid(1001),
            Gid(100),
            Mode::new(0o644),
        )
        .expect("world build");
    os.fs
        .put_file("/usr/sbin/fingerd", "", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.net.add_dns("trusted.cs.example.edu", "10.0.5.1");
    os.net.add_dns("evil.example.net", "198.51.100.66");
    os.net.add_service("trusted.cs.example.edu", 1023, true);
    os.net
        .push_message(79, Message::genuine("trusted.cs.example.edu", "user1001"));
    tag_standard_targets(&mut os);
    TestSetup::new(os).invoker(Uid::ROOT).cwd("/")
}

/// The `authd` world: a three-step (HELO/AUTH/CMD) key-registration daemon.
pub fn authd_world() -> TestSetup {
    let mut os = base_unix_os();
    let root = (Uid::ROOT, Gid::ROOT);
    os.users.add("user1001", Uid(1001), Gid(100), "/home/user1001");
    os.fs
        .put_file("/etc/authd.secret", "s3cret-token", root.0, root.1, Mode::new(0o600))
        .expect("world build");
    os.fs
        .put_file(
            "/etc/auth_keys",
            "# authorized keys\n",
            root.0,
            root.1,
            Mode::new(0o600),
        )
        .expect("world build");
    os.fs
        .put_file("/usr/sbin/authd", "", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    for step in [
        "HELO client.cs.example.edu",
        "AUTH s3cret-token",
        "CMD addkey user1001 ssh-rsa-KEY",
    ] {
        os.net
            .push_message(113, Message::genuine("client.cs.example.edu", step));
    }
    tag_standard_targets(&mut os);
    TestSetup::new(os).invoker(Uid::ROOT).cwd("/")
}

/// The `backupd` world: a root cron job snapshotting the shadow file, with
/// the creation mask supplied by the environment.
pub fn backupd_world() -> TestSetup {
    let mut os = base_unix_os();
    let root = (Uid::ROOT, Gid::ROOT);
    os.fs
        .mkdir_p("/var/backups", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file("/usr/sbin/backupd", "", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    tag_standard_targets(&mut os);
    TestSetup::new(os).invoker(Uid::ROOT).env("UMASK", "077").cwd("/")
}

/// The `mailnotify` world: a SUID-root biff-style notifier fed by the mail
/// daemon over IPC.
pub fn mailnotify_world() -> TestSetup {
    let mut os = base_unix_os();
    let root = (Uid::ROOT, Gid::ROOT);
    os.fs
        .put_file(
            "/var/mail/student",
            "From: old\n",
            os.scenario.invoker,
            os.scenario.invoker_gid,
            Mode::new(0o600),
        )
        .expect("world build");
    os.fs
        .put_file("/usr/bin/mail", "#!mail", root.0, root.1, Mode::new(0o755))
        .expect("world build");
    os.fs
        .put_file("/usr/local/bin/mailnotify", "", root.0, root.1, Mode::new(0o4755))
        .expect("world build");
    // Attacker's prepared PATH payload.
    os.fs
        .put_file(
            "/home/evil/bin/mail",
            "#!evil-mail",
            os.scenario.attacker,
            os.scenario.attacker_gid,
            Mode::new(0o755),
        )
        .expect("world build");
    os.net
        .push_ipc("maild", Message::genuine("maild", "From: alice\nSubject: lunch?\n"));
    tag_standard_targets(&mut os);
    TestSetup::new(os)
        .program("/usr/local/bin/mailnotify")
        .env("PATH", "/usr/bin:/bin")
        .cwd("/home/student")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_world_has_29_unprotected_keys() {
        let setup = fontpurge_world();
        assert_eq!(setup.world.registry.unprotected_keys().len(), NT_UNPROTECTED_KEYS);
    }

    #[test]
    fn worlds_pass_fs_invariants() {
        for setup in [
            lpr_world(),
            turnin_world(),
            fontpurge_world(),
            ntlogon_world(),
            fingerd_world(),
            authd_world(),
            mailnotify_world(),
        ] {
            setup.world.fs.check_invariants().unwrap();
        }
    }

    #[test]
    fn standard_targets_are_tagged() {
        let setup = turnin_world();
        let st = setup.world.fs.stat("/etc/shadow", None).unwrap();
        assert!(st.tags.contains(&epa_sandbox::fs::FileTag::Secret));
        let st = setup.world.fs.stat("/etc/passwd", None).unwrap();
        assert!(st.tags.contains(&epa_sandbox::fs::FileTag::Protected));
    }
}
