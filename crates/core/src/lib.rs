//! # epa-core — the EAI fault model and environment fault-injection engine
//!
//! The primary contribution of Du & Mathur, *Testing for Software
//! Vulnerability Using Environment Perturbation* (DSN 2000), as a library:
//!
//! * [`model`] — the Environment–Application Interaction (EAI) taxonomy
//!   (paper §2, Tables 1–4 structure);
//! * [`catalog`] — the fault catalog (paper Tables 5 and 6), both as
//!   printable rows and as per-interaction-point fault generators;
//! * [`perturb`] — executable perturbations (direct = environment mutation,
//!   indirect = received-input mutation);
//! * [`inject`] — the hook that delivers one fault at one interaction point
//!   (paper §3.3 step 6 placement semantics);
//! * [`engine`] — the driver facade: [`engine::WorldSpec`] declarative
//!   worlds, [`engine::Session`] frozen copy-on-write snapshots, and
//!   [`engine::Suite`] batch execution with cross-application rollups;
//! * [`campaign`] — the full testing procedure (paper §3.3 steps 1–10),
//!   the single-campaign primitive underneath the engine;
//! * [`coverage`] — the two-dimensional adequacy metric (paper §3.2,
//!   Figure 2);
//! * [`report`] — per-fault records, coverage and vulnerability scores;
//! * [`analysis`] — the static analysis layer: the reachable-site model,
//!   the fault-relevance relation the Planner pre-prunes with, and the
//!   world linter (`EPA0001`…`EPA0005`);
//! * [`corpus`] — the property-based scenario corpus: seed-reproducible
//!   world synthesis, the differential harness holding every execution
//!   path to byte-identical verdicts, divergence shrinking, and the
//!   corpus adequacy dashboard;
//! * [`store`] — the pluggable result-store layer: the [`store::ResultStore`]
//!   trait behind the planner's memo cache, the persistent content-addressed
//!   [`store::DiskStore`] backend (checksummed, versioned, atomic writes,
//!   LRU/TTL pruning), and the lockfile-style [`store::SuiteManifest`];
//! * [`baselines`] — Fuzz and AVA comparators (paper §5).
//!
//! # Example: the paper's §3.4 `lpr` experiment, declaratively
//!
//! ```
//! use epa_core::engine::{Session, WorldSpec};
//! use epa_sandbox::app::Application;
//! use epa_sandbox::cred::{Gid, Uid};
//! use epa_sandbox::os::{Os, ScenarioMeta};
//! use epa_sandbox::process::Pid;
//!
//! struct Lpr;
//! impl Application for Lpr {
//!     fn name(&self) -> &'static str { "lpr" }
//!     fn run(&self, os: &mut Os, pid: Pid) -> i32 {
//!         // creat(n, 0660) without O_EXCL — the flaw from the paper.
//!         match os.sys_write_file(pid, "lpr:create", "/var/spool/lpd/job", "data", 0o660) {
//!             Ok(()) => 0,
//!             Err(_) => 1,
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = ScenarioMeta::default();
//! let spec = WorldSpec::builder()
//!     .user("root", Uid::ROOT, Gid::ROOT, "/root")
//!     .user("student", scenario.invoker, scenario.invoker_gid, "/home/student")
//!     .dir("/var/spool/lpd", Uid::ROOT, Gid::ROOT, 0o755)
//!     .root_file("/etc/passwd", "root:0:0:", 0o644)
//!     .suid_root_program("/usr/bin/lpr")
//!     .build();
//!
//! let report = Session::new(&spec)?.execute(&Lpr);
//! assert_eq!(report.injected(), 4);      // existence, ownership, permission, symlink
//! assert_eq!(report.violated(), 4);      // naive creat tolerates none of them
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod baselines;
pub mod campaign;
pub mod catalog;
pub mod corpus;
pub mod coverage;
pub mod engine;
pub mod inject;
pub mod model;
pub mod perturb;
pub mod report;
pub mod store;

pub use analysis::{lint_scenario, lint_setup, AppAnalysis, Diagnostic, LintReport, Relevance, Severity};
pub use campaign::{run_once, run_once_batch_oracle, Campaign, CampaignOptions, CampaignPlan, RunOutcome, TestSetup};
pub use catalog::{direct_faults_for, faults_for_site, indirect_faults_for, table5_rows, table6_rows};
pub use coverage::{AdequacyPoint, AdequacyRegion, AdequacyThresholds, Ratio};
pub use engine::{Engine, ScenarioBuilder, Session, SpecError, Suite, SuiteEvent, SuiteReport, WorldSpec};
pub use inject::{InjectionHook, InjectionPlan};
pub use model::{DirectKind, EaiCategory, FsAttribute, IndirectKind, NetAttribute, ProcAttribute};
pub use perturb::{ConcreteFault, DirectFault, FaultPayload, IndirectFault};
pub use report::{CampaignReport, FaultRecord};
pub use store::{DiskStore, MemoryStore, ResultStore, SuiteManifest};
