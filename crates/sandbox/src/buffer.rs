//! The memory-safety model: fixed-capacity buffers.
//!
//! Real buffer overflows corrupt memory and, in the attacks the paper
//! catalogs, lead to arbitrary code execution. The sandbox models the
//! *security decision* rather than the corruption itself: an application
//! that copies environment-derived data into a [`FixedBuf`] chooses a
//! [`CopyDiscipline`]; an `Unchecked` copy that exceeds capacity raises a
//! `MemoryCorruption` audit event via [`crate::os::Os::mem_copy`], which the
//! policy oracle treats as a violation. A `Checked` copy truncates safely —
//! the fix a patched application would apply.

use serde::{Deserialize, Serialize};

use crate::data::Data;

/// Whether a copy validates its length against the destination capacity —
/// `strncpy` vs `strcpy`, morally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyDiscipline {
    /// Validate and truncate: never overflows.
    Checked,
    /// No validation: overflows when the source exceeds capacity.
    Unchecked,
}

/// A fixed-capacity byte buffer, like a stack array in C.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedBuf {
    name: String,
    capacity: usize,
    data: Vec<u8>,
}

/// Outcome of a copy into a [`FixedBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyOutcome {
    /// The source fit.
    Fit,
    /// The source did not fit and was truncated (checked copy).
    Truncated,
    /// The source did not fit and the buffer was overrun (unchecked copy).
    Overflowed {
        /// Bytes the copy attempted to place.
        attempted: usize,
    },
}

impl FixedBuf {
    /// Creates an empty buffer with a diagnostic name and capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use epa_sandbox::buffer::{CopyDiscipline, FixedBuf};
    /// use epa_sandbox::data::Data;
    /// let mut buf = FixedBuf::new("hostname", 8);
    /// let out = buf.copy_from(&Data::from("short"), CopyDiscipline::Unchecked);
    /// assert_eq!(out, epa_sandbox::buffer::CopyOutcome::Fit);
    /// ```
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        FixedBuf {
            name: name.into(),
            capacity,
            data: Vec::new(),
        }
    }

    /// The diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current contents (never longer than capacity).
    pub fn contents(&self) -> &[u8] {
        &self.data
    }

    /// Contents as lossy text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.data).into_owned()
    }

    /// Copies `src` into the buffer under the given discipline.
    ///
    /// On `Overflowed`, the stored bytes are clamped to capacity (the model
    /// does not simulate what the overrun smashed), but the outcome reports
    /// the attempted length so the runtime can raise the audit event.
    pub fn copy_from(&mut self, src: &Data, discipline: CopyDiscipline) -> CopyOutcome {
        let n = src.len();
        if n <= self.capacity {
            self.data = src.as_bytes().to_vec();
            return CopyOutcome::Fit;
        }
        self.data = src.as_bytes()[..self.capacity].to_vec();
        match discipline {
            CopyDiscipline::Checked => CopyOutcome::Truncated,
            CopyDiscipline::Unchecked => CopyOutcome::Overflowed { attempted: n },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_copies_everything() {
        let mut b = FixedBuf::new("b", 16);
        assert_eq!(
            b.copy_from(&Data::from("hello"), CopyDiscipline::Unchecked),
            CopyOutcome::Fit
        );
        assert_eq!(b.text(), "hello");
    }

    #[test]
    fn checked_truncates() {
        let mut b = FixedBuf::new("b", 4);
        let out = b.copy_from(&Data::from("overlong"), CopyDiscipline::Checked);
        assert_eq!(out, CopyOutcome::Truncated);
        assert_eq!(b.text(), "over");
        assert_eq!(b.contents().len(), 4);
    }

    #[test]
    fn unchecked_reports_overflow() {
        let mut b = FixedBuf::new("b", 4);
        let out = b.copy_from(&Data::from("overlong"), CopyDiscipline::Unchecked);
        assert_eq!(out, CopyOutcome::Overflowed { attempted: 8 });
        // Stored bytes stay clamped; the event is the model of the smash.
        assert_eq!(b.contents().len(), 4);
    }

    #[test]
    fn exact_fit_is_fit() {
        let mut b = FixedBuf::new("b", 5);
        assert_eq!(
            b.copy_from(&Data::from("12345"), CopyDiscipline::Unchecked),
            CopyOutcome::Fit
        );
    }
}
