//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the `epa` test-suite uses:
//! the [`strategy::Strategy`] trait with `prop_map`/`boxed`, range and
//! `&str`-regex strategies, [`collection::vec`], [`string::string_regex`],
//! [`strategy::Just`], [`strategy::Union`] (behind `prop_oneof!`), and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Generation is
//! purely random (no shrinking) and deterministic per test function; the
//! `EPA_PROPTEST_SEED` environment variable overrides the seed for exact
//! replay, and a failing test prints the seed it ran under.

#![warn(rust_2018_idioms)]

pub mod test_runner {
    //! The deterministic RNG driving value generation.

    use rand::{Rng, SeedableRng};

    /// The seed `proptest!` runs under when [`ENV_SEED_VAR`] is unset.
    pub const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

    /// Environment variable overriding the property-test seed, so a CI
    /// failure replays exactly: `EPA_PROPTEST_SEED=<decimal or 0x-hex>`.
    pub const ENV_SEED_VAR: &str = "EPA_PROPTEST_SEED";

    /// The seed the next `proptest!` invocation will run under:
    /// [`ENV_SEED_VAR`] when set (decimal or `0x`-prefixed hex), else
    /// [`DEFAULT_SEED`].
    ///
    /// # Panics
    ///
    /// Panics when the variable is set but does not parse as a `u64`, so a
    /// typo in CI cannot silently fall back to the default seed.
    pub fn resolved_seed() -> u64 {
        match std::env::var(ENV_SEED_VAR) {
            Ok(raw) => {
                parse_seed(&raw).unwrap_or_else(|| panic!("{ENV_SEED_VAR}={raw:?} is not a u64 (decimal or 0x-hex)"))
            }
            Err(_) => DEFAULT_SEED,
        }
    }

    fn parse_seed(raw: &str) -> Option<u64> {
        let raw = raw.trim();
        if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            u64::from_str_radix(hex, 16).ok()
        } else {
            raw.parse().ok()
        }
    }

    /// Prints the active seed if the test panics, so any failure carries
    /// its exact replay instructions. Created by `proptest!` at the top of
    /// every generated test function.
    #[derive(Debug)]
    pub struct SeedReporter {
        seed: u64,
    }

    impl SeedReporter {
        /// Arms the reporter for a run under `seed`.
        pub fn new(seed: u64) -> Self {
            SeedReporter { seed }
        }
    }

    impl Drop for SeedReporter {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest: failing run used seed {seed:#x}; replay with {ENV_SEED_VAR}={seed}",
                    seed = self.seed
                );
            }
        }
    }

    /// The generator driving `proptest!`: the `rand` stand-in's `StdRng`
    /// from an explicit seed, so failures reproduce run-to-run.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Builds the generator for an explicit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }

        /// Builds the fixed-seed generator used by `proptest!` when no
        /// seed override is in effect.
        pub fn deterministic() -> Self {
            TestRng::from_seed(DEFAULT_SEED)
        }

        /// Returns a uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.inner.gen_range(0..n)
        }
    }

    impl Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Per-invocation configuration (`cases` is the only knob we honor).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Builds a config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `prop_map` combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `branches` (must be non-empty).
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].generate(rng)
        }
    }

    // Ranges sample through the `rand` stand-in's `SampleRange`, which is
    // the single home of the uniform-sampling arithmetic.
    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: rand::SampleRange<T> + Clone,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng as _;
            rng.gen_range(self.clone())
        }
    }

    /// A `&str` is a regex strategy, as in real proptest.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::string_regex(self)
                .expect("invalid regex literal strategy")
                .generate(rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+))+) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-driven string strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error returned for regex constructs the generator does not support.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Builds a strategy generating strings matching `pattern`.
    ///
    /// Supported subset: literals, `.`, classes `[a-z._]`, groups `(...)`,
    /// alternation `|`, and the quantifiers `?`, `*`, `+`, `{m}`, `{m,n}`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut p = Parser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let node = p.parse_alternation()?;
        if p.pos != p.chars.len() {
            return Err(Error(format!("trailing `{}` in /{pattern}/", p.chars[p.pos])));
        }
        Ok(RegexGeneratorStrategy { node })
    }

    /// The strategy returned by [`string_regex`].
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        node: Node,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            gen_node(&self.node, rng, &mut out);
            out
        }
    }

    #[derive(Debug, Clone)]
    enum Node {
        /// Concatenation of parts.
        Seq(Vec<Node>),
        /// `a|b|c` alternatives.
        Alt(Vec<Node>),
        /// A literal character.
        Lit(char),
        /// A character class as inclusive ranges.
        Class(Vec<(char, char)>),
        /// `.` — any printable ASCII character.
        Any,
        /// `node{min,max}` (also encodes `?`, `*`, `+`).
        Repeat(Box<Node>, usize, usize),
    }

    /// Cap for unbounded `*`/`+` repetition.
    const UNBOUNDED_CAP: usize = 8;

    fn gen_node(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Seq(parts) => parts.iter().for_each(|p| gen_node(p, rng, out)),
            Node::Alt(alts) => {
                let i = rng.below(alts.len() as u64) as usize;
                gen_node(&alts[i], rng, out);
            }
            Node::Lit(c) => out.push(*c),
            Node::Class(ranges) => {
                let total: u64 = ranges.iter().map(|(a, b)| (*b as u64) - (*a as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (a, b) in ranges {
                    let span = (*b as u64) - (*a as u64) + 1;
                    if pick < span {
                        out.push(char::from_u32(*a as u32 + pick as u32).expect("class range is valid"));
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Any => out.push(char::from_u32(0x20 + rng.below(0x7f - 0x20) as u32).expect("printable ascii")),
            Node::Repeat(inner, min, max) => {
                let n = *min as u64 + rng.below((*max - *min + 1) as u64);
                for _ in 0..n {
                    gen_node(inner, rng, out);
                }
            }
        }
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn parse_alternation(&mut self) -> Result<Node, Error> {
            let mut alts = vec![self.parse_seq()?];
            while self.peek() == Some('|') {
                self.pos += 1;
                alts.push(self.parse_seq()?);
            }
            Ok(if alts.len() == 1 {
                alts.pop().expect("len checked")
            } else {
                Node::Alt(alts)
            })
        }

        fn parse_seq(&mut self) -> Result<Node, Error> {
            let mut parts = Vec::new();
            while let Some(c) = self.peek() {
                if c == '|' || c == ')' {
                    break;
                }
                let atom = self.parse_atom()?;
                parts.push(self.parse_quantifier(atom)?);
            }
            Ok(Node::Seq(parts))
        }

        fn parse_atom(&mut self) -> Result<Node, Error> {
            match self.peek() {
                Some('(') => {
                    self.pos += 1;
                    let inner = self.parse_alternation()?;
                    if self.peek() != Some(')') {
                        return Err(Error("unclosed group".into()));
                    }
                    self.pos += 1;
                    Ok(inner)
                }
                Some('[') => {
                    self.pos += 1;
                    let mut ranges = Vec::new();
                    while let Some(c) = self.peek() {
                        if c == ']' {
                            break;
                        }
                        self.pos += 1;
                        let lo = if c == '\\' { self.escape()? } else { c };
                        if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                            self.pos += 1;
                            let hi = self.peek().ok_or_else(|| Error("unclosed class".into()))?;
                            self.pos += 1;
                            let hi = if hi == '\\' { self.escape()? } else { hi };
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if self.peek() != Some(']') {
                        return Err(Error("unclosed class".into()));
                    }
                    self.pos += 1;
                    Ok(Node::Class(ranges))
                }
                Some('.') => {
                    self.pos += 1;
                    Ok(Node::Any)
                }
                Some('\\') => {
                    self.pos += 1;
                    Ok(Node::Lit(self.escape()?))
                }
                Some(c) => {
                    self.pos += 1;
                    Ok(Node::Lit(c))
                }
                None => Err(Error("unexpected end of pattern".into())),
            }
        }

        fn escape(&mut self) -> Result<char, Error> {
            let c = self.peek().ok_or_else(|| Error("dangling escape".into()))?;
            self.pos += 1;
            Ok(match c {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            })
        }

        fn parse_quantifier(&mut self, atom: Node) -> Result<Node, Error> {
            let node = match self.peek() {
                Some('?') => Node::Repeat(Box::new(atom), 0, 1),
                Some('*') => Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP),
                Some('+') => Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP),
                Some('{') => {
                    self.pos += 1;
                    let min = self.parse_number()?;
                    let max = match self.peek() {
                        Some(',') => {
                            self.pos += 1;
                            self.parse_number()?
                        }
                        _ => min,
                    };
                    if self.peek() != Some('}') {
                        return Err(Error("unclosed quantifier".into()));
                    }
                    if max < min {
                        return Err(Error("quantifier max below min".into()));
                    }
                    return Ok(Node::Repeat(Box::new(atom), min, max));
                }
                _ => return Ok(atom),
            };
            self.pos += 1;
            Ok(node)
        }

        fn parse_number(&mut self) -> Result<usize, Error> {
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if start == self.pos {
                return Err(Error("expected number in quantifier".into()));
            }
            self.chars[start..self.pos]
                .iter()
                .collect::<String>()
                .parse()
                .map_err(|_| Error("bad quantifier number".into()))
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(arg in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)) => {};
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::resolved_seed();
            let _replay = $crate::test_runner::SeedReporter::new(seed);
            let mut rng = $crate::test_runner::TestRng::from_seed(seed);
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform random choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strategy)),+])
    };
}

/// `assert!` under a property-test name.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}
