//! Quickstart: test a 15-line SUID program for environment-fault tolerance.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program is a minimal spool writer with the classic naive-`creat`
//! flaw. The campaign traces its interaction points, injects the paper's
//! Table 5/6 faults, and reports coverage plus every violation found.

use epa::core::campaign::{Campaign, TestSetup};
use epa::sandbox::app::Application;
use epa::sandbox::cred::{Gid, Uid};
use epa::sandbox::mode::Mode;
use epa::sandbox::os::Os;
use epa::sandbox::process::Pid;
use epa::sandbox::trace::InputSemantic;

/// A tiny SUID-root program: read a message, spool it.
struct SpoolIt;

impl Application for SpoolIt {
    fn name(&self) -> &'static str {
        "spoolit"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        let msg = match os.sys_arg(pid, "spoolit:arg", 0, InputSemantic::UserFileName) {
            Ok(m) => m,
            Err(_) => return 2,
        };
        // The flaw: create-or-truncate with no O_EXCL and no lstat.
        match os.sys_write_file(pid, "spoolit:create", "/var/spool/msg", msg, 0o660) {
            Ok(()) => 0,
            Err(_) => 1,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a world: users, a spool directory, protected system files,
    //    and the SUID program file itself.
    let mut os = Os::new();
    os.users
        .add("student", os.scenario.invoker, os.scenario.invoker_gid, "/home/student");
    os.fs.mkdir_p("/var/spool", Uid::ROOT, Gid::ROOT, Mode::new(0o755))?;
    os.fs
        .put_file("/etc/passwd", "root:x:0:0:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))?;
    os.fs
        .put_file("/etc/shadow", "root:HASH", Uid::ROOT, Gid::ROOT, Mode::new(0o600))?;
    os.fs
        .put_file("/usr/bin/spoolit", "", Uid::ROOT, Gid::ROOT, Mode::new(0o4755))?;
    epa::core::perturb::tag_standard_targets(&mut os);

    // 2. Describe how the program is invoked.
    let setup = TestSetup::new(os).program("/usr/bin/spoolit").args(["hello world"]);

    // 3. Run the environment-perturbation campaign (paper §3.3).
    let report = Campaign::new(&SpoolIt, &setup).execute();

    // 4. Read the verdict.
    println!("{}", report.render_text());
    println!(
        "`spoolit` tolerated {} of {} injected environment faults.",
        report.injected() - report.violated(),
        report.injected()
    );
    Ok(())
}
