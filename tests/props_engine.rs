//! Property tests: engine-level invariants — coverage bounds, catalog
//! well-formedness, report arithmetic, classifier stability.

use std::collections::BTreeMap;

use epa::core::catalog::{direct_faults_for, faults_for_site, indirect_faults_for, DirectContext};
use epa::core::coverage::{AdequacyPoint, AdequacyThresholds, Ratio};
use epa::core::perturb::IndirectFault;
use epa::sandbox::data::Data;
use epa::sandbox::os::ScenarioMeta;
use epa::sandbox::trace::{InputSemantic, ObjectRef, OpKind, SiteId, SiteSummary};
use proptest::prelude::*;

fn semantic_strategy() -> impl Strategy<Value = InputSemantic> {
    prop_oneof![
        Just(InputSemantic::UserFileName),
        Just(InputSemantic::UserCommand),
        Just(InputSemantic::EnvPathList),
        Just(InputSemantic::EnvPermMask),
        Just(InputSemantic::EnvValue),
        Just(InputSemantic::FsFileName),
        Just(InputSemantic::FsFileExtension),
        Just(InputSemantic::NetIpAddr),
        Just(InputSemantic::NetPacket),
        Just(InputSemantic::NetHostName),
        Just(InputSemantic::NetDnsReply),
        Just(InputSemantic::ProcMessage),
        Just(InputSemantic::Opaque),
    ]
}

fn op_strategy() -> impl Strategy<Value = OpKind> {
    prop_oneof![
        Just(OpKind::ReadFile),
        Just(OpKind::CreateFile),
        Just(OpKind::CreateExcl),
        Just(OpKind::WriteFile),
        Just(OpKind::Delete),
        Just(OpKind::Chdir),
        Just(OpKind::Stat),
        Just(OpKind::Exec),
        Just(OpKind::Print),
        Just(OpKind::Getenv),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ratios stay in [0, 1] for any counts, and only the empty
    /// denominator is undefined.
    #[test]
    fn ratio_bounds(hits in 0usize..1000, extra in 0usize..1000) {
        let r = Ratio::new(hits, hits + extra);
        match r.fraction() {
            Some(v) => prop_assert!((0.0..=1.0).contains(&v)),
            None => prop_assert_eq!(r.total, 0),
        }
        prop_assert!((0.0..=1.0).contains(&r.value_or(1.0)));
    }

    /// Adequacy points clamp and classify into exactly one region.
    #[test]
    fn adequacy_total_function(i in -1.0f64..2.0, f in -1.0f64..2.0) {
        let p = AdequacyPoint::new(i, f);
        prop_assert!((0.0..=1.0).contains(&p.interaction));
        prop_assert!((0.0..=1.0).contains(&p.fault));
        let region = p.region(AdequacyThresholds::default());
        prop_assert!((1..=4).contains(&region.figure2_point()));
    }

    /// Every generated fault list has unique ids, and indirect faults
    /// always record their target semantics.
    #[test]
    fn fault_lists_are_well_formed(
        ops in proptest::collection::vec((op_strategy(), "[a-z]{1,6}"), 0..4),
        semantics in proptest::collection::vec(semantic_strategy(), 0..4),
    ) {
        let scenario = ScenarioMeta::default();
        let resolutions = BTreeMap::new();
        let ctx = DirectContext { scenario: &scenario, reaccessed: &[], exec_resolutions: &resolutions, cwd: "/" };
        let summary = SiteSummary {
            site: SiteId::new("prop:site"),
            first_seq: 0,
            hits: 1,
            ops: ops.iter().map(|(op, n)| (*op, ObjectRef::File(format!("/d/{n}")))).collect(),
            inputs: semantics.clone(),
        };
        let faults = faults_for_site(&summary, &ctx);
        let ids: std::collections::BTreeSet<_> = faults.iter().map(|f| f.id.clone()).collect();
        prop_assert_eq!(ids.len(), faults.len(), "duplicate fault ids");
        for f in &faults {
            if !f.is_direct() {
                prop_assert!(f.semantic.is_some(), "{} lacks semantics", f.id);
            }
        }
    }

    /// Direct fault generation is deterministic.
    #[test]
    fn direct_generation_deterministic(op in op_strategy(), name in "[a-z]{1,8}") {
        let scenario = ScenarioMeta::default();
        let resolutions = BTreeMap::new();
        let ctx = DirectContext { scenario: &scenario, reaccessed: &[], exec_resolutions: &resolutions, cwd: "/" };
        let object = ObjectRef::File(format!("/x/{name}"));
        prop_assert_eq!(direct_faults_for(op, &object, &ctx), direct_faults_for(op, &object, &ctx));
    }

    /// Indirect string mutations preserve labels and never panic on
    /// arbitrary input text.
    #[test]
    fn indirect_mutations_total(text in ".{0,200}", which in 0usize..8) {
        let fault = match which {
            0 => IndirectFault::Lengthen { by: 64 },
            1 => IndirectFault::MakeRelative,
            2 => IndirectFault::MakeAbsolute,
            3 => IndirectFault::InsertDotDot { depth: 2 },
            4 => IndirectFault::InsertSpecial { ch: ';' },
            5 => IndirectFault::PathListReorder,
            6 => IndirectFault::PermMaskZero,
            _ => IndirectFault::Malform,
        };
        let mut d = Data::from(text.as_str()).with_label(epa::sandbox::data::Label::Untrusted { source: "p".into() });
        fault.apply_to_data(&mut d);
        prop_assert!(d.has_untrusted(), "labels survive mutation");
    }

    /// The catalog respects the paper's per-semantic counts regardless of
    /// the scenario parameterization.
    #[test]
    fn indirect_counts_scenario_independent(dir in "/[a-z]{1,10}", host in "[a-z]{1,10}") {
        let scenario = ScenarioMeta { untrusted_dir: dir, attacker_host: host, ..Default::default() };
        prop_assert_eq!(indirect_faults_for(InputSemantic::EnvPathList, &scenario).len(), 5);
        prop_assert_eq!(indirect_faults_for(InputSemantic::UserFileName, &scenario).len(), 5);
    }
}

#[test]
fn classifier_totals_stable_under_any_permutation() {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let mut db = epa::vulndb::entries();
    for _ in 0..5 {
        db.shuffle(&mut rng);
        let t = epa::vulndb::compute(&db);
        assert_eq!(t.table1.total(), 142);
        assert_eq!(t.table2.total(), 81);
        assert_eq!(t.table3.total(), 48);
        assert_eq!(t.table4.total(), 42);
    }
}
