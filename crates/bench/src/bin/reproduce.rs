//! `reproduce` — regenerate any table, figure or case study of the paper.
//!
//! ```text
//! cargo run -p epa-bench --bin reproduce -- all
//! cargo run -p epa-bench --bin reproduce -- table1 turnin figure2
//! cargo run -p epa-bench --bin reproduce -- suite --json   # + SUITE_report.json
//! cargo run -p epa-bench --bin reproduce -- suite --store .epa-store   # warm-replayable
//! cargo run -p epa-bench --bin reproduce -- store verify --store .epa-store
//! cargo run -p epa-bench --bin reproduce -- corpus --json --seed 7 --count 32
//! cargo run -p epa-bench --bin reproduce -- lint --json    # + LINT_report.json
//! ```
//!
//! `EPA_CACHE_DIR` configures the persistent result store when `--store`
//! is absent (the same flag-beats-environment contract as `EPA_WORKERS`).
//!
//! The subcommand table (names, flags, descriptions, dispatch) lives in
//! [`epa_bench::cli`]; this binary only parses arguments.

use epa_bench::cli::{self, RunOptions};

/// Parses a `--flag value` pair out of `args`, removing both tokens.
/// Accepts decimal or `0x`-prefixed hex values.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<u64>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(pos + 1);
    args.remove(pos);
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse::<u64>(),
    };
    parsed.map(Some).map_err(|_| format!("{flag}: `{raw}` is not a number"))
}

/// Parses a `--flag value` pair whose value is arbitrary text (a path),
/// removing both tokens.
fn take_string_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} needs a value"));
    }
    let raw = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(raw))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = (|| {
        Ok::<_, String>((
            take_value(&mut args, "--seed")?,
            take_value(&mut args, "--count")?,
            take_value(&mut args, "--ttl")?,
            take_string_value(&mut args, "--store")?,
        ))
    })();
    let (seed, count, ttl, store) = match parsed {
        Ok(values) => values,
        Err(e) => {
            eprintln!("reproduce: {e}");
            std::process::exit(2);
        }
    };
    let json = args.iter().any(|a| a == "--json");
    let mut opts = RunOptions {
        json,
        seed,
        count: count.map(|c| c as usize),
        store,
        store_op: None,
        ttl,
    };
    if args.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        print!("{}", cli::usage());
        return;
    }
    let mut names: Vec<String> = args.into_iter().filter(|a| a != "--json").collect();
    // The `store` subcommand takes a positional operation; capture it here
    // so the dispatch loop below stays one-name-per-subcommand.
    if let Some(pos) = names.iter().position(|n| n == "store") {
        if let Some(op) = names.get(pos + 1) {
            if ["stats", "prune", "verify"].contains(&op.as_str()) {
                opts.store_op = Some(op.clone());
                names.remove(pos + 1);
            }
        }
    }
    let selected: Vec<&str> = if names.is_empty() || names.iter().any(|n| n == "all") {
        cli::SUBCOMMANDS.iter().map(|s| s.name).collect()
    } else {
        names.iter().map(String::as_str).collect()
    };
    let mut failed = false;
    for name in selected {
        if let Err(e) = cli::run(name, opts.clone()) {
            eprintln!("reproduce: {e}");
            eprint!("{}", cli::usage());
            failed = true;
        }
    }
    if failed {
        std::process::exit(2);
    }
}
