//! The pluggable result-store layer: where `(scope, FaultKey) -> RunDigest`
//! memo entries live.
//!
//! PR 5's [`crate::engine::ResultCache`] kept every memoized run in one
//! in-process map, so each CI run and each process restart re-executed the
//! entire fault-injection world. This module splits the *storage* of
//! completed digests out of the cache's *claim coordination*:
//!
//! * [`ResultStore`] — the storage trait: load and save completed
//!   [`RunDigest`]s keyed by `(scope, FaultKey)`. Implementations must be
//!   thread-safe; the cache calls them from suite workers.
//! * [`MemoryStore`] — the process-local backend: a mutex-guarded map,
//!   exactly the storage the old cache embedded.
//! * [`DiskStore`] — the persistent content-addressed backend
//!   ([`disk`]): sharded fanout directories, a versioned store header,
//!   per-entry checksums, atomic rename-into-place writes, LRU/TTL
//!   pruning, and full-text key verification so a 64-bit digest collision
//!   can never replay the wrong run.
//! * [`SuiteManifest`] — the lockfile-style campaign manifest
//!   ([`manifest`]): the exact `(spec fingerprint, plan, store keys)` of a
//!   suite run, so a warm re-run can be verified complete before any job
//!   is scheduled.
//!
//! The [`crate::engine::ResultCache`] stays the engine-facing handle: it
//! keeps the claim/`Pending`/`Ready` protocol (no `(scope, key)` ever
//! executes twice) and its `Ready` map doubles as the hot tier, while a
//! backend from this module — installed with
//! [`crate::engine::ResultCache::with_store`] — persists every digest and
//! serves cross-process warm hits. Hot keys therefore stay lock-cheap:
//! the disk is consulted at most once per `(scope, key)` per process.

use std::path::{Path, PathBuf};

use shim_sync::sync::{Mutex, PoisonError};
use std::collections::BTreeMap;

use crate::engine::planner::{FaultKey, RunDigest};

pub mod disk;
pub mod manifest;

pub use disk::{
    decode_entry, encode_entry, DecodedEntry, DiskStats, DiskStore, EntryError, PruneOptions, PruneReport,
    VerifyReport, STORE_FORMAT_VERSION,
};
pub use manifest::{AppManifest, ManifestCheck, ManifestKey, SuiteManifest, MANIFEST_FILE, MANIFEST_VERSION};

/// The environment variable naming the persistent store directory
/// (mirrors `EPA_WORKERS`: an explicit CLI flag wins over it).
pub const EPA_CACHE_DIR: &str = "EPA_CACHE_DIR";

/// Storage for completed run digests, keyed by `(scope, FaultKey)`.
///
/// `scope` is the campaign's `(application, setup fingerprint)` hash — see
/// [`crate::campaign::TestSetup::fingerprint`] — so an entry can only be
/// served where the *entire* run would be byte-identical. Implementations
/// are consulted under concurrency from suite workers and must be
/// internally synchronized; they must also be **conservative**: any doubt
/// about an entry (corruption, version skew, key mismatch) must read as a
/// miss, never as a wrong digest.
pub trait ResultStore: Send + Sync {
    /// Returns the digest of an identical prior run, or `None` on a miss.
    fn load(&self, scope: u64, key: &FaultKey) -> Option<RunDigest>;

    /// Persists the digest of an executed run. Must be idempotent: the
    /// engine may save the same `(scope, key, digest)` more than once
    /// (claim fulfilment and schedule memoization both write through).
    fn save(&self, scope: u64, key: &FaultKey, digest: &RunDigest);

    /// Number of entries currently stored.
    fn entries(&self) -> usize;

    /// A short backend label (`"memory"`, `"disk"`) for diagnostics.
    fn kind(&self) -> &'static str;
}

/// The process-local [`ResultStore`]: a poison-tolerant mutex-guarded map.
///
/// This is exactly the storage the pre-refactor `ResultCache` embedded,
/// extracted behind the trait. It is useful on its own for tests and as
/// the fallback when no persistent directory is configured.
#[derive(Default)]
pub struct MemoryStore {
    map: Mutex<BTreeMap<u64, BTreeMap<String, RunDigest>>>,
}

impl MemoryStore {
    /// An empty in-memory store.
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }
}

impl ResultStore for MemoryStore {
    fn load(&self, scope: u64, key: &FaultKey) -> Option<RunDigest> {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.get(&scope).and_then(|m| m.get(key.repr())).cloned()
    }

    fn save(&self, scope: u64, key: &FaultKey, digest: &RunDigest) {
        let mut map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.entry(scope)
            .or_default()
            .insert(key.repr().to_string(), digest.clone());
    }

    fn entries(&self) -> usize {
        let map = self.map.lock().unwrap_or_else(PoisonError::into_inner);
        map.values().map(BTreeMap::len).sum()
    }

    fn kind(&self) -> &'static str {
        "memory"
    }
}

/// The outcome of resolving a persistent-store directory from the CLI flag
/// and `EPA_CACHE_DIR`: the validated directory (absent when no store was
/// requested or the request had to be refused) plus an optional warning for
/// the caller to print to stderr — the same contract as the executor's
/// `EPA_WORKERS` parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreResolution {
    /// The canonicalized, writability-probed store directory.
    pub dir: Option<PathBuf>,
    /// A human-readable complaint when the request was adjusted or refused.
    pub warning: Option<String>,
}

/// Resolves the persistent-store directory from an explicit `--store`
/// value and the raw `EPA_CACHE_DIR` environment value (pure, for tests;
/// [`resolve_store_dir_env`] feeds it the real environment).
///
/// The explicit flag wins over the environment. A blank value means "no
/// store". Relative paths are canonicalized against the current directory
/// (the directory is created first, so canonicalization cannot fail on a
/// fresh path). A directory that cannot be created or written is refused
/// with a warning — the caller falls back to in-memory memoization, it
/// never aborts the run.
pub fn resolve_store_dir(explicit: Option<&str>, env_value: Option<&str>) -> StoreResolution {
    let raw = match explicit.or(env_value).map(str::trim) {
        Some(r) if !r.is_empty() => r,
        _ => {
            return StoreResolution {
                dir: None,
                warning: None,
            }
        }
    };
    let path = PathBuf::from(raw);
    if let Err(e) = std::fs::create_dir_all(&path) {
        return StoreResolution {
            dir: None,
            warning: Some(format!(
                "store directory `{raw}` cannot be created ({e}); falling back to in-memory memoization"
            )),
        };
    }
    let canonical = match path.canonicalize() {
        Ok(c) => c,
        Err(e) => {
            return StoreResolution {
                dir: None,
                warning: Some(format!(
                    "store directory `{raw}` cannot be canonicalized ({e}); falling back to in-memory memoization"
                )),
            }
        }
    };
    if let Err(e) = probe_writable(&canonical) {
        return StoreResolution {
            dir: None,
            warning: Some(format!(
                "store directory `{}` is not writable ({e}); falling back to in-memory memoization",
                canonical.display()
            )),
        };
    }
    StoreResolution {
        dir: Some(canonical),
        warning: None,
    }
}

/// [`resolve_store_dir`] against the live `EPA_CACHE_DIR` environment.
pub fn resolve_store_dir_env(explicit: Option<&str>) -> StoreResolution {
    let env_value = std::env::var(EPA_CACHE_DIR).ok();
    resolve_store_dir(explicit, env_value.as_deref())
}

/// Writes and removes a probe file to prove `dir` is writable.
fn probe_writable(dir: &Path) -> std::io::Result<()> {
    let probe = dir.join(format!(".epa-probe-{}", std::process::id()));
    std::fs::write(&probe, b"probe")?;
    std::fs::remove_file(&probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        static SEQ: shim_sync::sync::atomic::AtomicU64 = shim_sync::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, shim_sync::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("epa-store-{tag}-{}-{n}", std::process::id()))
    }

    fn digest(exit: i32) -> RunDigest {
        RunDigest {
            applied: true,
            exit: Some(exit),
            crashed: None,
            audit_events: 2,
            violations: Vec::new(),
        }
    }

    #[test]
    fn memory_store_round_trips_and_isolates_scopes() {
        let store = MemoryStore::new();
        let key = FaultKey::synthetic("s#0|-|{}");
        assert!(store.load(1, &key).is_none());
        store.save(1, &key, &digest(0));
        assert_eq!(store.load(1, &key), Some(digest(0)));
        assert!(store.load(2, &key).is_none(), "scopes must not bleed");
        assert_eq!(store.entries(), 1);
        assert_eq!(store.kind(), "memory");
        // Idempotent re-save keeps one entry.
        store.save(1, &key, &digest(0));
        assert_eq!(store.entries(), 1);
    }

    #[test]
    fn unset_and_blank_store_requests_resolve_to_none_silently() {
        assert_eq!(
            resolve_store_dir(None, None),
            StoreResolution {
                dir: None,
                warning: None
            }
        );
        assert_eq!(resolve_store_dir(Some("  "), None).dir, None);
        assert_eq!(resolve_store_dir(Some("  "), None).warning, None);
        assert_eq!(resolve_store_dir(None, Some("")).dir, None);
    }

    #[test]
    fn explicit_flag_wins_over_the_environment() {
        let flag_dir = unique_dir("flag");
        let env_dir = unique_dir("env");
        let resolved = resolve_store_dir(
            Some(flag_dir.to_str().expect("utf-8 temp path")),
            Some(env_dir.to_str().expect("utf-8 temp path")),
        );
        assert_eq!(resolved.warning, None);
        assert_eq!(
            resolved.dir.as_deref(),
            Some(flag_dir.canonicalize().expect("created").as_path())
        );
        assert!(!env_dir.exists(), "the losing source must not be touched");
        let _ = std::fs::remove_dir_all(&flag_dir);
    }

    #[test]
    fn relative_paths_are_canonicalized_to_absolute() {
        // A relative request must come back absolute (anchored at the
        // current directory), so later chdirs cannot silently retarget it.
        let tag = format!("epa-store-rel-{}", std::process::id());
        let resolved = resolve_store_dir(None, Some(&format!("target/{tag}")));
        let dir = resolved.dir.expect("relative dir resolves");
        assert!(dir.is_absolute());
        assert!(dir.ends_with(&tag));
        assert_eq!(resolved.warning, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncreatable_and_unwritable_directories_warn_and_fall_back() {
        // A path under a plain file cannot be created as a directory.
        let base = unique_dir("unwritable");
        std::fs::create_dir_all(&base).expect("temp base");
        let file = base.join("plain-file");
        std::fs::write(&file, b"x").expect("plain file");
        let under_file = file.join("sub");
        let resolved = resolve_store_dir(Some(under_file.to_str().expect("utf-8 temp path")), None);
        assert_eq!(resolved.dir, None);
        let warning = resolved.warning.expect("refusal carries a warning");
        assert!(warning.contains("falling back to in-memory"), "{warning}");
        let _ = std::fs::remove_dir_all(&base);
    }
}
