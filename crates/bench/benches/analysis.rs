//! The static-analysis bench and soundness gate.
//!
//! Runs the eight-application standard suite cold under three option sets:
//! *exhaustive* — the paper-faithful baseline that perturbs every traced
//! occurrence of every interaction point (dedup off, occurrence cap off,
//! static pruning off, so every planned job occupies a worker slot);
//! *planned* — the Planner's canonical plan with pruning off; and
//! *pruned* — the default (canonical-fault dedup plus the static analyzer
//! dropping `ProvablyInert` jobs). Asserts the planned and pruned verdict
//! streams are byte-identical and that every pruned-suite verdict appears
//! verbatim in the exhaustive stream, then sweeps a 120-scenario corpus
//! with pruning off/on under otherwise identical options and asserts
//! byte-identical streams there too. Writes `BENCH_analysis.json`: plan
//! sizes, executed-run counts, the reduction percentages, and the
//! cold-suite wall-clocks.
//!
//! Gates: verdict equality on every app and every scenario, and a >= 20%
//! reduction in executed runs on the standard suite's cold pass relative
//! to the occurrence-exhaustive baseline.

use std::time::Instant;

use epa_apps::ScriptedApp;
use epa_core::campaign::CampaignOptions;
use epa_core::corpus::{synthesize, CorpusConfig, DEFAULT_CORPUS_SEED};
use epa_core::engine::Session;
use epa_core::report::{CampaignReport, FaultRecord};

/// Canonical digest of one record, excluding the `cache_hit`/`pruned`
/// provenance flags — the same observable surface the corpus differential
/// harness compares.
fn record_line(r: &FaultRecord) -> String {
    let violations = serde_json::to_string(&r.violations).expect("verdicts serialize");
    format!(
        "{}|{}|{}|{}|{:?}|{:?}|{}|{}",
        r.site, r.occurrence, r.fault_id, r.applied, r.exit, r.crashed, r.audit_events, violations
    )
}

fn lines(report: &CampaignReport) -> Vec<String> {
    report.records.iter().map(record_line).collect()
}

/// One cold pass over the whole standard suite under `options`: per-app
/// reports in registration order, plus the wall-clock.
fn cold_suite(options: &CampaignOptions) -> (Vec<CampaignReport>, u128) {
    let suite = epa_apps::standard_suite_with_options(options.clone()).expect("the case-study specs are valid");
    let start = Instant::now();
    let report = suite.execute();
    (report.reports, start.elapsed().as_nanos())
}

fn main() {
    let exhaustive_options = CampaignOptions {
        dedup: false,
        static_prune: false,
        max_occurrences_per_site: usize::MAX,
        ..CampaignOptions::default()
    };
    let planned_options = CampaignOptions {
        static_prune: false,
        ..CampaignOptions::default()
    };
    let pruned_options = CampaignOptions::default();
    assert!(pruned_options.static_prune, "static pruning is the default");

    // The standard suite, cold: occurrence-exhaustive vs planned vs pruned.
    let (exhaustive, exhaustive_ns) = cold_suite(&exhaustive_options);
    let (planned, _) = cold_suite(&planned_options);
    let (pruned, pruned_ns) = cold_suite(&pruned_options);
    assert_eq!(exhaustive.len(), pruned.len());
    assert_eq!(planned.len(), pruned.len());
    for ((e, n), p) in exhaustive.iter().zip(&planned).zip(&pruned) {
        // Pruning must be invisible: identical streams on the common plan.
        assert_eq!(
            lines(n),
            lines(p),
            "pruned suite verdicts diverged from the planned baseline on `{}`",
            n.app
        );
        // And the canonical plan's verdicts must all appear verbatim in the
        // occurrence-exhaustive stream (which additionally carries the
        // occurrence>0 strikes the canonical plan folds away).
        let superset: std::collections::BTreeSet<String> = lines(e).into_iter().collect();
        for line in lines(p) {
            assert!(
                superset.contains(&line),
                "pruned verdict missing from the exhaustive stream on `{}`: {line}",
                p.app
            );
        }
    }

    let injected: usize = exhaustive.iter().map(CampaignReport::injected).sum();
    let exhaustive_runs: usize = exhaustive.iter().map(CampaignReport::runs_executed).sum();
    let planned_runs: usize = planned.iter().map(CampaignReport::runs_executed).sum();
    let pruned_runs: usize = pruned.iter().map(CampaignReport::runs_executed).sum();
    let pruned_records: usize = pruned.iter().map(CampaignReport::pruned).sum();
    let reduction_pct = 100.0 * (exhaustive_runs - pruned_runs) as f64 / exhaustive_runs.max(1) as f64;
    let prune_only_pct = 100.0 * (planned_runs - pruned_runs) as f64 / planned_runs.max(1) as f64;

    // The corpus sweep: identical options modulo `static_prune`, so the
    // measured delta is the analyzer's alone.
    let config = CorpusConfig {
        seed: DEFAULT_CORPUS_SEED,
        count: 120,
    };
    assert!(config.count >= 100, "the soundness gate runs at 100+-scenario scale");
    let corpus = synthesize(&config);
    let mut corpus_injected = 0usize;
    let mut corpus_pruned = 0usize;
    for scenario in &corpus {
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        let app = ScriptedApp::for_scenario(scenario);
        let off = Session::from_setup(setup.clone())
            .with_options(planned_options.clone())
            .execute(&app);
        let on = Session::from_setup(setup)
            .with_options(pruned_options.clone())
            .execute(&app);
        assert_eq!(
            lines(&off),
            lines(&on),
            "pruned corpus verdicts diverged from exhaustive on {} (seed {:#x})",
            scenario.id,
            scenario.seed
        );
        corpus_injected += on.injected();
        corpus_pruned += on.pruned();
    }
    let corpus_pruned_pct = 100.0 * corpus_pruned as f64 / corpus_injected.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"analysis\",\n  \"suite\": {{\n    \"apps\": {},\n    \"injected\": {injected},\n    \
         \"exhaustive_runs\": {exhaustive_runs},\n    \"planned_runs\": {planned_runs},\n    \
         \"pruned_runs\": {pruned_runs},\n    \"pruned_records\": {pruned_records},\n    \
         \"reduction_pct\": {reduction_pct:.2},\n    \"prune_only_pct\": {prune_only_pct:.2},\n    \
         \"exhaustive_ns\": {exhaustive_ns},\n    \"pruned_ns\": {pruned_ns}\n  }},\n  \"corpus\": {{\n    \
         \"seed\": {},\n    \"scenarios\": {},\n    \"injected\": {corpus_injected},\n    \
         \"pruned_records\": {corpus_pruned},\n    \"pruned_pct\": {corpus_pruned_pct:.2},\n    \
         \"divergences\": 0\n  }}\n}}\n",
        exhaustive.len(),
        config.seed,
        config.count
    );
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_analysis.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "wrote {} (suite: {exhaustive_runs} -> {pruned_runs} runs, -{reduction_pct:.1}%; \
             corpus: {corpus_pruned}/{corpus_injected} pruned)",
            path.display()
        ),
        Err(e) => eprintln!("BENCH_analysis.json not written: {e}"),
    }

    assert!(
        reduction_pct >= 20.0,
        "the pre-pruned plan must cut executed runs by >= 20% on the cold suite (got {reduction_pct:.2}%)"
    );
    assert!(
        pruned_records > 0,
        "the analyzer must prove at least one suite job inert"
    );
    assert!(
        corpus_pruned > 0,
        "the analyzer must prove at least one corpus job inert"
    );
}
