//! The two-dimensional test-adequacy metric (paper §3.2, Figure 2).
//!
//! * **Interaction coverage** — how many of the application's environment
//!   interaction points were perturbed;
//! * **Fault coverage** — what fraction of the injected faults the
//!   application tolerated (no security violation).
//!
//! The paper's Figure 2 divides the plane into four regions around its four
//! sample points: tests with low interaction coverage are *inadequate*
//! regardless of fault coverage; high interaction coverage with low fault
//! coverage marks an *insecure* application; high/high is the *safe* region.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A ratio with explicit numerator/denominator (so reports can show counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ratio {
    /// Numerator.
    pub hits: usize,
    /// Denominator.
    pub total: usize,
}

impl Ratio {
    /// Builds a ratio.
    pub fn new(hits: usize, total: usize) -> Self {
        Ratio { hits, total }
    }

    /// The ratio as a float, or `None` for an empty denominator.
    ///
    /// An empty denominator means the quantity is *undefined*, not
    /// satisfied: callers must decide explicitly what vacuousness means for
    /// their metric ([`Ratio::value_or`]). The old `value()` accessor
    /// returned 1.0 here, which let a campaign over a world exposing zero
    /// interaction points report full interaction coverage and land in the
    /// Safe region of Figure 2 despite having tested nothing.
    pub fn fraction(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.hits as f64 / self.total as f64)
        }
    }

    /// The ratio as a float, with an explicit value for the empty
    /// denominator. Fault coverage passes 1.0 (vacuous truth: zero injected
    /// faults means zero intolerated faults); interaction coverage must
    /// never do so (see [`Ratio::fraction`]).
    pub fn value_or(&self, vacuous: f64) -> f64 {
        self.fraction().unwrap_or(vacuous)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.fraction() {
            Some(v) => write!(f, "{}/{} ({:.1}%)", self.hits, self.total, v * 100.0),
            None => write!(f, "{}/{} (n/a)", self.hits, self.total),
        }
    }
}

/// A point on the paper's Figure 2 plane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdequacyPoint {
    /// Interaction coverage in `[0, 1]`.
    pub interaction: f64,
    /// Fault coverage in `[0, 1]`.
    pub fault: f64,
    /// True when the campaign exposed **zero perturbable interaction
    /// points**, so interaction coverage is undefined. A vacuous point
    /// always classifies as [`AdequacyRegion::Inadequate`]: a test that
    /// perturbed nothing says nothing, no matter what its (equally vacuous)
    /// fault coverage reads.
    pub vacuous: bool,
}

impl AdequacyPoint {
    /// Builds a point, clamping both coordinates into `[0, 1]`.
    pub fn new(interaction: f64, fault: f64) -> Self {
        AdequacyPoint {
            interaction: interaction.clamp(0.0, 1.0),
            fault: fault.clamp(0.0, 1.0),
            vacuous: false,
        }
    }

    /// The point of a campaign with no perturbable interaction points:
    /// interaction coverage is undefined (rendered `n/a`, stored 0.0) and
    /// the point classifies as [`AdequacyRegion::Inadequate`] regardless of
    /// thresholds.
    pub fn vacuous(fault: f64) -> Self {
        AdequacyPoint {
            interaction: 0.0,
            fault: fault.clamp(0.0, 1.0),
            vacuous: true,
        }
    }

    /// Classifies the point against thresholds. A [`AdequacyPoint::vacuous`]
    /// point is always [`AdequacyRegion::Inadequate`].
    pub fn region(&self, thresholds: AdequacyThresholds) -> AdequacyRegion {
        if self.vacuous {
            return AdequacyRegion::Inadequate;
        }
        let ic_high = self.interaction >= thresholds.interaction_high;
        let fc_high = self.fault >= thresholds.fault_high;
        match (ic_high, fc_high) {
            (false, false) => AdequacyRegion::Inadequate,
            (false, true) => AdequacyRegion::InadequateNarrow,
            (true, false) => AdequacyRegion::Insecure,
            (true, true) => AdequacyRegion::Safe,
        }
    }
}

impl fmt::Display for AdequacyPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.vacuous {
            write!(f, "(interaction=n/a, fault={:.2})", self.fault)
        } else {
            write!(f, "(interaction={:.2}, fault={:.2})", self.interaction, self.fault)
        }
    }
}

/// Thresholds dividing Figure 2 into its four regions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdequacyThresholds {
    /// Interaction coverage at or above this counts as "high".
    pub interaction_high: f64,
    /// Fault coverage at or above this counts as "high".
    pub fault_high: f64,
}

impl Default for AdequacyThresholds {
    fn default() -> Self {
        AdequacyThresholds {
            interaction_high: 0.75,
            fault_high: 0.9,
        }
    }
}

/// The four qualitative regions of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdequacyRegion {
    /// Point 1: low interaction and fault coverage — the test says little.
    Inadequate,
    /// Point 2: high fault coverage but few interactions perturbed — the
    /// unperturbed interactions remain unknown, so still inadequate.
    InadequateNarrow,
    /// Point 3: interactions well covered and many faults *not* tolerated —
    /// the application is likely vulnerable.
    Insecure,
    /// Point 4: interactions well covered and faults tolerated.
    Safe,
}

impl AdequacyRegion {
    /// The paper's sample-point number for this region (Figure 2).
    pub fn figure2_point(&self) -> u8 {
        match self {
            AdequacyRegion::Inadequate => 1,
            AdequacyRegion::InadequateNarrow => 2,
            AdequacyRegion::Insecure => 3,
            AdequacyRegion::Safe => 4,
        }
    }
}

impl fmt::Display for AdequacyRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AdequacyRegion::Inadequate => "inadequate (low interaction, low fault coverage)",
            AdequacyRegion::InadequateNarrow => "inadequate (few interactions perturbed)",
            AdequacyRegion::Insecure => "insecure (faults not tolerated)",
            AdequacyRegion::Safe => "safe (high interaction and fault coverage)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty_denominator() {
        assert_eq!(Ratio::new(0, 0).fraction(), None);
        assert_eq!(Ratio::new(0, 0).value_or(1.0), 1.0);
        assert_eq!(Ratio::new(0, 0).value_or(0.0), 0.0);
        assert_eq!(Ratio::new(1, 2).fraction(), Some(0.5));
        assert_eq!(Ratio::new(1, 2).value_or(1.0), 0.5);
        assert_eq!(Ratio::new(3, 4).to_string(), "3/4 (75.0%)");
    }

    #[test]
    fn empty_denominator_renders_na_not_100_percent() {
        assert_eq!(Ratio::new(0, 0).to_string(), "0/0 (n/a)");
    }

    #[test]
    fn vacuous_point_is_never_safe() {
        let t = AdequacyThresholds::default();
        let p = AdequacyPoint::vacuous(1.0);
        assert_eq!(p.region(t), AdequacyRegion::Inadequate);
        assert_eq!(p.region(t).figure2_point(), 1);
        // Even absurdly lax thresholds cannot move a vacuous point.
        let lax = AdequacyThresholds {
            interaction_high: 0.0,
            fault_high: 0.0,
        };
        assert_eq!(p.region(lax), AdequacyRegion::Inadequate);
        assert_eq!(p.to_string(), "(interaction=n/a, fault=1.00)");
    }

    #[test]
    fn four_regions_match_figure2_points() {
        let t = AdequacyThresholds::default();
        assert_eq!(AdequacyPoint::new(0.2, 0.3).region(t), AdequacyRegion::Inadequate);
        assert_eq!(
            AdequacyPoint::new(0.2, 0.95).region(t),
            AdequacyRegion::InadequateNarrow
        );
        assert_eq!(AdequacyPoint::new(0.9, 0.5).region(t), AdequacyRegion::Insecure);
        assert_eq!(AdequacyPoint::new(1.0, 1.0).region(t), AdequacyRegion::Safe);
        assert_eq!(AdequacyPoint::new(1.0, 1.0).region(t).figure2_point(), 4);
        assert_eq!(AdequacyPoint::new(0.1, 0.1).region(t).figure2_point(), 1);
    }

    #[test]
    fn point_clamps() {
        let p = AdequacyPoint::new(1.7, -0.3);
        assert_eq!(p.interaction, 1.0);
        assert_eq!(p.fault, 0.0);
    }

    #[test]
    fn thresholds_are_inclusive() {
        let t = AdequacyThresholds::default();
        assert_eq!(AdequacyPoint::new(0.75, 0.9).region(t), AdequacyRegion::Safe);
    }
}
