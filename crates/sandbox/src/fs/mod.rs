//! The virtual file system.
//!
//! An in-memory UNIX-like file system with inodes, directories, symbolic
//! links, permission bits, ownership, and sticky-bit deletion semantics —
//! everything Table 6 of the paper perturbs. Resolution is *physical*:
//! `..` follows the real parent chain even across symlinked directories,
//! and `creat` follows a final symlink (the behaviour the classic
//! symlink-swap attacks depend on).
//!
//! Two API layers coexist:
//!
//! * **Checked operations** take [`Credentials`] and enforce permissions the
//!   way the real kernel would; these are what [`crate::os::Os`] dispatches
//!   application syscalls through.
//! * **God-mode helpers** (`mkdir_p`, `put_file`, `god_*`) bypass checks;
//!   world builders use them for setup and the fault injector uses them to
//!   perturb the environment ("the attacker could have arranged this").
//!
//! # Copy-on-write snapshots
//!
//! The inode table is `Arc`-backed at two levels (the table itself and each
//! inode), so `Vfs::clone` is O(1) and the first mutation of a shared
//! snapshot pays only for the inodes it actually touches. Campaigns exploit
//! this by freezing one pristine world and cloning it per injected fault;
//! [`Vfs::deep_clone`] materializes a fully independent copy for callers
//! that need one (and for the deep-clone-vs-snapshot benches).

mod inode;

pub use inode::{FileKind, FileTag, FileType, Inode, InodeId, Stat};

use shim_sync::sync::Arc;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::cred::{Credentials, Gid, Uid};
use crate::data::Data;
use crate::error::{Errno, SysResult};
use crate::intern::{self, PathSym};
use crate::mode::{Access, Mode};
use crate::path;
use crate::syserr;

/// Maximum symlink expansions in a single resolution (mirrors `SYMLOOP_MAX`).
const SYMLINK_BUDGET: usize = 40;

/// Maximum length of a single path component (mirrors `NAME_MAX`) — the
/// limit "change length" perturbations push file names past.
pub const NAME_MAX: usize = 255;

/// Result of a successful path walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walked {
    /// The resolved inode.
    pub id: InodeId,
    /// Physical absolute path of the resolved inode (symlinks expanded),
    /// as an interned symbol — `Copy`, and allocation-free to propagate
    /// into audit events.
    pub physical: PathSym,
    /// The physical parent directory (root's parent is root).
    pub parent: InodeId,
}

/// Result of resolving everything but the final component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParentWalk {
    /// Inode of the parent directory.
    pub dir: InodeId,
    /// Physical path of the parent directory (interned).
    pub dir_physical: PathSym,
    /// The final path component, unresolved.
    pub name: String,
}

/// The virtual file system.
///
/// `clone` is a copy-on-write snapshot: the inode table is shared until
/// either copy mutates, and a mutation deep-copies only the touched inodes
/// (plus one table of pointers). Use [`Vfs::deep_clone`] when a fully
/// materialized copy is required.
#[derive(Debug, Clone)]
pub struct Vfs {
    inodes: Arc<BTreeMap<u64, Arc<Inode>>>,
    root: InodeId,
    next_id: u64,
    /// Reverse index `child → (parent, entry name)`, maintained by the
    /// [`Vfs::link_child`]/[`Vfs::unlink_child`] helpers so
    /// [`Vfs::path_of`] is O(depth) instead of a full-tree search. Pure
    /// derived data: excluded from equality and serialization (rebuilt
    /// on deserialize).
    parents: Arc<BTreeMap<u64, (InodeId, PathSym)>>,
}

impl PartialEq for Vfs {
    fn eq(&self, other: &Vfs) -> bool {
        // `parents` is derived from the tree; comparing it would only
        // re-state what `inodes` already says.
        self.inodes == other.inodes && self.root == other.root && self.next_id == other.next_id
    }
}

impl Eq for Vfs {}

impl Serialize for Vfs {
    fn ser(&self) -> serde::Value {
        // Mirrors the old derived layout exactly (three fields, in
        // declaration order) so serialized worlds are byte-identical.
        serde::Value::Map(vec![
            (String::from("inodes"), self.inodes.ser()),
            (String::from("root"), self.root.ser()),
            (String::from("next_id"), self.next_id.ser()),
        ])
    }
}

impl Deserialize for Vfs {
    fn de(v: &serde::Value) -> Result<Vfs, serde::DeError> {
        let map = v.as_map().ok_or_else(|| serde::DeError::expected("map", "Vfs"))?;
        let mut vfs = Vfs {
            inodes: Deserialize::de(serde::field(map, "inodes", "Vfs")?)?,
            root: Deserialize::de(serde::field(map, "root", "Vfs")?)?,
            next_id: Deserialize::de(serde::field(map, "next_id", "Vfs")?)?,
            parents: Arc::new(BTreeMap::new()),
        };
        vfs.rebuild_parents();
        Ok(vfs)
    }
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a file system containing only `/` (root-owned, mode 0755).
    pub fn new() -> Self {
        let mut inodes = BTreeMap::new();
        let root = InodeId(1);
        inodes.insert(
            1,
            Arc::new(Inode {
                id: root,
                kind: FileKind::Directory(BTreeMap::new()),
                owner: Uid::ROOT,
                group: Gid::ROOT,
                mode: Mode::new(0o755),
                tags: BTreeSet::new(),
            }),
        );
        Vfs {
            inodes: Arc::new(inodes),
            root,
            next_id: 2,
            parents: Arc::new(BTreeMap::new()),
        }
    }

    /// The root directory inode.
    pub fn root(&self) -> InodeId {
        self.root
    }

    /// The inode table, unsharing it from any sibling snapshot first.
    fn table_mut(&mut self) -> &mut BTreeMap<u64, Arc<Inode>> {
        Arc::make_mut(&mut self.inodes)
    }

    /// Borrow an inode.
    pub fn inode(&self, id: InodeId) -> SysResult<&Inode> {
        self.inodes
            .get(&id.0)
            .map(Arc::as_ref)
            .ok_or_else(|| syserr!(Ebadf, "stale inode {id}"))
    }

    /// Mutably borrow an inode, copy-on-write: a shared inode is deep-copied
    /// before the mutable borrow is handed out.
    pub fn inode_mut(&mut self, id: InodeId) -> SysResult<&mut Inode> {
        self.table_mut()
            .get_mut(&id.0)
            .map(Arc::make_mut)
            .ok_or_else(|| syserr!(Ebadf, "stale inode {id}"))
    }

    /// Total number of live inodes.
    pub fn inode_count(&self) -> usize {
        self.inodes.len()
    }

    /// A fully materialized copy sharing no storage with `self` — the
    /// pre-snapshot per-fault setup cost, kept for equivalence tests and
    /// benches.
    pub fn deep_clone(&self) -> Vfs {
        Vfs {
            inodes: Arc::new(self.inodes.iter().map(|(k, v)| (*k, Arc::new((**v).clone()))).collect()),
            root: self.root,
            next_id: self.next_id,
            parents: Arc::new((*self.parents).clone()),
        }
    }

    /// Recomputes the `child → (parent, name)` reverse index from the
    /// tree (used after deserialization, where only the tree travels).
    fn rebuild_parents(&mut self) {
        let mut parents = BTreeMap::new();
        let mut seen: BTreeSet<u64> = BTreeSet::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id.0) {
                continue;
            }
            if let Some(entries) = self.inodes.get(&id.0).and_then(|i| i.entries()) {
                for (name, child) in entries {
                    parents.insert(child.0, (id, intern::intern(name)));
                    stack.push(*child);
                }
            }
        }
        self.parents = Arc::new(parents);
    }

    /// Inserts `child` under `dir` as `name`, keeping the reverse index
    /// in sync. Returns the entry the insert displaced, if any.
    fn link_child(&mut self, dir: InodeId, name: &str, child: InodeId) -> SysResult<Option<InodeId>> {
        let replaced = self
            .inode_mut(dir)?
            .entries_mut()
            .expect("link_child target is a directory")
            .insert(name.to_string(), child);
        let parents = Arc::make_mut(&mut self.parents);
        if let Some(old) = replaced {
            parents.remove(&old.0);
        }
        parents.insert(child.0, (dir, intern::intern(name)));
        Ok(replaced)
    }

    /// Removes `name` from `dir`, keeping the reverse index in sync.
    /// Returns the unlinked inode, if the entry existed.
    fn unlink_child(&mut self, dir: InodeId, name: &str) -> SysResult<Option<InodeId>> {
        let removed = self
            .inode_mut(dir)?
            .entries_mut()
            .expect("unlink_child target is a directory")
            .remove(name);
        if let Some(id) = removed {
            Arc::make_mut(&mut self.parents).remove(&id.0);
        }
        Ok(removed)
    }

    /// Number of inodes whose storage is physically shared with `other`
    /// (copy-on-write introspection; equal content in distinct allocations
    /// does not count).
    pub fn shared_inodes_with(&self, other: &Vfs) -> usize {
        if Arc::ptr_eq(&self.inodes, &other.inodes) {
            return self.inodes.len();
        }
        self.inodes
            .iter()
            .filter(|(k, v)| other.inodes.get(k).is_some_and(|o| Arc::ptr_eq(v, o)))
            .count()
    }

    fn alloc(&mut self, kind: FileKind, owner: Uid, group: Gid, mode: Mode) -> InodeId {
        let id = InodeId(self.next_id);
        self.next_id += 1;
        self.table_mut().insert(
            id.0,
            Arc::new(Inode {
                id,
                kind,
                owner,
                group,
                mode,
                tags: BTreeSet::new(),
            }),
        );
        id
    }

    /// Checks whether `cred` holds `access` on `id`.
    pub fn grants(&self, id: InodeId, cred: &Credentials, access: Access) -> SysResult<bool> {
        let ino = self.inode(id)?;
        Ok(ino.mode.grants(ino.owner, ino.group, cred, access))
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    /// Physically walks an absolute path.
    ///
    /// * `follow_last` — whether a final symlink is expanded (`stat` vs
    ///   `lstat`, `open` vs `unlink`).
    /// * `cred` — when given, directory traversal requires execute
    ///   permission on each directory, as the kernel enforces.
    ///
    /// # Errors
    ///
    /// `ENOENT` for missing components, `ENOTDIR` when a non-directory is
    /// used as one, `ELOOP` after 40 symlink expansions, `EACCES` on a
    /// traversal-permission failure, `EINVAL` for relative paths.
    pub fn walk(&self, abs_path: &str, follow_last: bool, cred: Option<&Credentials>) -> SysResult<Walked> {
        if !path::is_absolute(abs_path) {
            return Err(syserr!(Einval, "walk requires absolute path, got {abs_path}"));
        }
        // Components are interned symbols: a re-walked path pays zero
        // allocations — every name and every prefix is already in the
        // symbol table from the first walk.
        let mut queue: VecDeque<PathSym> = path::components(abs_path).map(intern::intern).collect();
        // Parallel stacks of inodes and resolved-prefix symbols.
        let mut inode_stack: Vec<InodeId> = vec![self.root];
        let mut path_stack: Vec<PathSym> = vec![PathSym::root()];
        let mut budget = SYMLINK_BUDGET;

        while let Some(comp) = queue.pop_front() {
            if comp.len() > NAME_MAX {
                return Err(syserr!(Enametoolong, "component of {abs_path}"));
            }
            match comp.as_str() {
                "." => continue,
                ".." => {
                    if inode_stack.len() > 1 {
                        inode_stack.pop();
                        path_stack.pop();
                    }
                    continue;
                }
                _ => {}
            }
            let cur = *inode_stack.last().expect("stack never empty");
            let here = *path_stack.last().expect("stack never empty");
            let cur_ino = self.inode(cur)?;
            let entries = cur_ino.entries().ok_or_else(|| syserr!(Enotdir, "{here}"))?;
            if let Some(c) = cred {
                if !cur_ino.mode.grants(cur_ino.owner, cur_ino.group, c, Access::Exec) {
                    return Err(syserr!(Eacces, "search permission denied in {here}"));
                }
            }
            let child = *entries
                .get(comp.as_str())
                .ok_or_else(|| syserr!(Enoent, "{here}/{comp}"))?;
            let child_ino = self.inode(child)?;
            let is_last = queue.is_empty();
            if child_ino.is_symlink() && (!is_last || follow_last) {
                if budget == 0 {
                    return Err(syserr!(Eloop, "{abs_path}"));
                }
                budget -= 1;
                let (target_comps, target_abs) = match &child_ino.kind {
                    FileKind::Symlink(t) => (
                        path::components(t).map(intern::intern).collect::<Vec<PathSym>>(),
                        path::is_absolute(t),
                    ),
                    _ => unreachable!(),
                };
                if target_abs {
                    inode_stack.truncate(1);
                    path_stack.truncate(1);
                }
                for c in target_comps.into_iter().rev() {
                    queue.push_front(c);
                }
                continue;
            }
            inode_stack.push(child);
            path_stack.push(here.join(&comp));
        }

        let id = *inode_stack.last().expect("stack never empty");
        let parent = if inode_stack.len() >= 2 {
            inode_stack[inode_stack.len() - 2]
        } else {
            self.root
        };
        Ok(Walked {
            id,
            physical: *path_stack.last().expect("stack never empty"),
            parent,
        })
    }

    /// Resolves the parent directory of `abs_path`, leaving the final
    /// component unresolved (for `creat`, `unlink`, `symlink`, `rename`).
    ///
    /// # Errors
    ///
    /// As [`Vfs::walk`]; additionally `EINVAL` when the final component is
    /// `.` or `..` or the path has no components.
    pub fn walk_parent(&self, abs_path: &str, cred: Option<&Credentials>) -> SysResult<ParentWalk> {
        if !path::is_absolute(abs_path) {
            return Err(syserr!(Einval, "walk_parent requires absolute path, got {abs_path}"));
        }
        let comps: Vec<&str> = path::components(abs_path).collect();
        let name = match comps.last() {
            Some(n) if *n != "." && *n != ".." => (*n).to_string(),
            _ => return Err(syserr!(Einval, "bad final component in {abs_path}")),
        };
        if name.len() > NAME_MAX {
            return Err(syserr!(Enametoolong, "{abs_path}"));
        }
        let parent_path = if comps.len() == 1 {
            "/".to_string()
        } else {
            format!("/{}", comps[..comps.len() - 1].join("/"))
        };
        let walked = self.walk(&parent_path, true, cred)?;
        let dir_ino = self.inode(walked.id)?;
        if !dir_ino.is_dir() {
            return Err(syserr!(Enotdir, "{parent_path}"));
        }
        Ok(ParentWalk {
            dir: walked.id,
            dir_physical: walked.physical,
            name,
        })
    }

    /// Reconstructs the physical path of an inode by following the
    /// parent-link index upward — O(depth), not a tree search (the old
    /// BFS cloned the full name trail per visited node).
    pub fn path_of(&self, id: InodeId) -> Option<PathSym> {
        if id == self.root {
            return Some(PathSym::root());
        }
        let mut names: Vec<PathSym> = Vec::new();
        let mut cur = id;
        while cur != self.root {
            let (parent, name) = *self.parents.get(&cur.0)?;
            names.push(name);
            cur = parent;
        }
        let mut p = PathSym::root();
        for name in names.iter().rev() {
            p = p.join(name);
        }
        Some(p)
    }

    // ------------------------------------------------------------------
    // Checked operations (credential-enforcing)
    // ------------------------------------------------------------------

    /// Opens an existing file for reading (follows symlinks).
    ///
    /// # Errors
    ///
    /// `EACCES` without read permission; `EISDIR` for directories; plus any
    /// resolution error.
    pub fn open_read(&self, abs_path: &str, cred: &Credentials) -> SysResult<Walked> {
        let w = self.walk(abs_path, true, Some(cred))?;
        let ino = self.inode(w.id)?;
        if ino.is_dir() {
            return Err(syserr!(Eisdir, "{abs_path}"));
        }
        if !ino.mode.grants(ino.owner, ino.group, cred, Access::Read) {
            return Err(syserr!(Eacces, "{abs_path}"));
        }
        Ok(w)
    }

    /// `creat(2)` semantics: follows a final symlink; truncates an existing
    /// file (needs write permission on it); otherwise creates a fresh file
    /// in the parent (needs write permission on the parent).
    ///
    /// Returns the walked target and whether it existed before.
    ///
    /// # Errors
    ///
    /// `EACCES`/`EISDIR`/resolution errors as appropriate.
    pub fn creat(&mut self, abs_path: &str, mode: Mode, cred: &Credentials, umask: u16) -> SysResult<(Walked, bool)> {
        self.creat_inner(abs_path, mode, cred, umask, SYMLINK_BUDGET)
    }

    fn creat_inner(
        &mut self,
        abs_path: &str,
        mode: Mode,
        cred: &Credentials,
        umask: u16,
        depth: usize,
    ) -> SysResult<(Walked, bool)> {
        match self.walk(abs_path, true, Some(cred)) {
            Ok(w) => {
                let ino = self.inode(w.id)?;
                if ino.is_dir() {
                    return Err(syserr!(Eisdir, "{abs_path}"));
                }
                if !ino.mode.grants(ino.owner, ino.group, cred, Access::Write) {
                    return Err(syserr!(Eacces, "{abs_path}"));
                }
                let ino = self.inode_mut(w.id)?;
                if let FileKind::Regular(d) = &mut ino.kind {
                    *d = Data::new();
                }
                Ok((w, true))
            }
            Err(e) if e.errno == Errno::Enoent => {
                // A dangling symlink at the final component: `creat` creates
                // the *target* (POSIX `open(O_CREAT)` semantics) — the path
                // the planted-symlink perturbations rely on.
                if let Ok(lw) = self.walk(abs_path, false, Some(cred)) {
                    if let FileKind::Symlink(target) = &self.inode(lw.id)?.kind {
                        if depth == 0 {
                            return Err(syserr!(Eloop, "{abs_path}"));
                        }
                        let target = target.clone();
                        let target_abs = if path::is_absolute(&target) {
                            target
                        } else {
                            let parent = path::parent(&lw.physical).unwrap_or_else(|| "/".to_string());
                            path::join(&parent, &target)
                        };
                        return self.creat_inner(&target_abs, mode, cred, umask, depth - 1);
                    }
                }
                let (w, _) = self.create_in_parent(abs_path, mode, cred, umask)?;
                Ok((w, false))
            }
            Err(e) => Err(e),
        }
    }

    /// `open(O_CREAT|O_EXCL)` semantics: fails with `EEXIST` if the final
    /// component exists *at all*, including as a dangling symlink — the
    /// secure temp-file idiom.
    ///
    /// # Errors
    ///
    /// `EEXIST` when the path exists; otherwise as [`Vfs::creat`].
    pub fn create_excl(&mut self, abs_path: &str, mode: Mode, cred: &Credentials, umask: u16) -> SysResult<Walked> {
        if self.walk(abs_path, false, Some(cred)).is_ok() {
            return Err(syserr!(Eexist, "{abs_path}"));
        }
        let (w, _) = self.create_in_parent(abs_path, mode, cred, umask)?;
        Ok(w)
    }

    fn create_in_parent(
        &mut self,
        abs_path: &str,
        mode: Mode,
        cred: &Credentials,
        umask: u16,
    ) -> SysResult<(Walked, InodeId)> {
        let pw = self.walk_parent(abs_path, Some(cred))?;
        let dir_ino = self.inode(pw.dir)?;
        if !dir_ino.mode.grants(dir_ino.owner, dir_ino.group, cred, Access::Write) {
            return Err(syserr!(Eacces, "cannot create in {}", pw.dir_physical));
        }
        if dir_ino
            .entries()
            .expect("parent checked to be a directory")
            .contains_key(&pw.name)
        {
            return Err(syserr!(Eexist, "{abs_path}"));
        }
        let id = self.alloc(
            FileKind::Regular(Data::new()),
            cred.euid,
            cred.egid,
            mode.apply_umask(umask),
        );
        self.link_child(pw.dir, &pw.name, id)?;
        Ok((
            Walked {
                id,
                physical: pw.dir_physical.join(&pw.name),
                parent: pw.dir,
            },
            id,
        ))
    }

    /// Reads a file's content (no permission check — callers check via
    /// [`Vfs::open_read`] first, mirroring the fd model).
    pub fn read(&self, id: InodeId) -> SysResult<Data> {
        match &self.inode(id)?.kind {
            FileKind::Regular(d) => Ok(d.clone()),
            _ => Err(syserr!(Eisdir, "read on non-regular inode {id}")),
        }
    }

    /// Overwrites or appends to a file's content.
    pub fn write(&mut self, id: InodeId, data: &Data, append: bool) -> SysResult<()> {
        match &mut self.inode_mut(id)?.kind {
            FileKind::Regular(d) => {
                if append {
                    d.append(data);
                } else {
                    *d = data.clone();
                }
                Ok(())
            }
            _ => Err(syserr!(Eisdir, "write on non-regular inode {id}")),
        }
    }

    /// Removes a directory entry (does not follow a final symlink).
    ///
    /// Enforces write permission on the parent directory and the sticky-bit
    /// rule: in a sticky directory only the entry's owner, the directory's
    /// owner, or root may unlink.
    ///
    /// Returns the `Stat` of the removed object.
    pub fn unlink(&mut self, abs_path: &str, cred: &Credentials) -> SysResult<Stat> {
        let pw = self.walk_parent(abs_path, Some(cred))?;
        let dir_ino = self.inode(pw.dir)?;
        if !dir_ino.mode.grants(dir_ino.owner, dir_ino.group, cred, Access::Write) {
            return Err(syserr!(Eacces, "{abs_path}"));
        }
        let target = *dir_ino
            .entries()
            .expect("parent is a directory")
            .get(&pw.name)
            .ok_or_else(|| syserr!(Enoent, "{abs_path}"))?;
        let target_ino = self.inode(target)?;
        if target_ino.is_dir() {
            return Err(syserr!(Eisdir, "{abs_path}"));
        }
        if dir_ino.mode.is_sticky()
            && !cred.euid.is_root()
            && cred.euid != target_ino.owner
            && cred.euid != dir_ino.owner
        {
            return Err(syserr!(Eperm, "sticky: {abs_path}"));
        }
        let st = Stat::of(target_ino);
        self.unlink_child(pw.dir, &pw.name)?;
        self.table_mut().remove(&target.0);
        Ok(st)
    }

    /// Creates a directory.
    pub fn mkdir(&mut self, abs_path: &str, mode: Mode, cred: &Credentials, umask: u16) -> SysResult<Walked> {
        if self.walk(abs_path, false, Some(cred)).is_ok() {
            return Err(syserr!(Eexist, "{abs_path}"));
        }
        let pw = self.walk_parent(abs_path, Some(cred))?;
        let dir_ino = self.inode(pw.dir)?;
        if !dir_ino.mode.grants(dir_ino.owner, dir_ino.group, cred, Access::Write) {
            return Err(syserr!(Eacces, "cannot mkdir in {}", pw.dir_physical));
        }
        let id = self.alloc(
            FileKind::Directory(BTreeMap::new()),
            cred.euid,
            cred.egid,
            mode.apply_umask(umask),
        );
        self.link_child(pw.dir, &pw.name, id)?;
        Ok(Walked {
            id,
            physical: pw.dir_physical.join(&pw.name),
            parent: pw.dir,
        })
    }

    /// Creates a symbolic link at `link` pointing at `target` (text).
    pub fn symlink(&mut self, target: &str, link: &str, cred: &Credentials) -> SysResult<Walked> {
        if self.walk(link, false, Some(cred)).is_ok() {
            return Err(syserr!(Eexist, "{link}"));
        }
        let pw = self.walk_parent(link, Some(cred))?;
        let dir_ino = self.inode(pw.dir)?;
        if !dir_ino.mode.grants(dir_ino.owner, dir_ino.group, cred, Access::Write) {
            return Err(syserr!(Eacces, "cannot symlink in {}", pw.dir_physical));
        }
        let id = self.alloc(
            FileKind::Symlink(target.to_string()),
            cred.euid,
            cred.egid,
            Mode::new(0o777),
        );
        self.link_child(pw.dir, &pw.name, id)?;
        Ok(Walked {
            id,
            physical: pw.dir_physical.join(&pw.name),
            parent: pw.dir,
        })
    }

    /// Reads a symlink's target text.
    pub fn readlink(&self, abs_path: &str, cred: &Credentials) -> SysResult<String> {
        let w = self.walk(abs_path, false, Some(cred))?;
        match &self.inode(w.id)?.kind {
            FileKind::Symlink(t) => Ok(t.clone()),
            _ => Err(syserr!(Einval, "{abs_path} is not a symlink")),
        }
    }

    /// Renames a file or symlink. Both parents need write permission.
    pub fn rename(&mut self, from: &str, to: &str, cred: &Credentials) -> SysResult<()> {
        let from_pw = self.walk_parent(from, Some(cred))?;
        let to_pw = self.walk_parent(to, Some(cred))?;
        for dirid in [from_pw.dir, to_pw.dir] {
            let d = self.inode(dirid)?;
            if !d.mode.grants(d.owner, d.group, cred, Access::Write) {
                return Err(syserr!(Eacces, "rename {from} -> {to}"));
            }
        }
        let moving = {
            let d = self.inode(from_pw.dir)?;
            *d.entries()
                .expect("parent is a directory")
                .get(&from_pw.name)
                .ok_or_else(|| syserr!(Enoent, "{from}"))?
        };
        self.unlink_child(from_pw.dir, &from_pw.name)?;
        self.link_child(to_pw.dir, &to_pw.name, moving)?;
        Ok(())
    }

    /// Changes permission bits; only the owner or root may do this.
    pub fn chmod(&mut self, abs_path: &str, mode: Mode, cred: &Credentials) -> SysResult<()> {
        let w = self.walk(abs_path, true, Some(cred))?;
        let ino = self.inode_mut(w.id)?;
        if !cred.euid.is_root() && cred.euid != ino.owner {
            return Err(syserr!(Eperm, "{abs_path}"));
        }
        ino.mode = mode;
        Ok(())
    }

    /// Changes ownership; only root may do this.
    pub fn chown(&mut self, abs_path: &str, owner: Uid, group: Gid, cred: &Credentials) -> SysResult<()> {
        if !cred.euid.is_root() {
            return Err(syserr!(Eperm, "{abs_path}"));
        }
        let w = self.walk(abs_path, true, Some(cred))?;
        let ino = self.inode_mut(w.id)?;
        ino.owner = owner;
        ino.group = group;
        Ok(())
    }

    /// `stat` (follows symlinks).
    pub fn stat(&self, abs_path: &str, cred: Option<&Credentials>) -> SysResult<Stat> {
        let w = self.walk(abs_path, true, cred)?;
        Ok(Stat::of(self.inode(w.id)?))
    }

    /// `lstat` (does not follow a final symlink).
    pub fn lstat(&self, abs_path: &str, cred: Option<&Credentials>) -> SysResult<Stat> {
        let w = self.walk(abs_path, false, cred)?;
        Ok(Stat::of(self.inode(w.id)?))
    }

    /// Lists a directory's entry names (requires read permission).
    pub fn list_dir(&self, abs_path: &str, cred: &Credentials) -> SysResult<Vec<String>> {
        let w = self.walk(abs_path, true, Some(cred))?;
        let ino = self.inode(w.id)?;
        if !ino.mode.grants(ino.owner, ino.group, cred, Access::Read) {
            return Err(syserr!(Eacces, "{abs_path}"));
        }
        ino.entries()
            .map(|e| e.keys().cloned().collect())
            .ok_or_else(|| syserr!(Enotdir, "{abs_path}"))
    }

    /// True when the path exists (lstat semantics, god-mode).
    pub fn exists(&self, abs_path: &str) -> bool {
        self.walk(abs_path, false, None).is_ok()
    }

    // ------------------------------------------------------------------
    // God-mode helpers (world building & fault injection)
    // ------------------------------------------------------------------

    /// Creates every missing directory along `abs_path` with the given
    /// owner and mode. Existing components are left untouched.
    pub fn mkdir_p(&mut self, abs_path: &str, owner: Uid, group: Gid, mode: Mode) -> SysResult<InodeId> {
        if !path::is_absolute(abs_path) {
            return Err(syserr!(Einval, "{abs_path}"));
        }
        let mut cur = self.root;
        let comps: Vec<String> = path::components(abs_path).map(str::to_string).collect();
        for comp in comps {
            let existing = {
                let ino = self.inode(cur)?;
                let entries = ino.entries().ok_or_else(|| syserr!(Enotdir, "{abs_path}"))?;
                entries.get(&comp).copied()
            };
            cur = match existing {
                Some(id) => id,
                None => {
                    let id = self.alloc(FileKind::Directory(BTreeMap::new()), owner, group, mode);
                    self.link_child(cur, &comp, id)?;
                    id
                }
            };
        }
        Ok(cur)
    }

    /// Installs (or replaces) a regular file with the given content,
    /// creating parents root-owned 0755 as needed.
    pub fn put_file(
        &mut self,
        abs_path: &str,
        content: impl Into<Data>,
        owner: Uid,
        group: Gid,
        mode: Mode,
    ) -> SysResult<InodeId> {
        let parent_path = path::parent(abs_path).ok_or_else(|| syserr!(Einval, "{abs_path}"))?;
        let dir = self.mkdir_p(&parent_path, Uid::ROOT, Gid::ROOT, Mode::new(0o755))?;
        let name = path::file_name(abs_path)
            .ok_or_else(|| syserr!(Einval, "{abs_path}"))?
            .to_string();
        // Replace any existing entry (link_child drops the displaced
        // entry's parent link; the inode itself is dropped here).
        if let Some(old) = self.inode(dir)?.entries().and_then(|e| e.get(&name)).copied() {
            self.table_mut().remove(&old.0);
        }
        let id = self.alloc(FileKind::Regular(content.into()), owner, group, mode);
        self.link_child(dir, &name, id)?;
        Ok(id)
    }

    /// Removes a path unconditionally (no permission checks). Directories
    /// are removed recursively.
    pub fn god_remove(&mut self, abs_path: &str) -> SysResult<()> {
        let pw = self.walk_parent(abs_path, None)?;
        let target = {
            let d = self.inode(pw.dir)?;
            *d.entries()
                .expect("parent is a directory")
                .get(&pw.name)
                .ok_or_else(|| syserr!(Enoent, "{abs_path}"))?
        };
        self.unlink_child(pw.dir, &pw.name)?;
        // Recursively drop unreachable children (and their parent links).
        let mut stack = vec![target];
        while let Some(id) = stack.pop() {
            Arc::make_mut(&mut self.parents).remove(&id.0);
            if let Some(ino) = self.table_mut().remove(&id.0) {
                if let FileKind::Directory(entries) = &ino.kind {
                    stack.extend(entries.values().copied());
                }
            }
        }
        Ok(())
    }

    /// Replaces whatever is at `abs_path` with a symlink to `target`
    /// (the symlink-swap perturbation).
    pub fn god_symlink(&mut self, abs_path: &str, target: &str) -> SysResult<InodeId> {
        if self.exists(abs_path) {
            self.god_remove(abs_path)?;
        }
        let parent_path = path::parent(abs_path).ok_or_else(|| syserr!(Einval, "{abs_path}"))?;
        let dir = self.mkdir_p(&parent_path, Uid::ROOT, Gid::ROOT, Mode::new(0o755))?;
        let name = path::file_name(abs_path)
            .ok_or_else(|| syserr!(Einval, "{abs_path}"))?
            .to_string();
        let id = self.alloc(
            FileKind::Symlink(target.to_string()),
            Uid::ROOT,
            Gid::ROOT,
            Mode::new(0o777),
        );
        self.link_child(dir, &name, id)?;
        Ok(id)
    }

    /// Changes owner unconditionally.
    pub fn god_chown(&mut self, abs_path: &str, owner: Uid, group: Gid) -> SysResult<()> {
        let w = self.walk(abs_path, false, None)?;
        let ino = self.inode_mut(w.id)?;
        ino.owner = owner;
        ino.group = group;
        Ok(())
    }

    /// Changes mode unconditionally.
    pub fn god_chmod(&mut self, abs_path: &str, mode: Mode) -> SysResult<()> {
        let w = self.walk(abs_path, false, None)?;
        self.inode_mut(w.id)?.mode = mode;
        Ok(())
    }

    /// Overwrites content unconditionally (follows symlinks).
    pub fn god_write(&mut self, abs_path: &str, content: impl Into<Data>) -> SysResult<()> {
        let w = self.walk(abs_path, true, None)?;
        match &mut self.inode_mut(w.id)?.kind {
            FileKind::Regular(d) => {
                *d = content.into();
                Ok(())
            }
            _ => Err(syserr!(Eisdir, "{abs_path}")),
        }
    }

    /// Attaches an oracle tag to a path (follows symlinks).
    pub fn tag(&mut self, abs_path: &str, tag: FileTag) -> SysResult<()> {
        let w = self.walk(abs_path, true, None)?;
        self.inode_mut(w.id)?.tags.insert(tag);
        Ok(())
    }

    /// Reads content by path without permission checks (oracle/test use).
    pub fn god_read(&self, abs_path: &str) -> SysResult<Data> {
        let w = self.walk(abs_path, true, None)?;
        self.read(w.id)
    }

    /// Verifies internal consistency: every directory entry points at a
    /// live inode, every non-root inode is reachable, and the parent-link
    /// index mirrors the tree exactly. Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut reachable: BTreeSet<u64> = BTreeSet::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            if !reachable.insert(id.0) {
                continue;
            }
            let ino = self
                .inodes
                .get(&id.0)
                .map(Arc::as_ref)
                .ok_or(format!("dangling entry to {id}"))?;
            if let Some(entries) = ino.entries() {
                for (name, child) in entries {
                    match self.parents.get(&child.0) {
                        Some((p, n)) if *p == id && n.as_str() == name => {}
                        other => return Err(format!("parent link for {child} is {other:?}, expected ({id}, {name})")),
                    }
                    stack.push(*child);
                }
            }
        }
        for id in self.inodes.keys() {
            if !reachable.contains(id) {
                return Err(format!("orphan inode ino:{id}"));
            }
        }
        if self.parents.len() != reachable.len() - 1 {
            return Err(format!(
                "parent index has {} entries for {} non-root inodes",
                self.parents.len(),
                reachable.len() - 1
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(uid: u32) -> Credentials {
        Credentials::user(Uid(uid), Gid(uid))
    }

    fn setup() -> Vfs {
        let mut fs = Vfs::new();
        fs.mkdir_p("/etc", Uid::ROOT, Gid::ROOT, Mode::new(0o755)).unwrap();
        fs.mkdir_p("/tmp", Uid::ROOT, Gid::ROOT, Mode::new(0o1777)).unwrap();
        fs.mkdir_p("/home/alice", Uid(100), Gid(100), Mode::new(0o755)).unwrap();
        fs.put_file("/etc/passwd", "root:0:0:", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        fs.put_file("/etc/shadow", "root:HASH:", Uid::ROOT, Gid::ROOT, Mode::new(0o600))
            .unwrap();
        fs
    }

    #[test]
    fn walk_resolves_and_reports_physical_path() {
        let fs = setup();
        let w = fs.walk("/etc/passwd", true, None).unwrap();
        assert_eq!(w.physical, "/etc/passwd");
        assert!(fs.inode(w.id).unwrap().is_file());
    }

    #[test]
    fn walk_missing_is_enoent() {
        let fs = setup();
        let e = fs.walk("/etc/nothing", true, None).unwrap_err();
        assert_eq!(e.errno, Errno::Enoent);
    }

    #[test]
    fn dotdot_is_physical_across_symlinks() {
        let mut fs = setup();
        // /home/alice/link -> /etc ; /home/alice/link/../shadow2 must be /etc/../shadow2 = /shadow2? No:
        // physical `..` of /etc is /, so the path resolves under /, not under /home/alice.
        fs.god_symlink("/home/alice/link", "/etc").unwrap();
        fs.put_file("/probe", "x", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        let w = fs.walk("/home/alice/link/../probe", true, None).unwrap();
        assert_eq!(w.physical, "/probe");
    }

    #[test]
    fn symlink_loop_detected() {
        let mut fs = setup();
        fs.god_symlink("/a", "/b").unwrap();
        fs.god_symlink("/b", "/a").unwrap();
        let e = fs.walk("/a", true, None).unwrap_err();
        assert_eq!(e.errno, Errno::Eloop);
    }

    #[test]
    fn creat_follows_final_symlink() {
        let mut fs = setup();
        fs.god_symlink("/tmp/spool", "/etc/passwd").unwrap();
        let root = Credentials::root();
        let (w, existed) = fs.creat("/tmp/spool", Mode::new(0o660), &root, 0).unwrap();
        assert!(existed, "creat through symlink hits the existing target");
        assert_eq!(w.physical, "/etc/passwd");
        // Content was truncated — this is the lpr attack in miniature.
        assert_eq!(fs.god_read("/etc/passwd").unwrap().len(), 0);
    }

    #[test]
    fn creat_through_dangling_symlink_creates_target() {
        let mut fs = setup();
        fs.mkdir_p("/etc/cron.d", Uid::ROOT, Gid::ROOT, Mode::new(0o755))
            .unwrap();
        fs.god_symlink("/tmp/spool", "/etc/cron.d/evil").unwrap();
        let (w, existed) = fs
            .creat("/tmp/spool", Mode::new(0o660), &Credentials::root(), 0)
            .unwrap();
        assert!(!existed);
        assert_eq!(w.physical, "/etc/cron.d/evil");
        assert!(fs.exists("/etc/cron.d/evil"));
    }

    #[test]
    fn create_excl_refuses_symlink() {
        let mut fs = setup();
        fs.god_symlink("/tmp/spool", "/etc/passwd").unwrap();
        let e = fs
            .create_excl("/tmp/spool", Mode::new(0o600), &Credentials::root(), 0)
            .unwrap_err();
        assert_eq!(e.errno, Errno::Eexist);
        // Target untouched.
        assert_eq!(fs.god_read("/etc/passwd").unwrap().text(), "root:0:0:");
    }

    #[test]
    fn unchecked_user_cannot_read_shadow() {
        let fs = setup();
        let e = fs.open_read("/etc/shadow", &cred(100)).unwrap_err();
        assert_eq!(e.errno, Errno::Eacces);
        assert!(fs.open_read("/etc/shadow", &Credentials::root()).is_ok());
    }

    #[test]
    fn sticky_tmp_protects_other_users_files() {
        let mut fs = setup();
        fs.put_file("/tmp/victim", "data", Uid(200), Gid(200), Mode::new(0o666))
            .unwrap();
        // /tmp is sticky: alice (100) cannot unlink bob's (200) file.
        let e = fs.unlink("/tmp/victim", &cred(100)).unwrap_err();
        assert_eq!(e.errno, Errno::Eperm);
        assert!(fs.unlink("/tmp/victim", &cred(200)).is_ok());
    }

    #[test]
    fn traversal_requires_exec_permission() {
        let mut fs = setup();
        fs.mkdir_p("/private", Uid(200), Gid(200), Mode::new(0o700)).unwrap();
        fs.put_file("/private/f", "x", Uid(200), Gid(200), Mode::new(0o644))
            .unwrap();
        let e = fs.walk("/private/f", true, Some(&cred(100))).unwrap_err();
        assert_eq!(e.errno, Errno::Eacces);
        assert!(fs.walk("/private/f", true, Some(&cred(200))).is_ok());
    }

    #[test]
    fn create_needs_parent_write() {
        let mut fs = setup();
        let e = fs.creat("/etc/evil", Mode::new(0o644), &cred(100), 0o22).unwrap_err();
        assert_eq!(e.errno, Errno::Eacces);
        // /tmp is world-writable.
        assert!(fs.creat("/tmp/ok", Mode::new(0o644), &cred(100), 0o22).is_ok());
    }

    #[test]
    fn umask_applies_to_new_files() {
        let mut fs = setup();
        fs.creat("/tmp/masked", Mode::new(0o666), &cred(100), 0o077).unwrap();
        assert_eq!(fs.stat("/tmp/masked", None).unwrap().mode.bits(), 0o600);
    }

    #[test]
    fn rename_moves_entries() {
        let mut fs = setup();
        fs.put_file("/tmp/a", "x", Uid(100), Gid(100), Mode::new(0o644))
            .unwrap();
        fs.rename("/tmp/a", "/tmp/b", &cred(100)).unwrap();
        assert!(!fs.exists("/tmp/a"));
        assert!(fs.exists("/tmp/b"));
    }

    #[test]
    fn chmod_owner_only() {
        let mut fs = setup();
        fs.put_file("/tmp/mine", "x", Uid(100), Gid(100), Mode::new(0o644))
            .unwrap();
        assert!(fs.chmod("/tmp/mine", Mode::new(0o600), &cred(200)).is_err());
        assert!(fs.chmod("/tmp/mine", Mode::new(0o600), &cred(100)).is_ok());
        assert!(fs.chmod("/tmp/mine", Mode::new(0o644), &Credentials::root()).is_ok());
    }

    #[test]
    fn chown_root_only() {
        let mut fs = setup();
        fs.put_file("/tmp/mine", "x", Uid(100), Gid(100), Mode::new(0o644))
            .unwrap();
        assert!(fs.chown("/tmp/mine", Uid(200), Gid(200), &cred(100)).is_err());
        assert!(fs.chown("/tmp/mine", Uid(200), Gid(200), &Credentials::root()).is_ok());
        assert_eq!(fs.stat("/tmp/mine", None).unwrap().owner, Uid(200));
    }

    #[test]
    fn stat_vs_lstat_on_symlink() {
        let mut fs = setup();
        fs.god_symlink("/tmp/ln", "/etc/passwd").unwrap();
        assert_eq!(fs.stat("/tmp/ln", None).unwrap().file_type, FileType::Regular);
        assert_eq!(fs.lstat("/tmp/ln", None).unwrap().file_type, FileType::Symlink);
    }

    #[test]
    fn god_remove_is_recursive_and_invariant_safe() {
        let mut fs = setup();
        fs.mkdir_p("/deep/a/b", Uid::ROOT, Gid::ROOT, Mode::new(0o755)).unwrap();
        fs.put_file("/deep/a/b/f", "x", Uid::ROOT, Gid::ROOT, Mode::new(0o644))
            .unwrap();
        let before = fs.inode_count();
        fs.god_remove("/deep").unwrap();
        assert!(fs.inode_count() < before);
        fs.check_invariants().unwrap();
    }

    #[test]
    fn path_of_reconstructs() {
        let fs = setup();
        let w = fs.walk("/etc/shadow", true, None).unwrap();
        assert_eq!(fs.path_of(w.id).map(|p| p.as_str()), Some("/etc/shadow"));
        assert_eq!(fs.path_of(fs.root()).map(|p| p.as_str()), Some("/"));
    }

    #[test]
    fn path_of_tracks_rename_and_removal() {
        let mut fs = setup();
        fs.put_file("/tmp/a", "x", Uid(100), Gid(100), Mode::new(0o644))
            .unwrap();
        let id = fs.walk("/tmp/a", false, None).unwrap().id;
        fs.rename("/tmp/a", "/tmp/b", &cred(100)).unwrap();
        assert_eq!(fs.path_of(id).map(|p| p.as_str()), Some("/tmp/b"));
        fs.unlink("/tmp/b", &cred(100)).unwrap();
        assert_eq!(fs.path_of(id), None);
        fs.check_invariants().unwrap();
    }

    #[test]
    fn tags_round_trip() {
        let mut fs = setup();
        fs.tag("/etc/shadow", FileTag::Secret).unwrap();
        assert!(fs.stat("/etc/shadow", None).unwrap().tags.contains(&FileTag::Secret));
    }

    #[test]
    fn invariants_hold_after_setup() {
        setup().check_invariants().unwrap();
    }

    #[test]
    fn clone_is_copy_on_write_snapshot() {
        let fs = setup();
        let snap = fs.clone();
        assert_eq!(snap.shared_inodes_with(&fs), fs.inode_count());
        let mut mutated = fs.clone();
        mutated.god_write("/etc/passwd", "evil").unwrap();
        // The original snapshot is untouched and only the written inode was
        // unshared.
        assert_eq!(fs.god_read("/etc/passwd").unwrap().text(), "root:0:0:");
        assert_eq!(mutated.god_read("/etc/passwd").unwrap().text(), "evil");
        assert_eq!(mutated.shared_inodes_with(&fs), fs.inode_count() - 1);
        fs.check_invariants().unwrap();
        mutated.check_invariants().unwrap();
    }

    #[test]
    fn deep_clone_shares_nothing_but_compares_equal() {
        let fs = setup();
        let deep = fs.deep_clone();
        assert_eq!(deep, fs);
        assert_eq!(deep.shared_inodes_with(&fs), 0);
        deep.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_mutation_does_not_leak_into_sibling_clones() {
        let fs = setup();
        let mut a = fs.clone();
        let mut b = fs.clone();
        a.put_file("/tmp/a-only", "a", Uid(100), Gid(100), Mode::new(0o644))
            .unwrap();
        b.god_remove("/etc/shadow").unwrap();
        assert!(!fs.exists("/tmp/a-only"));
        assert!(!b.exists("/tmp/a-only"));
        assert!(fs.exists("/etc/shadow"));
        assert!(a.exists("/etc/shadow"));
    }

    #[test]
    fn list_dir_requires_read() {
        let mut fs = setup();
        fs.mkdir_p("/secretdir", Uid(200), Gid(200), Mode::new(0o711)).unwrap();
        assert!(fs.list_dir("/secretdir", &cred(100)).is_err());
        let names = fs.list_dir("/etc", &cred(100)).unwrap();
        assert!(names.contains(&"passwd".to_string()));
    }
}
