//! The fault catalog: executable renditions of the paper's Tables 5 and 6.
//!
//! Two views coexist:
//!
//! * the **documentation view** ([`table5_rows`], [`table6_rows`]) — the
//!   literal rows of the paper's tables, used by the reproduction harness
//!   to print them;
//! * the **generation view** ([`indirect_faults_for`], [`direct_faults_for`],
//!   [`faults_for_site`]) — given an interaction point's descriptor, the
//!   concrete fault list the methodology injects there (paper §3.3 steps
//!   4–5). Semantics select indirect patterns; the operation and object
//!   select direct attribute perturbations; applicability rules (e.g.
//!   name-invariance only for re-accessed objects) prune the rest.

mod direct;
mod indirect;

pub use direct::{direct_faults_for, table6_rows, DirectContext};
pub use indirect::{indirect_faults_for, table5_rows};

use serde::{Deserialize, Serialize};

use epa_sandbox::trace::SiteSummary;

use crate::perturb::ConcreteFault;

/// One printable catalog row (Table 5 or Table 6 shape).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatalogRow {
    /// The entity column ("User Input", "File System", ...).
    pub entity: String,
    /// The semantic-attribute column ("file name + directory name",
    /// "symbolic link", ...).
    pub item: String,
    /// The fault-injection column.
    pub injections: Vec<String>,
}

/// Builds the full fault list for one interaction point: the union of
/// direct faults (per operation/object) and indirect faults (per input
/// semantics), deduplicated by fault id.
pub fn faults_for_site(summary: &SiteSummary, ctx: &DirectContext<'_>) -> Vec<ConcreteFault> {
    let mut out: Vec<ConcreteFault> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for (op, object) in &summary.ops {
        for f in direct_faults_for(*op, object, ctx) {
            if seen.insert(f.id.clone()) {
                out.push(f);
            }
        }
    }
    for sem in &summary.inputs {
        for f in indirect_faults_for(*sem, ctx.scenario) {
            if seen.insert(f.id.clone()) {
                out.push(f);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epa_sandbox::os::ScenarioMeta;
    use epa_sandbox::trace::{InputSemantic, ObjectRef, OpKind, SiteId};
    use std::collections::BTreeMap;

    #[test]
    fn site_fault_list_unions_and_dedups() {
        let scenario = ScenarioMeta::default();
        let resolutions = BTreeMap::new();
        let ctx = DirectContext {
            scenario: &scenario,
            reaccessed: &[],
            exec_resolutions: &resolutions,
            cwd: "/",
        };
        let summary = SiteSummary {
            site: SiteId::new("app:read_cf"),
            first_seq: 0,
            hits: 1,
            ops: vec![
                (OpKind::ReadFile, ObjectRef::File("/etc/app.cf".into())),
                (OpKind::ReadFile, ObjectRef::File("/etc/app.cf".into())),
            ],
            inputs: vec![InputSemantic::FsFileName],
        };
        let faults = faults_for_site(&summary, &ctx);
        // 5 direct read faults + 4 indirect fs-file-name faults.
        assert_eq!(faults.len(), 9, "{faults:#?}");
        let ids: std::collections::BTreeSet<_> = faults.iter().map(|f| f.id.clone()).collect();
        assert_eq!(ids.len(), faults.len(), "ids must be unique");
    }

    #[test]
    fn tables_have_paper_shapes() {
        let t5 = table5_rows();
        // Five origins appear in the entity column.
        let entities: std::collections::BTreeSet<_> = t5.iter().map(|r| r.entity.clone()).collect();
        assert!(entities.contains("User Input"));
        assert!(entities.contains("Environment Variable"));
        assert!(entities.contains("File System Input"));
        assert!(entities.contains("Network Input"));
        assert!(entities.contains("Process Input"));

        let t6 = table6_rows();
        let entities6: std::collections::BTreeSet<_> = t6.iter().map(|r| r.entity.clone()).collect();
        assert!(entities6.contains("File System"));
        assert!(entities6.contains("Network"));
        assert!(entities6.contains("Process"));
        // Seven file-system attribute rows, as in the paper.
        assert_eq!(t6.iter().filter(|r| r.entity == "File System").count(), 7);
        assert_eq!(t6.iter().filter(|r| r.entity == "Network").count(), 5);
        assert_eq!(t6.iter().filter(|r| r.entity == "Process").count(), 3);
    }
}
