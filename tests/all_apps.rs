//! Integration: full campaigns over every model application — the
//! cross-cutting guarantees the methodology depends on — driven through the
//! `engine::Session` facade over each app's exported `WorldSpec`.

use epa::apps::*;
use epa::core::campaign::CampaignOptions;
use epa::core::engine::{Session, WorldSpec};
use epa::sandbox::app::Application;

fn all_cases() -> Vec<(&'static dyn Application, &'static dyn Application, WorldSpec)> {
    vec![
        (&Lpr, &LprFixed, lpr::spec()),
        (&Turnin, &TurninFixed, turnin::spec()),
        (&FontPurge, &FontPurgeFixed, fontpurge::spec()),
        (&NtLogon, &NtLogonFixed, ntlogon::spec()),
        (&Fingerd, &FingerdFixed, fingerd::spec()),
        (&Authd, &AuthdFixed, authd::spec()),
        (&MailNotify, &MailNotifyFixed, mailnotify::spec()),
        (&Backupd, &BackupdFixed, backupd::spec()),
    ]
}

fn session(spec: &WorldSpec) -> Session {
    Session::new(spec).expect("case-study specs are valid")
}

#[test]
fn every_clean_run_is_violation_free() {
    for (app, fixed, spec) in all_cases() {
        let s = session(&spec);
        for a in [app, fixed] {
            let out = s.run(a);
            assert!(
                out.violations.is_empty(),
                "{}: clean-run violations {:?}",
                a.name(),
                out.violations
            );
            assert!(!out.has_crashed(), "{} crashed: {:?}", a.name(), out.crashed);
        }
    }
}

#[test]
fn every_vulnerable_app_fails_some_fault_every_fixed_app_mostly_survives() {
    for (app, fixed, spec) in all_cases() {
        let s = session(&spec);
        let vuln = s.execute(app);
        assert!(vuln.violated() > 0, "{}: the seeded flaws must be found", app.name());
        let patched = s.execute(fixed);
        assert!(
            patched.vulnerability_score() < vuln.vulnerability_score(),
            "{}: fix must lower the score ({} -> {})",
            app.name(),
            vuln.vulnerability_score(),
            patched.vulnerability_score()
        );
    }
}

#[test]
fn fully_fixable_apps_reach_full_fault_coverage() {
    // Authenticity faults are not fixable without cryptographic protocols
    // (documented in EXPERIMENTS.md), so fingerd-fixed is exempt here.
    let fixable: Vec<(&dyn Application, WorldSpec)> = vec![
        (&LprFixed, lpr::spec()),
        (&TurninFixed, turnin::spec()),
        (&FontPurgeFixed, fontpurge::spec()),
        (&NtLogonFixed, ntlogon::spec()),
        (&AuthdFixed, authd::spec()),
        (&MailNotifyFixed, mailnotify::spec()),
        (&BackupdFixed, backupd::spec()),
    ];
    for (app, spec) in fixable {
        let report = session(&spec).execute(app);
        assert_eq!(
            report.violated(),
            0,
            "{}: {:#?}",
            app.name(),
            report.violations().collect::<Vec<_>>()
        );
    }
}

#[test]
fn parallel_campaigns_agree_with_sequential_everywhere() {
    for (app, _, spec) in all_cases() {
        let seq = session(&spec).execute(app);
        let par = session(&spec)
            .with_options(CampaignOptions {
                parallel: true,
                ..Default::default()
            })
            .execute(app);
        assert_eq!(seq.injected(), par.injected(), "{}", app.name());
        assert_eq!(seq.violated(), par.violated(), "{}", app.name());
        let seq_v: Vec<_> = seq.violations().map(|r| r.fault_id.clone()).collect();
        let par_v: Vec<_> = par.violations().map(|r| r.fault_id.clone()).collect();
        assert_eq!(seq_v, par_v, "{}", app.name());
    }
}

#[test]
fn campaigns_are_deterministic() {
    for (app, _, spec) in all_cases() {
        let s = session(&spec);
        let a = s.execute(app);
        let b = s.execute(app);
        assert_eq!(a, b, "{}", app.name());
    }
}

#[test]
fn engine_sessions_match_the_deprecated_campaign_shim() {
    // The migration contract: `Campaign::new(&app, &setup).execute()` and
    // `Session::new(&spec)?.execute(&app)` produce identical reports.
    #![allow(deprecated)]
    use epa::core::campaign::Campaign;
    for (app, _, spec) in all_cases() {
        let setup = spec.materialize().expect("valid spec");
        let legacy = Campaign::new(app, &setup).execute();
        let engine = session(&spec).execute(app);
        assert_eq!(legacy, engine, "{}", app.name());
    }
}

#[test]
fn faults_fire_in_almost_all_runs() {
    // `applied == false` is allowed only when the perturbed input point is
    // never reached under the fault; it should be rare.
    for (app, _, spec) in all_cases() {
        let report = session(&spec).execute(app);
        let unapplied = report.records.iter().filter(|r| !r.applied).count();
        assert!(
            unapplied * 5 <= report.injected(),
            "{}: {}/{} faults never fired",
            app.name(),
            unapplied,
            report.injected()
        );
    }
}

#[test]
fn the_suite_wide_executor_matches_per_session_campaigns() {
    // The pooled suite path (one shared job queue across all eight apps)
    // must reproduce every per-session campaign record-for-record — the
    // migration contract for the retired per-app thread fan-out.
    let batch = standard_suite().expect("valid specs").execute();
    for (app, _, spec) in all_cases() {
        let solo = session(&spec).execute(app);
        assert_eq!(
            batch.get(app.name()).expect("app in suite report"),
            &solo,
            "{}: pooled suite and solo session disagree",
            app.name()
        );
    }
}

#[test]
fn reports_serialize_for_downstream_tooling() {
    let report = session(&turnin::spec()).execute(&Turnin);
    let json = serde_json::to_string_pretty(&report).expect("serialize");
    let back: epa::core::report::CampaignReport = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, report);
    assert!(json.contains("turnin:read_projlist"));
}
