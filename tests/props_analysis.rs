//! Property tests for the static analysis layer: the static site model
//! must over-approximate the dynamic trace, every `ProvablyInert` verdict
//! must survive a force-run, lint output must be deterministic, and the
//! planner's `FaultKey` canonicalization must stay *more* conservative
//! than the analyzer's alias resolution.

use std::collections::BTreeSet;

use epa::apps::ScriptedApp;
use epa::core::analysis::{lint_scenario, static_model, AppAnalysis};
use epa::core::campaign::CampaignOptions;
use epa::core::corpus::{synthesize, CorpusConfig, DEFAULT_CORPUS_SEED};
use epa::core::engine::planner::{FaultKey, RunDigest};
use epa::core::engine::Session;

/// A handful of distinct corpus seeds, covering the default plus arbitrary
/// offsets — each synthesizes a different randomized world population.
const SEEDS: [u64; 4] = [DEFAULT_CORPUS_SEED, 7, 0xBEEF, 0x1234_5678];

fn corpus(seed: u64, count: usize) -> Vec<epa::core::corpus::Scenario> {
    synthesize(&CorpusConfig { seed, count })
}

/// The paper's step-1 guarantee: the static walk of script × world is an
/// over-approximation of execution — every site the dynamic clean run
/// traces is in the statically reachable set, and no site ever exceeds its
/// static hit bound.
#[test]
fn traced_sites_are_a_subset_of_the_static_model() {
    for seed in SEEDS {
        for scenario in corpus(seed, 24) {
            let model = static_model(&scenario.spec, &scenario.script);
            let reachable = model.reachable();
            let bounds = model.hit_bounds();
            let setup = scenario.spec.materialize().expect("corpus worlds materialize");
            let app = ScriptedApp::for_scenario(&scenario);
            let session = Session::from_setup(setup.clone());
            let plan = session.plan(&app);
            let analysis = AppAnalysis::from_clean_run(&setup, &plan.clean);
            let traced: BTreeSet<_> = analysis.traced_sites();
            for site in &traced {
                assert!(
                    reachable.contains(site),
                    "{} (seed {seed:#x}): traced site {site} missing from the static model",
                    scenario.id
                );
            }
            for (site, hits) in analysis.site_hits() {
                let bound = bounds.get(&site).copied().unwrap_or(0);
                assert!(
                    hits <= bound,
                    "{} (seed {seed:#x}): site {site} traced {hits} hits over its static bound {bound}",
                    scenario.id
                );
            }
        }
    }
}

/// The soundness property behind `static_prune`: force-running a job the
/// analyzer proved inert produces exactly the synthesized record — same
/// applied flag, same exit, same audit-log length, and zero verdicts beyond
/// the clean run's.
#[test]
fn provably_inert_jobs_survive_a_force_run() {
    let mut checked = 0usize;
    for scenario in corpus(DEFAULT_CORPUS_SEED, 40) {
        let setup = scenario.spec.materialize().expect("corpus worlds materialize");
        let app = ScriptedApp::for_scenario(&scenario);
        let session = Session::from_setup(setup.clone()).with_options(CampaignOptions {
            static_prune: false,
            ..Default::default()
        });
        let plan = session.plan(&app);
        let analysis = AppAnalysis::from_clean_run(&setup, &plan.clean);
        let inert: Vec<_> = plan
            .jobs()
            .into_iter()
            .filter(|job| analysis.classify(job).is_inert())
            .collect();
        if inert.is_empty() {
            continue;
        }
        // Force-run the whole plan (pruning off) and compare each inert
        // job's executed record against its synthesized digest.
        let report = session.execute_plan(&app, &plan);
        for job in &inert {
            let synthesized = analysis.pruned_digest(job).expect("inert jobs synthesize a digest");
            let executed = report
                .records
                .iter()
                .find(|r| {
                    r.site == job.site.to_string() && r.occurrence == job.occurrence && r.fault_id == job.fault.id
                })
                .expect("every planned job produces a record");
            assert!(
                !executed.pruned && !executed.cache_hit,
                "{}: the force-run must actually execute {}",
                scenario.id,
                job.fault.id
            );
            assert_eq!(
                RunDigest::of(executed),
                synthesized,
                "{}: force-run of provably-inert {} at {}#{} diverged from its synthesized record",
                scenario.id,
                job.fault.id,
                job.site,
                job.occurrence
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the corpus must exercise at least one inert proof");
}

/// Lint output is a pure function of the scenario: re-linting the same
/// world yields byte-identical text and JSON, independent synthesis of the
/// same seed yields the same reports, and different seeds lint without
/// panicking.
#[test]
fn lint_output_is_deterministic() {
    for seed in SEEDS {
        let first = corpus(seed, 12);
        let second = corpus(seed, 12);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            let ra = lint_scenario(a);
            let rb = lint_scenario(b);
            assert_eq!(ra, rb, "lint diverged across synthesis of seed {seed:#x}");
            assert_eq!(ra.render_text(), rb.render_text());
            assert_eq!(
                serde_json::to_string(&ra).unwrap(),
                serde_json::to_string(&rb).unwrap(),
                "JSON rendering diverged for {} (seed {seed:#x})",
                a.id
            );
            // Re-rendering the same report is stable too.
            assert_eq!(ra.render_text(), ra.render_text());
        }
    }
}

/// Documented divergence between the planner's `FaultKey` canonicalization
/// and the analyzer's alias resolution — audited, intentional, and safe in
/// exactly one direction.
///
/// `FaultKey` normalizes payload paths *lexically* (`path::clean`: `//`
/// and `.` collapse, `..` kept) and never consults the world, so two
/// catalog faults addressing one inode through a symlink and through its
/// physical path get **different** keys: the planner executes both rather
/// than conflating them. The analyzer resolves the same spellings to one
/// physical form. The asymmetry is sound — a missed dedup costs a run,
/// while a false merge would replay a wrong outcome — and must stay this
/// way unless `FaultKey` learns to resolve against the frozen world.
#[test]
fn fault_key_stays_lexical_where_alias_analysis_resolves() {
    use epa::core::inject::InjectionPlan;
    use epa::core::model::EaiCategory;
    use epa::core::perturb::{ConcreteFault, DirectFault, FaultPayload};
    use epa::sandbox::trace::SiteId;

    let fault = |path: &str| InjectionPlan {
        site: SiteId::new("probe:read"),
        occurrence: 0,
        fault: ConcreteFault {
            id: format!("probe:{path}"),
            category: EaiCategory::Other,
            description: String::new(),
            semantic: None,
            payload: FaultPayload::Direct(DirectFault::FileMakeMissing { path: path.to_string() }),
        },
    };

    // Lexical cleanups the key does collapse.
    assert_eq!(
        FaultKey::of(&fault("/etc//passwd")),
        FaultKey::of(&fault("/etc/./passwd")),
        "cosmetic spellings must share one canonical key"
    );

    // A symlink alias the key deliberately does NOT collapse, even though
    // the analyzer resolves both spellings to the same physical file.
    let mut spec = epa::core::engine::WorldSpec::default();
    spec.symlinks.push(epa::core::engine::spec::SymlinkSpec {
        link: "/var/log".to_string(),
        target: "/data/log".to_string(),
    });
    let via_link = "/var/log/app.log";
    let physical = "/data/log/app.log";
    let (resolved, aliased) = epa::core::analysis::statics::resolve_alias(&spec, via_link);
    assert!(aliased);
    assert_eq!(resolved, physical, "the analyzer resolves the alias");
    assert_ne!(
        FaultKey::of(&fault(via_link)),
        FaultKey::of(&fault(physical)),
        "FaultKey must keep alias spellings distinct (conservative: no false merges)"
    );

    // `..` components likewise stay distinct: textual resolution could
    // conflate faults that strike different inodes across symlinked dirs.
    assert_ne!(
        FaultKey::of(&fault("/etc/app/../passwd")),
        FaultKey::of(&fault("/etc/passwd")),
        "`..` spellings must not be textually resolved"
    );
}
