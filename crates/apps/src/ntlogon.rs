//! The NT user-logon module of paper §4.2.
//!
//! The paper: *"When a user logons, the module will find the user's profile
//! from a directory specified in a registry key. … the program does not
//! deal with the situation when the directory is not trusted."*
//!
//! `ntlogon` runs as the logon service (Administrator privilege) and
//! consumes four world-writable registry keys: the profile directory, the
//! machine logon script, the default shell, and a help/welcome file. The
//! vulnerable version trusts all four blindly; [`NtLogonFixed`] verifies
//! ownership and refuses untrusted objects.

use epa_sandbox::app::Application;
use epa_sandbox::cred::Uid;
use epa_sandbox::data::{Data, PathArg};
use epa_sandbox::os::Os;
use epa_sandbox::process::Pid;
use epa_sandbox::trace::InputSemantic;

/// The four logon registry keys.
pub const LOGON_KEYS: [&str; 4] = ["ProfileDir", "Script", "Shell", "HelpFile"];

/// The NT logon world of paper §4.2, declared as data: the logon service
/// (root) processes `user1001`'s logon over the shared NT base.
pub fn spec() -> epa_core::engine::WorldSpec {
    crate::worlds::base_nt_builder(Uid(1001))
        .invoker(Uid::ROOT)
        .cwd("/")
        .build()
}

/// Full key path for one logon key.
pub fn logon_key(name: &str) -> String {
    format!("HKLM/Software/Logon/{name}")
}

fn parse_shell(profile: &Data) -> Option<Data> {
    for line in profile.lines() {
        let text = line.text();
        if let Some(rest) = text.strip_prefix("shell=") {
            let mut d = Data::from(rest.trim());
            d.taint_from(&line);
            return Some(d);
        }
    }
    None
}

/// The vulnerable logon module.
#[derive(Debug, Clone, Copy, Default)]
pub struct NtLogon;

impl Application for NtLogon {
    fn name(&self) -> &'static str {
        "ntlogon"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        // --- the user profile, from the ProfileDir key -------------------
        if let Ok(dir) = os.sys_reg_read(
            pid,
            "ntlogon:read_profiledir",
            &logon_key("ProfileDir"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            let profile_path = PathArg::from(&dir).join(&PathArg::clean("profile.cfg"));
            match os.sys_read_file(pid, "ntlogon:read_profile", &profile_path) {
                Ok(profile) => {
                    if let Some(raw) = parse_shell(&profile) {
                        if let Ok(shell) =
                            os.sys_bind(pid, "ntlogon:read_profile", "usershell", InputSemantic::FsFileName, raw)
                        {
                            // Flaw: executes whatever the (attacker-reachable)
                            // profile names, with service privilege.
                            if os
                                .sys_exec(pid, "ntlogon:exec_usershell", PathArg::from(&shell), vec![], None)
                                .is_err()
                            {
                                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: bad user shell\n");
                            }
                        }
                    }
                }
                Err(_) => {
                    let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: no profile, using defaults\n");
                }
            }
        }

        // --- the machine logon script ------------------------------------
        if let Ok(script) = os.sys_reg_read(
            pid,
            "ntlogon:read_script",
            &logon_key("Script"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            if os
                .sys_exec(pid, "ntlogon:exec_script", PathArg::from(&script), vec![], None)
                .is_err()
            {
                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: logon script failed\n");
            }
        }

        // --- the default shell --------------------------------------------
        if let Ok(shell) = os.sys_reg_read(
            pid,
            "ntlogon:read_shell",
            &logon_key("Shell"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            if os
                .sys_exec(pid, "ntlogon:exec_shell", PathArg::from(&shell), vec![], None)
                .is_err()
            {
                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: cannot start shell\n");
            }
        }

        // --- the welcome/help file ----------------------------------------
        if let Ok(help) = os.sys_reg_read(
            pid,
            "ntlogon:read_helpfile",
            &logon_key("HelpFile"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            if let Ok(content) = os.sys_read_file(pid, "ntlogon:read_help", PathArg::from(&help)) {
                // Flaw: relays the file's content to the logging-on user.
                let _ = os.sys_print(pid, "ntlogon:welcome", content);
            }
        }
        0
    }
}

/// The patched logon module: verifies every registry-named object is
/// Administrator-owned (and profiles come from the profile tree) before use.
#[derive(Debug, Clone, Copy, Default)]
pub struct NtLogonFixed;

impl NtLogonFixed {
    /// Only Administrator-owned, non-world-writable regular files qualify.
    fn trusted_file(os: &mut Os, pid: Pid, site: &str, path: &PathArg) -> bool {
        match os.sys_lstat(pid, site, path.clone()) {
            Ok(st) => {
                st.file_type == epa_sandbox::fs::FileType::Regular && st.owner == Uid::ROOT && !st.mode.world_writable()
            }
            Err(_) => false,
        }
    }
}

impl Application for NtLogonFixed {
    fn name(&self) -> &'static str {
        "ntlogon-fixed"
    }

    fn run(&self, os: &mut Os, pid: Pid) -> i32 {
        if let Ok(dir) = os.sys_reg_read(
            pid,
            "ntlogon:read_profiledir",
            &logon_key("ProfileDir"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            let dir_text = dir.text();
            // Fix: profiles must live under the profile tree.
            if dir_text.starts_with("/profiles/") && !dir_text.contains("..") {
                let profile_path = PathArg::from(&dir).join(&PathArg::clean("profile.cfg"));
                if Self::trusted_file(os, pid, "ntlogon:read_profile", &profile_path) {
                    if let Ok(profile) = os.sys_read_file(pid, "ntlogon:read_profile", &profile_path) {
                        if let Some(raw) = parse_shell(&profile) {
                            if let Ok(shell) =
                                os.sys_bind(pid, "ntlogon:read_profile", "usershell", InputSemantic::FsFileName, raw)
                            {
                                let shell_arg = PathArg::from(&shell);
                                if Self::trusted_file(os, pid, "ntlogon:exec_usershell", &shell_arg) {
                                    let _ = os.sys_exec(pid, "ntlogon:exec_usershell", shell_arg, vec![], None);
                                } else {
                                    let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: untrusted shell refused\n");
                                }
                            }
                        }
                    }
                }
            } else {
                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: untrusted profile directory refused\n");
            }
        }

        if let Ok(script) = os.sys_reg_read(
            pid,
            "ntlogon:read_script",
            &logon_key("Script"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            let arg = PathArg::from(&script);
            if Self::trusted_file(os, pid, "ntlogon:exec_script", &arg) {
                let _ = os.sys_exec(pid, "ntlogon:exec_script", arg, vec![], None);
            } else {
                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: untrusted script refused\n");
            }
        }

        if let Ok(shell) = os.sys_reg_read(
            pid,
            "ntlogon:read_shell",
            &logon_key("Shell"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            let arg = PathArg::from(&shell);
            if Self::trusted_file(os, pid, "ntlogon:exec_shell", &arg) {
                let _ = os.sys_exec(pid, "ntlogon:exec_shell", arg, vec![], None);
            } else {
                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: untrusted shell refused\n");
            }
        }

        if let Ok(help) = os.sys_reg_read(
            pid,
            "ntlogon:read_helpfile",
            &logon_key("HelpFile"),
            "Path",
            InputSemantic::FsFileName,
        ) {
            let arg = PathArg::from(&help);
            // Fix: only relay world-readable, Administrator-owned files.
            let readable = os.sys_lstat(pid, "ntlogon:read_help", arg.clone()).is_ok_and(|st| {
                st.file_type == epa_sandbox::fs::FileType::Regular
                    && st.owner == Uid::ROOT
                    && st.mode.other_allows(epa_sandbox::mode::Access::Read)
            });
            if readable {
                if let Ok(content) = os.sys_read_file(pid, "ntlogon:read_help", arg) {
                    let _ = os.sys_print(pid, "ntlogon:welcome", content);
                }
            } else {
                let _ = os.sys_print(pid, "ntlogon:warn", "ntlogon: help file refused\n");
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds;
    use epa_core::campaign::run_once;

    #[test]
    fn clean_logon_is_violation_free() {
        let setup = worlds::ntlogon_world();
        let out = run_once(&setup, &NtLogon, None);
        assert_eq!(out.exit, Some(0));
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        let stdout = out.os.stdout_text(out.pid.unwrap());
        assert!(stdout.contains("welcome to the domain"));
    }

    #[test]
    fn untrusted_profile_dir_executes_rootkit() {
        let mut setup = worlds::ntlogon_world();
        setup
            .world
            .registry
            .god_set_value(&logon_key("ProfileDir"), "Path", "/users/evil");
        let out = run_once(&setup, &NtLogon, None);
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == epa_sandbox::policy::ViolationKind::UntrustedExec),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn helpfile_pointed_at_sam_discloses_it() {
        let mut setup = worlds::ntlogon_world();
        setup
            .world
            .registry
            .god_set_value(&logon_key("HelpFile"), "Path", "/winnt/repair/sam");
        let out = run_once(&setup, &NtLogon, None);
        assert!(
            out.violations
                .iter()
                .any(|v| v.kind == epa_sandbox::policy::ViolationKind::Disclosure),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn fixed_logon_refuses_both_attacks() {
        let mut setup = worlds::ntlogon_world();
        setup
            .world
            .registry
            .god_set_value(&logon_key("ProfileDir"), "Path", "/users/evil");
        setup
            .world
            .registry
            .god_set_value(&logon_key("HelpFile"), "Path", "/winnt/repair/sam");
        let out = run_once(&setup, &NtLogonFixed, None);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn rootkit_exec_verdict_carries_in_bounds_evidence() {
        let mut setup = worlds::ntlogon_world();
        setup
            .world
            .registry
            .god_set_value(&logon_key("ProfileDir"), "Path", "/users/evil");
        let out = run_once(&setup, &NtLogon, None);
        crate::assert_evidence_in_bounds(&out);
        assert!(out.violations.iter().any(|v| v.detector == "untrusted-exec"));
    }
}
