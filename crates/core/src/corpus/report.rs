//! The corpus adequacy dashboard: per-scenario Figure 2 points, region
//! rollups, and coverage histograms over the whole synthesized corpus.
//!
//! One [`CorpusReport`] summarizes a [`run_corpus`] sweep: how many
//! scenarios landed in each adequacy region, where the fault- and
//! interaction-coverage mass sits (ten-bucket histograms), per-EAI-category
//! injected/violated counts, and — first of all — whether any execution
//! path diverged. Serialization is deterministic (sorted maps, ordered
//! vectors) so the report round-trips byte-identically; [`render_text`]
//! prints the dashboard with each scenario's RNG seed for exact replay.
//!
//! [`run_corpus`]: super::harness::run_corpus
//! [`render_text`]: CorpusReport::render_text

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use super::harness::ScenarioOutcome;
use crate::coverage::{AdequacyPoint, AdequacyRegion, AdequacyThresholds};

/// One scenario's row in the dashboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioAdequacy {
    /// Scenario identifier.
    pub id: String,
    /// The scenario's RNG seed (replay with `reproduce -- corpus --seed`).
    pub seed: u64,
    /// Perturbable interaction points exposed.
    pub sites: usize,
    /// Faults injected by the baseline path.
    pub injected: usize,
    /// Injected runs that violated the policy.
    pub violated: usize,
    /// Runs that occupied a worker slot on the baseline path.
    pub runs_executed: usize,
    /// Records replayed from the planner cache across the planner paths.
    pub cache_hits: usize,
    /// The Figure 2 adequacy point.
    pub adequacy: AdequacyPoint,
    /// The adequacy region the point classifies into.
    pub region: String,
    /// First cross-path divergence, if any (path plus detail).
    pub divergence: Option<String>,
}

/// The corpus-level dashboard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusReport {
    /// The corpus master seed.
    pub seed: u64,
    /// Scenarios synthesized and checked.
    pub scenarios: usize,
    /// Scenarios with at least one cross-path divergence (must be zero).
    pub divergences: usize,
    /// Scenarios classifying as [`AdequacyRegion::Safe`].
    pub safe: usize,
    /// Scenarios classifying as [`AdequacyRegion::Insecure`] (a violation
    /// was provoked at adequate coverage) — the corpus' "Vulnerable" bucket.
    pub vulnerable: usize,
    /// Scenarios in either inadequate region (including vacuous coverage).
    pub inadequate: usize,
    /// Ids of the vulnerable scenarios.
    pub vulnerable_scenarios: Vec<String>,
    /// Ten-bucket histogram of per-scenario fault coverage (`[i/10,
    /// (i+1)/10)`; exactly 1.0 lands in the last bucket).
    pub fault_histogram: Vec<usize>,
    /// Ten-bucket histogram of per-scenario interaction coverage.
    pub interaction_histogram: Vec<usize>,
    /// Per-EAI-category `(injected, violated)` counts across the corpus.
    pub by_category: BTreeMap<String, (usize, usize)>,
    /// Every scenario's dashboard row, in corpus order.
    pub per_scenario: Vec<ScenarioAdequacy>,
}

/// Buckets a coverage value into the ten-bucket histogram index.
fn bucket(value: f64) -> usize {
    ((value * 10.0).floor() as usize).min(9)
}

impl CorpusReport {
    /// Rolls up a sweep's outcomes into the dashboard.
    pub fn from_outcomes(seed: u64, outcomes: &[ScenarioOutcome]) -> CorpusReport {
        let thresholds = AdequacyThresholds::default();
        let mut report = CorpusReport {
            seed,
            scenarios: outcomes.len(),
            divergences: 0,
            safe: 0,
            vulnerable: 0,
            inadequate: 0,
            vulnerable_scenarios: Vec::new(),
            fault_histogram: vec![0; 10],
            interaction_histogram: vec![0; 10],
            by_category: BTreeMap::new(),
            per_scenario: Vec::new(),
        };
        for outcome in outcomes {
            let region = outcome.adequacy.region(thresholds);
            match region {
                AdequacyRegion::Safe => report.safe += 1,
                AdequacyRegion::Insecure => {
                    report.vulnerable += 1;
                    report.vulnerable_scenarios.push(outcome.id.clone());
                }
                AdequacyRegion::Inadequate | AdequacyRegion::InadequateNarrow => {
                    report.inadequate += 1;
                }
            }
            report.fault_histogram[bucket(outcome.adequacy.fault)] += 1;
            report.interaction_histogram[bucket(outcome.adequacy.interaction)] += 1;
            for (category, injected, violated) in &outcome.by_category {
                let e = report.by_category.entry(category.clone()).or_insert((0, 0));
                e.0 += injected;
                e.1 += violated;
            }
            if outcome.divergence.is_some() {
                report.divergences += 1;
            }
            let baseline = outcome.paths.first();
            report.per_scenario.push(ScenarioAdequacy {
                id: outcome.id.clone(),
                seed: outcome.seed,
                sites: outcome.sites,
                injected: outcome.injected,
                violated: outcome.violated,
                runs_executed: baseline.map_or(0, |p| p.runs_executed),
                cache_hits: outcome.paths.iter().map(|p| p.cache_hits).sum(),
                adequacy: outcome.adequacy,
                region: format!("{region:?}"),
                divergence: outcome.divergence.as_ref().map(|d| {
                    let minimized = if d.minimized.is_empty() {
                        String::new()
                    } else {
                        format!(" [minimized to {} entries]", d.minimized.len())
                    };
                    format!("{}: {}{minimized}", d.path, d.detail)
                }),
            });
        }
        report
    }

    /// The human-readable dashboard: rollups, histograms, and one row per
    /// scenario including its replay seed.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "Corpus dashboard (seed {:#x})", self.seed);
        let _ = writeln!(
            s,
            "  scenarios: {}  divergences: {}  safe: {}  vulnerable: {}  inadequate: {}",
            self.scenarios, self.divergences, self.safe, self.vulnerable, self.inadequate
        );
        let histogram = |label: &str, h: &[usize]| {
            let cells: Vec<String> = h.iter().map(std::string::ToString::to_string).collect();
            format!("  {label} coverage 0.0..1.0: [{}]", cells.join(" "))
        };
        let _ = writeln!(s, "{}", histogram("fault", &self.fault_histogram));
        let _ = writeln!(s, "{}", histogram("interaction", &self.interaction_histogram));
        let _ = writeln!(s, "  by category (injected/violated):");
        for (category, (injected, violated)) in &self.by_category {
            let _ = writeln!(s, "    {category}: {injected}/{violated}");
        }
        for row in &self.per_scenario {
            let _ = writeln!(
                s,
                "  {} seed={:#018x} sites={} injected={} violated={} adequacy=({:.2},{:.2}) {}{}",
                row.id,
                row.seed,
                row.sites,
                row.injected,
                row.violated,
                row.adequacy.interaction,
                row.adequacy.fault,
                row.region,
                match &row.divergence {
                    Some(d) => format!(" DIVERGED {d}"),
                    None => String::new(),
                }
            );
        }
        s
    }
}
