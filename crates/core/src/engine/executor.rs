//! The suite-wide work pool: sharded per-worker deques with a steal path,
//! worker count bounded by the hardware (overridable via `EPA_WORKERS`),
//! deterministic plan-order reassembly.
//!
//! Before this module existed the workspace had two uncoordinated layers of
//! parallelism: [`crate::engine::Suite`] spawned one thread per registered
//! application while every campaign could additionally fan out
//! `available_parallelism` workers with static `i % workers` partitioning —
//! oversubscribing the machine and leaving fast workers idle behind slow
//! static partitions. The [`Executor`] replaces both. Static job lists
//! ([`Executor::run_indexed`]) are claimed from a lock-free atomic cursor.
//! Expanding queues ([`Executor::run_expanding`]) used to funnel every
//! worker through one `Mutex<VecDeque>` + `Condvar`; that single hot lock
//! is now **sharded**: each worker owns a deque, pops its own front, and
//! steals from sibling tails when empty, so queue contention is spread
//! over `workers` locks instead of one. Results stream back over an
//! `mpsc` channel to the *calling* thread (so callbacks need no `Sync`) and
//! are reassembled into deterministic plan order by job index, keeping
//! pooled reports byte-identical to sequential ones.

use std::collections::VecDeque;

use shim_sync::sync::atomic::{AtomicUsize, Ordering};
use shim_sync::sync::{mpsc, Condvar, Mutex};
use shim_sync::thread;

/// Live worker-thread gauge (process-wide, across all executors).
static LIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`LIVE_WORKERS`] since the last reset.
static PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// The highest number of executor worker threads that were alive at the
/// same moment since the last [`reset_peak_live_workers`] — the observable
/// proof that pooled execution respects the hardware ceiling (the calling
/// thread that drains results is the only other live thread).
pub fn peak_live_workers() -> usize {
    PEAK_WORKERS.load(Ordering::SeqCst)
}

/// Resets the peak gauge (call before the run you want to measure).
pub fn reset_peak_live_workers() {
    PEAK_WORKERS.store(LIVE_WORKERS.load(Ordering::SeqCst), Ordering::SeqCst);
}

/// RAII guard bumping the worker gauges for the lifetime of a worker.
struct WorkerGauge;

impl WorkerGauge {
    fn enter() -> WorkerGauge {
        let live = LIVE_WORKERS.fetch_add(1, Ordering::SeqCst) + 1;
        PEAK_WORKERS.fetch_max(live, Ordering::SeqCst);
        WorkerGauge
    }
}

impl Drop for WorkerGauge {
    fn drop(&mut self) {
        LIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The sharded job queue backing [`Executor::run_expanding`]: one deque
/// per worker plus a pool-wide pending count and sleep signal.
///
/// A worker pops the *front* of its own shard and steals from the *back*
/// of sibling shards, so under load each worker mostly touches its own
/// lock. `pending` counts queued-but-unclaimed jobs; it is decremented
/// inside the owning shard's critical section, which orders every
/// decrement before [`ShardedQueue::close`]'s final reset (close takes
/// each shard lock while draining).
pub(crate) struct ShardedQueue<J> {
    shards: Vec<Mutex<VecDeque<J>>>,
    pending: AtomicUsize,
    /// `true` once the pool is closed; the mutex also anchors the condvar
    /// sleep of idle workers.
    closed: Mutex<bool>,
    ready: Condvar,
}

impl<J> ShardedQueue<J> {
    pub(crate) fn new(workers: usize) -> ShardedQueue<J> {
        ShardedQueue {
            shards: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            closed: Mutex::new(false),
            ready: Condvar::new(),
        }
    }

    /// Distributes `jobs` round-robin across shards starting at `from`,
    /// then wakes every sleeping worker. Only the collector thread pushes,
    /// so distribution order is deterministic for a given completion order.
    ///
    /// Each job is counted into `pending` **inside the shard critical
    /// section that makes it poppable**. Counting after the push loop (as
    /// this method originally did) leaves a window where a stealing
    /// worker pops a not-yet-counted job while a sibling pops the counted
    /// one — two decrements against one increment underflows `pending`,
    /// and a worker whose `pending > 0` fast path short-circuits the
    /// `closed` check then spins forever past `close`, hanging
    /// [`Executor::run_expanding`] at scope join. Found by the
    /// model checker (`engine::modelcheck::check_expanding_reassembly`).
    pub(crate) fn push_many(&self, from: usize, jobs: Vec<J>) {
        if jobs.is_empty() {
            return;
        }
        for (k, job) in jobs.into_iter().enumerate() {
            let shard = (from + k) % self.shards.len();
            let mut guard = self.shards[shard].lock().expect("shard lock");
            guard.push_back(job);
            self.pending.fetch_add(1, Ordering::SeqCst);
            drop(guard);
        }
        // Empty critical section: pairs the wake-up with the sleep below
        // so a worker cannot check `pending`, miss this push, and then
        // sleep through the notify.
        drop(self.closed.lock().expect("queue lock"));
        self.ready.notify_all();
    }

    /// One pass over the shards: own front first, then sibling tails.
    fn try_pop(&self, worker: usize) -> Option<J> {
        let n = self.shards.len();
        for k in 0..n {
            let victim = (worker + k) % n;
            let mut shard = self.shards[victim].lock().expect("shard lock");
            let job = if k == 0 { shard.pop_front() } else { shard.pop_back() };
            if let Some(job) = job {
                // Decrement while still holding the shard lock (see the
                // struct docs for why this orders against `close`).
                self.pending.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// The blocking pop workers loop on: `None` means closed and empty.
    pub(crate) fn pop(&self, worker: usize) -> Option<J> {
        loop {
            if self.pending.load(Ordering::SeqCst) > 0 {
                if let Some(job) = self.try_pop(worker) {
                    return Some(job);
                }
                // Raced with a sibling for the last job; fall through to
                // the sleep check rather than spinning.
            }
            let mut closed = self.closed.lock().expect("queue lock");
            loop {
                if self.pending.load(Ordering::SeqCst) > 0 {
                    break;
                }
                if *closed {
                    return None;
                }
                closed = self.ready.wait(closed).expect("queue lock");
            }
        }
    }

    /// Closes the pool (optionally discarding queued jobs) and wakes every
    /// sleeper. Only the collector thread calls this, so the drain cannot
    /// race a concurrent push.
    pub(crate) fn close(&self, drain: bool) {
        if drain {
            for shard in &self.shards {
                shard.lock().expect("shard lock").clear();
            }
            self.pending.store(0, Ordering::SeqCst);
        }
        *self.closed.lock().expect("queue lock") = true;
        self.ready.notify_all();
    }
}

/// A bounded pool executing jobs from one shared queue.
///
/// Two entry points cover the two planning shapes:
///
/// * [`Executor::run_indexed`] — a **static** job list known up front
///   (a campaign's flat fault plan); results come back in job order.
/// * [`Executor::run_expanding`] — a **dynamic** queue where completing a
///   job may enqueue follow-up jobs (a suite: each application's plan job
///   fans out into its injected-run jobs); the caller assembles results.
///
/// With one worker (or one job) both degrade to inline sequential
/// execution on the calling thread — no threads are spawned at all.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::new()
    }
}

impl Executor {
    /// A pool sized to the hardware (`available_parallelism` workers),
    /// unless the `EPA_WORKERS` environment variable overrides the count
    /// (benches and CI use it to measure fixed worker counts on arbitrary
    /// hardware). Malformed or absurd overrides are clamped to
    /// `1..=available_parallelism * 4` with a warning on stderr rather
    /// than silently ignored.
    pub fn new() -> Executor {
        let hw = thread::available_parallelism().map_or(4, std::num::NonZero::get);
        let raw = std::env::var("EPA_WORKERS").ok();
        let (workers, warning) = parse_workers(raw.as_deref(), hw);
        if let Some(warning) = warning {
            eprintln!("epa: {warning}");
        }
        Executor::with_workers(workers)
    }

    /// A pool with an explicit worker ceiling (clamped to at least 1).
    pub fn with_workers(workers: usize) -> Executor {
        Executor {
            workers: workers.max(1),
        }
    }

    /// The worker ceiling.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Executes a static job list, returning results **in job order**.
    ///
    /// Workers pull the next unclaimed index from a shared cursor (dynamic
    /// load balancing — no static partitioning), results stream back to the
    /// calling thread which invokes `on_done(index, &result)` in completion
    /// order, and the returned vector is reassembled by index.
    pub fn run_indexed<J, T, F>(&self, jobs: &[J], run: F, on_done: &mut dyn FnMut(usize, &T)) -> Vec<T>
    where
        J: Sync,
        T: Send,
        F: Fn(usize, &J) -> T + Sync,
    {
        let workers = self.workers.min(jobs.len());
        if workers <= 1 {
            return jobs
                .iter()
                .enumerate()
                .map(|(i, j)| {
                    let t = run(i, j);
                    on_done(i, &t);
                    t
                })
                .collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..jobs.len()).map(|_| None).collect();
        thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, T)>();
            for _ in 0..workers {
                let tx = tx.clone();
                let cursor = &cursor;
                let run = &run;
                scope.spawn(move || {
                    let _gauge = WorkerGauge::enter();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs.len() {
                            break;
                        }
                        if tx.send((i, run(i, &jobs[i]))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // Drain on the calling thread so `on_done` needs no `Sync`.
            for (i, t) in rx {
                on_done(i, &t);
                slots[i] = Some(t);
            }
        });
        slots.into_iter().map(|s| s.expect("every job completes")).collect()
    }

    /// Executes an expanding queue: every completed job is handed to
    /// `on_done` on the calling thread, and whatever jobs `on_done` returns
    /// are pushed onto the shared queue for idle workers to steal.
    ///
    /// Identity/ordering is the caller's concern — jobs and results carry
    /// their own indices (see `Suite::execute_with`, which reassembles
    /// per-application reports in plan order from `(app, job)` indices).
    pub fn run_expanding<J, T, F>(&self, seed: Vec<J>, step: F, on_done: &mut dyn FnMut(T) -> Vec<J>)
    where
        J: Send,
        T: Send,
        F: Fn(J) -> T + Sync,
    {
        if self.workers <= 1 {
            let mut queue: VecDeque<J> = seed.into();
            while let Some(job) = queue.pop_front() {
                queue.extend(on_done(step(job)));
            }
            return;
        }
        let mut outstanding = seed.len();
        if outstanding == 0 {
            return;
        }
        let queue = ShardedQueue::new(self.workers);
        queue.push_many(0, seed);
        // Follow-up batches keep rotating through the shards so no worker
        // starves when completions cluster on one job's children.
        let mut next_shard = 0usize;
        thread::scope(|scope| {
            // Workers send caught panics instead of unwinding in place:
            // a silently dead worker would leave its siblings asleep on
            // the condvar and the collector blocked on `recv` forever.
            type Caught = Box<dyn std::any::Any + Send>;
            let (tx, rx) = mpsc::channel::<Result<T, Caught>>();
            for w in 0..self.workers {
                let tx = tx.clone();
                let queue = &queue;
                let step = &step;
                scope.spawn(move || {
                    let _gauge = WorkerGauge::enter();
                    while let Some(job) = queue.pop(w) {
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| step(job)));
                        let failed = outcome.is_err();
                        if tx.send(outcome).is_err() || failed {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            while outstanding > 0 {
                match rx.recv().expect("workers alive while jobs outstanding") {
                    Ok(done) => {
                        outstanding -= 1;
                        // The callback can panic too (it runs user code);
                        // release the workers before letting it unwind.
                        let follow_ups = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| on_done(done)))
                        {
                            Ok(follow_ups) => follow_ups,
                            Err(payload) => {
                                queue.close(true);
                                std::panic::resume_unwind(payload);
                            }
                        };
                        if !follow_ups.is_empty() {
                            outstanding += follow_ups.len();
                            let count = follow_ups.len();
                            queue.push_many(next_shard, follow_ups);
                            next_shard = (next_shard + count) % self.workers;
                        }
                    }
                    Err(payload) => {
                        // Wake and release every worker before re-raising,
                        // or the scope join below would deadlock.
                        queue.close(true);
                        std::panic::resume_unwind(payload);
                    }
                }
            }
            queue.close(false);
        });
    }
}

/// Parses and validates an `EPA_WORKERS` override against the hardware.
///
/// Accepted values are integers in `1..=hw * 4` (the 4x headroom covers
/// oversubscription experiments without letting a typo spawn thousands
/// of threads). Out-of-range values clamp to the nearest bound and
/// non-numeric values fall back to `hw`; both return a warning for the
/// caller to surface.
fn parse_workers(raw: Option<&str>, hw: usize) -> (usize, Option<String>) {
    let ceiling = hw.saturating_mul(4).max(1);
    let Some(raw) = raw else {
        return (hw, None);
    };
    let trimmed = raw.trim();
    match trimmed.parse::<usize>() {
        Ok(0) => (
            1,
            Some("EPA_WORKERS=0 is not a usable worker count; clamped to 1".into()),
        ),
        Ok(n) if n > ceiling => (
            ceiling,
            Some(format!(
                "EPA_WORKERS={n} exceeds 4x available parallelism ({hw}); clamped to {ceiling}"
            )),
        ),
        Ok(n) => (n, None),
        Err(_) => (
            hw,
            Some(format!(
                "EPA_WORKERS={trimmed:?} is not a positive integer; using {hw} workers"
            )),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..64).collect();
        for workers in [1, 2, 4] {
            let pool = Executor::with_workers(workers);
            let mut streamed = 0usize;
            let out = pool.run_indexed(&jobs, |i, j| (i, j * 2), &mut |_, _| streamed += 1);
            assert_eq!(streamed, 64);
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*doubled, i * 2);
            }
        }
    }

    #[test]
    fn indexed_handles_empty_and_single() {
        let pool = Executor::with_workers(4);
        let none: Vec<u8> = Vec::new();
        assert!(pool.run_indexed(&none, |_, j| *j, &mut |_, _| {}).is_empty());
        assert_eq!(pool.run_indexed(&[7u8], |_, j| *j, &mut |_, _| {}), vec![7]);
    }

    #[test]
    fn expanding_queue_runs_follow_ups() {
        // Seed jobs expand into 3 children each; children expand into none.
        for workers in [1, 3] {
            let pool = Executor::with_workers(workers);
            let mut seen: Vec<(usize, bool)> = Vec::new();
            pool.run_expanding(
                vec![(0usize, true), (1, true)],
                |job: (usize, bool)| job,
                &mut |(id, is_seed)| {
                    seen.push((id, is_seed));
                    if is_seed {
                        (0..3).map(|k| (id * 10 + k, false)).collect()
                    } else {
                        Vec::new()
                    }
                },
            );
            assert_eq!(seen.len(), 8, "2 seeds + 6 children");
            assert_eq!(seen.iter().filter(|(_, s)| *s).count(), 2);
        }
    }

    #[test]
    fn expanding_queue_propagates_panics_instead_of_hanging() {
        // A panicking step must surface as a panic of `run_expanding`
        // (with all workers released), never as a silent hang.
        for workers in [1usize, 3] {
            let pool = Executor::with_workers(workers);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run_expanding(
                    vec![0usize, 1, 2, 3],
                    |job| {
                        if job == 2 {
                            panic!("deliberate step panic");
                        }
                        job
                    },
                    &mut |_| Vec::new(),
                );
            }));
            assert!(caught.is_err(), "workers={workers}: the panic must propagate");
        }
        // A panicking completion callback likewise.
        let pool = Executor::with_workers(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_expanding(vec![0usize, 1], |job| job, &mut |_| -> Vec<usize> {
                panic!("deliberate callback panic");
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn epa_workers_parsing_clamps_and_warns() {
        // Unset: hardware count, no warning.
        assert_eq!(parse_workers(None, 8), (8, None));
        // Plain valid values pass through (whitespace tolerated).
        assert_eq!(parse_workers(Some("4"), 8), (4, None));
        assert_eq!(parse_workers(Some(" 32 "), 8), (32, None));
        // Zero clamps up to one worker.
        let (w, warn) = parse_workers(Some("0"), 8);
        assert_eq!(w, 1);
        assert!(warn.expect("warns").contains("clamped to 1"));
        // Absurd values clamp down to 4x the hardware.
        let (w, warn) = parse_workers(Some("1000000"), 8);
        assert_eq!(w, 32);
        assert!(warn.expect("warns").contains("clamped to 32"));
        // Non-numeric (including negatives, which `usize` rejects) falls
        // back to the hardware count with a warning.
        for bad in ["bananas", "-3", "2.5", ""] {
            let (w, warn) = parse_workers(Some(bad), 8);
            assert_eq!(w, 8, "input {bad:?}");
            assert!(warn.expect("warns").contains("not a positive integer"), "input {bad:?}");
        }
        // Degenerate hardware report still yields a sane ceiling.
        assert_eq!(
            parse_workers(Some("9"), 1),
            (
                4,
                Some("EPA_WORKERS=9 exceeds 4x available parallelism (1); clamped to 4".into())
            )
        );
    }

    #[test]
    fn worker_gauge_observes_spawned_workers() {
        // The gauge is process-global (other tests may run pools
        // concurrently), so only the lower bound is assertable here; the
        // `<= available_parallelism` ceiling is pinned by the integration
        // test `tests/executor.rs`, which serializes its pool runs.
        reset_peak_live_workers();
        let pool = Executor::with_workers(2);
        let jobs: Vec<usize> = (0..32).collect();
        let _ = pool.run_indexed(&jobs, |_, j| *j, &mut |_, _| {});
        assert!(peak_live_workers() >= 1, "workers never entered the gauge");
    }
}
