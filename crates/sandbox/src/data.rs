//! Labeled data: the byte payloads applications move around, plus the
//! oracle-side provenance labels that ride along with them.
//!
//! The security-policy oracle needs to answer questions like *"did bytes the
//! invoker may not read reach a sink the invoker can observe?"* without any
//! cooperation from the (possibly buggy) application. Every input an
//! application receives from its environment is therefore a [`Data`] value:
//! raw bytes plus a set of [`Label`]s describing where the bytes came from
//! and how trustworthy they are. Labels are **invisible to application
//! logic** by convention — model applications only look at the bytes — and
//! are consumed exclusively by [`crate::policy`].

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Provenance / sensitivity label attached to data or to a path argument.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Label {
    /// The bytes were read from a secret-tagged file. `invoker_may_read`
    /// records whether the *real* invoking user could have read that file
    /// without the application's privilege; if false, emitting these bytes
    /// to an invoker-visible sink is a confidentiality violation.
    Secret {
        /// Path of the file the bytes came from.
        path: String,
        /// Whether the invoker could read the source directly.
        invoker_may_read: bool,
    },
    /// The bytes came from a source an attacker could control: a file owned
    /// by neither root nor the invoker, a world-writable registry key, an
    /// untrusted network peer.
    Untrusted {
        /// Description of the untrusted source.
        source: String,
    },
    /// The bytes arrived in a message whose claimed origin differs from its
    /// actual origin (authenticity perturbation).
    Spoofed {
        /// Origin the message claimed.
        claimed_from: String,
        /// Where it actually came from.
        actual_from: String,
    },
}

impl Label {
    /// True for a `Secret` label the invoker may *not* read directly.
    pub fn is_protected_secret(&self) -> bool {
        matches!(
            self,
            Label::Secret {
                invoker_may_read: false,
                ..
            }
        )
    }

    /// True for an `Untrusted` label.
    pub fn is_untrusted(&self) -> bool {
        matches!(self, Label::Untrusted { .. })
    }

    /// True for a `Spoofed` label.
    pub fn is_spoofed(&self) -> bool {
        matches!(self, Label::Spoofed { .. })
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Secret { path, invoker_may_read } => {
                write!(f, "secret({path}, invoker_may_read={invoker_may_read})")
            }
            Label::Untrusted { source } => write!(f, "untrusted({source})"),
            Label::Spoofed {
                claimed_from,
                actual_from,
            } => {
                write!(f, "spoofed(claimed={claimed_from}, actual={actual_from})")
            }
        }
    }
}

/// Bytes plus provenance labels.
///
/// # Examples
///
/// ```
/// use epa_sandbox::data::{Data, Label};
/// let mut d = Data::from("root:x:0:0:");
/// d.add_label(Label::Secret { path: "/etc/shadow".into(), invoker_may_read: false });
/// assert!(d.has_protected_secret());
/// assert_eq!(d.text(), "root:x:0:0:");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Data {
    bytes: Vec<u8>,
    labels: BTreeSet<Label>,
}

impl Data {
    /// Empty, unlabeled data.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style label attachment.
    pub fn with_label(mut self, label: Label) -> Self {
        self.labels.insert(label);
        self
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The bytes decoded as UTF-8 (lossily).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.bytes).into_owned()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when there are no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The label set.
    pub fn labels(&self) -> &BTreeSet<Label> {
        &self.labels
    }

    /// Attaches a label.
    pub fn add_label(&mut self, label: Label) {
        self.labels.insert(label);
    }

    /// Replaces the byte content, keeping labels (taint survives rewriting).
    pub fn set_bytes(&mut self, bytes: impl Into<Vec<u8>>) {
        self.bytes = bytes.into();
    }

    /// Appends text, keeping labels.
    pub fn push_str(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
    }

    /// Appends another `Data`, unioning its labels (label propagation on
    /// concatenation — how indirect faults flow through internal entities).
    pub fn append(&mut self, other: &Data) {
        self.bytes.extend_from_slice(&other.bytes);
        self.labels.extend(other.labels.iter().cloned());
    }

    /// Copies the labels of `other` onto `self` (propagation on derivation:
    /// a value *computed from* tainted input is tainted).
    pub fn taint_from(&mut self, other: &Data) {
        self.labels.extend(other.labels.iter().cloned());
    }

    /// Splits the text on a separator; every piece inherits all labels.
    pub fn split_text(&self, sep: char) -> Vec<Data> {
        self.text()
            .split(sep)
            .map(|piece| {
                let mut d = Data::from(piece);
                d.taint_from(self);
                d
            })
            .collect()
    }

    /// Lines of the text; every line inherits all labels.
    pub fn lines(&self) -> Vec<Data> {
        self.text()
            .lines()
            .map(|line| {
                let mut d = Data::from(line);
                d.taint_from(self);
                d
            })
            .collect()
    }

    /// True when any label is a secret the invoker may not read.
    pub fn has_protected_secret(&self) -> bool {
        self.labels.iter().any(Label::is_protected_secret)
    }

    /// True when any label marks the data untrusted.
    pub fn has_untrusted(&self) -> bool {
        self.labels.iter().any(Label::is_untrusted)
    }

    /// True when any label marks the data spoofed.
    pub fn has_spoofed(&self) -> bool {
        self.labels.iter().any(Label::is_spoofed)
    }
}

impl From<&str> for Data {
    fn from(s: &str) -> Self {
        Data {
            bytes: s.as_bytes().to_vec(),
            labels: BTreeSet::new(),
        }
    }
}

impl From<String> for Data {
    fn from(s: String) -> Self {
        Data {
            bytes: s.into_bytes(),
            labels: BTreeSet::new(),
        }
    }
}

impl From<Vec<u8>> for Data {
    fn from(bytes: Vec<u8>) -> Self {
        Data {
            bytes,
            labels: BTreeSet::new(),
        }
    }
}

impl fmt::Display for Data {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text())
    }
}

/// A path argument to a syscall, carrying the taint of whatever data the
/// application derived the path from.
///
/// Passing a plain `&str` produces an untainted path; passing a [`Data`]
/// (e.g. a file name read from a registry key) carries its labels so the
/// oracle can flag privileged operations on attacker-influenced names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathArg {
    /// The path text.
    pub path: String,
    /// Labels inherited from the data the path was derived from.
    pub taint: BTreeSet<Label>,
}

impl PathArg {
    /// An untainted path.
    pub fn clean(path: impl Into<String>) -> Self {
        PathArg {
            path: path.into(),
            taint: BTreeSet::new(),
        }
    }

    /// True when the taint set contains an `Untrusted` label.
    pub fn has_untrusted(&self) -> bool {
        self.taint.iter().any(Label::is_untrusted)
    }

    /// True when the taint set contains a `Spoofed` label.
    pub fn has_spoofed(&self) -> bool {
        self.taint.iter().any(Label::is_spoofed)
    }

    /// Joins a relative component onto this path, keeping taint and adding
    /// the component's taint.
    pub fn join(&self, component: &PathArg) -> PathArg {
        let mut taint = self.taint.clone();
        taint.extend(component.taint.iter().cloned());
        PathArg {
            path: crate::path::join(&self.path, &component.path),
            taint,
        }
    }
}

impl From<&str> for PathArg {
    fn from(s: &str) -> Self {
        PathArg::clean(s)
    }
}

impl From<String> for PathArg {
    fn from(s: String) -> Self {
        PathArg::clean(s)
    }
}

impl From<&Data> for PathArg {
    fn from(d: &Data) -> Self {
        PathArg {
            path: d.text(),
            taint: d.labels().clone(),
        }
    }
}

impl From<&PathArg> for PathArg {
    fn from(p: &PathArg) -> Self {
        p.clone()
    }
}

impl fmt::Display for PathArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_propagate_on_append() {
        let mut a = Data::from("PATH=");
        let b = Data::from("/tmp/evil").with_label(Label::Untrusted { source: "env".into() });
        a.append(&b);
        assert!(a.has_untrusted());
        assert_eq!(a.text(), "PATH=/tmp/evil");
    }

    #[test]
    fn split_inherits_labels() {
        let d = Data::from("/bin:/usr/bin").with_label(Label::Untrusted { source: "x".into() });
        let parts = d.split_text(':');
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(Data::has_untrusted));
    }

    #[test]
    fn lines_inherit_labels() {
        let d = Data::from("a\nb\n").with_label(Label::Spoofed {
            claimed_from: "ta".into(),
            actual_from: "evil".into(),
        });
        let lines = d.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(Data::has_spoofed));
    }

    #[test]
    fn patharg_from_data_carries_taint() {
        let d = Data::from("/etc/shadow").with_label(Label::Untrusted { source: "reg".into() });
        let p = PathArg::from(&d);
        assert!(p.has_untrusted());
        assert_eq!(p.path, "/etc/shadow");
    }

    #[test]
    fn patharg_join_merges_taint() {
        let base = PathArg::clean("/home/ta/submit");
        let name = PathArg::from(&Data::from("../.login").with_label(Label::Untrusted { source: "argv".into() }));
        let joined = base.join(&name);
        assert_eq!(joined.path, "/home/ta/submit/../.login");
        assert!(joined.has_untrusted());
    }

    #[test]
    fn secret_predicates() {
        let readable = Label::Secret {
            path: "/x".into(),
            invoker_may_read: true,
        };
        let hidden = Label::Secret {
            path: "/y".into(),
            invoker_may_read: false,
        };
        assert!(!readable.is_protected_secret());
        assert!(hidden.is_protected_secret());
        let d = Data::from("z").with_label(hidden);
        assert!(d.has_protected_secret());
    }

    #[test]
    fn set_bytes_keeps_labels() {
        let mut d = Data::from("orig").with_label(Label::Untrusted { source: "s".into() });
        d.set_bytes("replaced".as_bytes().to_vec());
        assert_eq!(d.text(), "replaced");
        assert!(d.has_untrusted());
    }
}
