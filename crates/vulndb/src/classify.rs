//! The EAI classifier: derives a category from mechanism evidence.

use serde::{Deserialize, Serialize};

use epa_core::model::{DirectKind, EaiCategory, FsAttribute, IndirectKind, NetAttribute, ProcAttribute};

use crate::entry::{AttributeFault, InputSource, Mechanism, VulnEntry};

/// Why an entry falls outside the EAI classification (paper §2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Exclusion {
    /// Not enough analysis in the database entry.
    InsufficientInformation,
    /// Design error, out of scope.
    Design,
    /// Configuration error, out of scope.
    Configuration,
}

impl std::fmt::Display for Exclusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Exclusion::InsufficientInformation => "insufficient information",
            Exclusion::Design => "design error",
            Exclusion::Configuration => "configuration error",
        };
        f.write_str(s)
    }
}

/// The classifier's verdict for one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Classification {
    /// Outside the study scope.
    Excluded(Exclusion),
    /// Classified under the EAI model (including `Other`).
    Eai(EaiCategory),
}

impl Classification {
    /// The EAI category, when classified.
    pub fn category(&self) -> Option<EaiCategory> {
        match self {
            Classification::Eai(c) => Some(*c),
            Classification::Excluded(_) => None,
        }
    }
}

/// Classifies one entry from its mechanism evidence.
pub fn classify(entry: &VulnEntry) -> Classification {
    match entry.mechanism {
        Mechanism::InsufficientInfo => Classification::Excluded(Exclusion::InsufficientInformation),
        Mechanism::DesignError => Classification::Excluded(Exclusion::Design),
        Mechanism::ConfigError => Classification::Excluded(Exclusion::Configuration),
        Mechanism::Input { source, .. } => {
            let kind = match source {
                InputSource::UserArg | InputSource::UserStdin => IndirectKind::UserInput,
                InputSource::EnvVariable => IndirectKind::EnvironmentVariable,
                InputSource::ConfigFile => IndirectKind::FileSystemInput,
                InputSource::NetworkMessage => IndirectKind::NetworkInput,
                InputSource::PeerProcess => IndirectKind::ProcessInput,
            };
            Classification::Eai(EaiCategory::Indirect(kind))
        }
        Mechanism::Attribute(attr) => {
            let kind = match attr {
                AttributeFault::FileExistence => DirectKind::FileSystem(FsAttribute::Existence),
                AttributeFault::FileSymlink => DirectKind::FileSystem(FsAttribute::SymbolicLink),
                AttributeFault::FilePermission => DirectKind::FileSystem(FsAttribute::Permission),
                AttributeFault::FileOwnership => DirectKind::FileSystem(FsAttribute::Ownership),
                AttributeFault::FileInvariance => DirectKind::FileSystem(FsAttribute::ContentInvariance),
                AttributeFault::WorkingDirectory => DirectKind::FileSystem(FsAttribute::WorkingDirectory),
                AttributeFault::NetAuthenticity => DirectKind::Network(NetAttribute::MessageAuthenticity),
                AttributeFault::NetProtocol => DirectKind::Network(NetAttribute::Protocol),
                AttributeFault::NetAvailability => DirectKind::Network(NetAttribute::ServiceAvailability),
                AttributeFault::NetTrust => DirectKind::Network(NetAttribute::EntityTrust),
                AttributeFault::ProcTrust => DirectKind::Process(ProcAttribute::Trust),
            };
            Classification::Eai(EaiCategory::Direct(kind))
        }
        Mechanism::Plain(_) => Classification::Eai(EaiCategory::Other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{InputFlaw, OsFamily};

    fn entry(mechanism: Mechanism) -> VulnEntry {
        VulnEntry {
            id: 1,
            name: "t".into(),
            os: OsFamily::Unix,
            year: 1997,
            mechanism,
        }
    }

    #[test]
    fn exclusions_are_not_categorized() {
        assert_eq!(
            classify(&entry(Mechanism::DesignError)),
            Classification::Excluded(Exclusion::Design)
        );
        assert!(classify(&entry(Mechanism::InsufficientInfo)).category().is_none());
    }

    #[test]
    fn input_sources_map_to_indirect_kinds() {
        let c = classify(&entry(Mechanism::Input {
            source: InputSource::EnvVariable,
            flaw: InputFlaw::UnvalidatedPath,
        }));
        assert_eq!(
            c.category(),
            Some(EaiCategory::Indirect(IndirectKind::EnvironmentVariable))
        );
    }

    #[test]
    fn attributes_map_to_direct_kinds() {
        let c = classify(&entry(Mechanism::Attribute(AttributeFault::FileSymlink)));
        assert_eq!(
            c.category(),
            Some(EaiCategory::Direct(DirectKind::FileSystem(FsAttribute::SymbolicLink)))
        );
    }

    #[test]
    fn plain_faults_are_other() {
        let c = classify(&entry(Mechanism::Plain(crate::entry::PlainFault::Typo)));
        assert_eq!(c.category(), Some(EaiCategory::Other));
    }
}
