//! Comparator techniques from the paper's related-work discussion (§5).
//!
//! * [`fuzz`] — Miller et al.'s random-input testing: no environment
//!   perturbation, no semantics; just random bytes at the program.
//! * [`ava`] — Ghosh et al.'s Adaptive Vulnerability Analysis: perturb the
//!   *internal state* the program computes from its inputs, rather than the
//!   environment itself.
//!
//! Both share the sandbox, oracle, and worlds with the EAI campaigns, so the
//! comparison bench isolates exactly one variable: *what gets perturbed*.

pub mod ava;
pub mod fuzz;

use serde::{Deserialize, Serialize};

use epa_sandbox::policy::Verdict;

/// One baseline run's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineRecord {
    /// Short description of the perturbation/input used.
    pub input: String,
    /// Exit status (`None` = panic).
    pub exit: Option<i32>,
    /// Whether the application panicked.
    pub crashed: bool,
    /// Oracle-detected violations, evidence chains included.
    pub violations: Vec<Verdict>,
}

impl BaselineRecord {
    /// True when the run produced at least one violation.
    pub fn detected(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// A baseline technique's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineReport {
    /// Technique name (`"fuzz"` / `"ava"`).
    pub technique: String,
    /// Application under test.
    pub app: String,
    /// All runs.
    pub records: Vec<BaselineRecord>,
}

impl BaselineReport {
    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.records.len()
    }

    /// Runs that detected a violation.
    pub fn detections(&self) -> usize {
        self.records.iter().filter(|r| r.detected()).count()
    }

    /// Runs that crashed the application.
    pub fn crashes(&self) -> usize {
        self.records.iter().filter(|r| r.crashed).count()
    }

    /// The distinct violation rules detected across all runs — the measure
    /// used to compare *which flaws* a technique can surface.
    pub fn distinct_rules(&self) -> std::collections::BTreeSet<String> {
        self.records
            .iter()
            .flat_map(|r| r.violations.iter().map(|v| v.rule.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates() {
        let rep = BaselineReport {
            technique: "fuzz".into(),
            app: "demo".into(),
            records: vec![
                BaselineRecord {
                    input: "a".into(),
                    exit: Some(0),
                    crashed: false,
                    violations: vec![],
                },
                BaselineRecord {
                    input: "b".into(),
                    exit: None,
                    crashed: true,
                    violations: vec![Verdict::from_violation(epa_sandbox::policy::Violation::new(
                        epa_sandbox::policy::ViolationKind::MemoryCorruption,
                        "R4-memory-safety",
                        "overflow",
                        0,
                    ))],
                },
            ],
        };
        assert_eq!(rep.runs(), 2);
        assert_eq!(rep.detections(), 1);
        assert_eq!(rep.crashes(), 1);
        assert!(rep.distinct_rules().contains("R4-memory-safety"));
    }
}
